//! Empty library target; the real content lives in `tests/tests/*.rs`
//! integration tests which span every crate in the workspace.
