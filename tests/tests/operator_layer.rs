//! Tests of the shared `huge_core::exec` batch-operator layer: the HUGE
//! engine and the baseline engines must produce identical counts through it
//! and report non-zero, comparable communication statistics, because both
//! charge traffic through the same `huge-comm` code paths.

use std::sync::Arc;

use huge_baselines::exec::{scan_star, wco_extend_pushing, BaselineCtx};
use huge_baselines::Baseline;
use huge_core::exec::{BatchOperator, OpContext, PullExtend, ScanSource};
use huge_core::operators::ScanPool;
use huge_core::pool::WorkerPool;
use huge_core::{ClusterConfig, HugeCluster, LoadBalance, OpPoll, SinkMode};
use huge_graph::{gen, Graph, Partitioner};
use huge_plan::physical::CommMode;
use huge_plan::translate::{ExtendOp, OrderFilter, ScanOp};
use huge_query::{naive, Pattern};

/// The same triangle query through the HUGE pipeline and every baseline
/// pipeline: identical match counts, and non-zero communication charged to
/// the same `ClusterStats` counters for each engine.
#[test]
fn triangle_counts_and_stats_agree_across_engines() {
    let graph = gen::erdos_renyi(300, 2400, 11);
    let query = Pattern::Triangle.query_graph();
    let expected = naive::enumerate(&graph, &query);
    assert!(expected > 0, "test graph must contain triangles");
    let config = ClusterConfig::new(3).workers(1);

    let cluster = HugeCluster::build(graph.clone(), config.clone()).unwrap();
    let huge = cluster.run(&query, SinkMode::Count).unwrap();
    assert_eq!(huge.matches, expected, "HUGE");
    assert!(
        huge.comm.total_bytes() > 0,
        "HUGE must report communication on a 3-machine cluster"
    );

    for baseline in Baseline::ALL {
        let report = baseline.run(&graph, &query, &config).unwrap();
        assert_eq!(report.matches, expected, "{}", baseline.name());
        assert!(
            report.comm.total_bytes() > 0,
            "{} must report communication on a 3-machine cluster",
            baseline.name()
        );
        // Same counters, same units: totals must be within two orders of
        // magnitude of the HUGE engine's (they measure the same cluster).
        let ratio = report.comm.total_bytes() as f64 / huge.comm.total_bytes() as f64;
        assert!(
            (0.01..100.0).contains(&ratio),
            "{} traffic not comparable: {} vs HUGE {}",
            baseline.name(),
            report.comm.total_bytes(),
            huge.comm.total_bytes()
        );
    }
}

/// Driving the shared operators directly (a scan feeding a pull-extend per
/// machine) counts exactly the triangles the sequential reference finds.
#[test]
fn exec_layer_pipeline_matches_reference() {
    let graph = gen::barabasi_albert(150, 4, 3);
    let expected = naive::enumerate(&graph, &Pattern::Triangle.query_graph());
    let k = 2;
    let parts = Partitioner::new(k).unwrap().partition(graph);
    let stats = huge_comm::ClusterStats::new(k);
    let rpc = huge_comm::RpcFabric::new(Arc::new(parts.clone()), stats.clone());
    let pool = WorkerPool::new(1, LoadBalance::WorkStealing);

    let mut total = 0u64;
    for (m, partition) in parts.iter().enumerate() {
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let ctx = OpContext {
            machine: m,
            partition,
            rpc: &rpc,
            cache: &cache,
            use_cache: true,
            pool: &pool,
            batch_size: 256,
        };
        let mut scan = ScanSource::new(
            ScanOp {
                src: 0,
                dst: 1,
                filters: vec![OrderFilter {
                    smaller: 0,
                    larger: 1,
                }],
            },
            ScanPool::new(partition.local_vertices(), 16),
        );
        let mut extend = PullExtend::new(ExtendOp {
            target: 2,
            ext_positions: vec![0, 1],
            verify_position: None,
            filters: vec![OrderFilter {
                smaller: 1,
                larger: 2,
            }],
            comm: CommMode::Pulling,
        });
        while let OpPoll::Ready(batch) = scan.poll_next(&ctx).unwrap() {
            extend.push_input(batch, &ctx).unwrap();
            while let OpPoll::Ready(out) = extend.poll_next(&ctx).unwrap() {
                total += out.len() as u64;
            }
        }
    }
    assert_eq!(total, expected);
    assert!(
        stats.total().bytes_pulled > 0,
        "cross-partition extends must pull adjacency lists"
    );
}

/// The baselines' table operators ride the same substrate: a star scan plus
/// a wco extension counts triangles and charges pushed bytes through the
/// shared router.
#[test]
fn baseline_table_ops_count_through_shared_substrate() {
    let graph = gen::erdos_renyi(200, 1600, 5);
    let query = Pattern::Triangle.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let parts = Arc::new(Partitioner::new(3).unwrap().partition(graph));
    let mut ctx = BaselineCtx::new(parts, &query);
    let edges = scan_star(&mut ctx, 0, &[1]).unwrap();
    let triangles = wco_extend_pushing(&mut ctx, edges, 2, &[0, 1]).unwrap();
    assert_eq!(triangles.total_rows(), expected);
    assert!(
        ctx.stats.total().bytes_pushed > 0,
        "routing partial results between machines must charge pushes"
    );
}

/// Empty and edge-less graphs run through every engine without panicking.
#[test]
fn engines_handle_empty_graphs() {
    let query = Pattern::Triangle.query_graph();
    let config = ClusterConfig::new(2).workers(1);
    for graph in [
        Graph::from_edges(Vec::<(u32, u32)>::new()),
        Graph::from_edges(vec![(0u32, 1u32)]),
    ] {
        let cluster = HugeCluster::build(graph.clone(), config.clone()).unwrap();
        let report = cluster.run(&query, SinkMode::Count).unwrap();
        assert_eq!(report.matches, 0);
        for baseline in Baseline::ALL {
            let report = baseline.run(&graph, &query, &config).unwrap();
            assert_eq!(report.matches, 0, "{}", baseline.name());
        }
    }
}
