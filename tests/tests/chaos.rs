//! The deterministic chaos harness: seeded fault plans (delays, panics at
//! named points, dropped/duplicated/reordered/slowed links), query deadlines
//! and external cancellation thrown at whole-cluster runs. Every run must
//! either match the fault-free result exactly or fail with a clean typed
//! error — no hangs, no leaked tracked bytes, no orphaned spill files.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use huge_core::{
    CancelToken, ClusterConfig, EngineError, Fault, FaultSpec, HugeCluster, PanicPoint, RunOutcome,
    SinkMode,
};
use huge_graph::{gen, Graph};
use huge_query::{naive, Pattern, QueryGraph};
use proptest::prelude::*;

/// Generous per-run watchdog: a healthy chaos run finishes in well under a
/// second; only a genuine hang (the bug class this harness exists to catch)
/// reaches it.
const HANG_TIMEOUT: Duration = Duration::from_secs(60);

/// A multi-segment (PUSH-JOIN) plan for `query` on `cluster`: pulling is
/// disabled so the optimiser must decompose the query into join segments.
fn join_plan(
    cluster: &HugeCluster,
    query: &QueryGraph,
) -> (huge_plan::logical::ExecutionPlan, usize) {
    let plan = cluster
        .plan_with_options(
            query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    let dataflow = huge_plan::translate::translate(&plan).unwrap();
    (plan, dataflow.segments.len())
}

/// A sparse ring base with a K_{2,m} gadget on two hub vertices: all gadget
/// squares join through one Grace partition, so one machine's join build is
/// much hotter than the other's and partition stealing reliably fires.
fn hot_partition_graph(m: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..120u32 {
        edges.push((v, (v + 1) % 120));
        edges.push((v, (v + 7) % 120));
    }
    let (u, w) = (200u32, 201u32);
    for i in 0..m {
        edges.push((u, 300 + i));
        edges.push((w, 300 + i));
    }
    Graph::from_edges(edges)
}

// ---------------------------------------------------------------------------
// Point panics
// ---------------------------------------------------------------------------

#[test]
fn panic_at_build_and_probe_surface_as_worker_panic() {
    let graph = gen::erdos_renyi(120, 700, 3);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    for (segment, point) in [(0, PanicPoint::Build), (join_segment, PanicPoint::Probe)] {
        let config =
            ClusterConfig::new(2)
                .workers(1)
                .inject_fault(0, segment, Fault::PanicAt(point));
        let cluster = HugeCluster::build(graph.clone(), config).unwrap();
        let (plan, _) = join_plan(&cluster, &query);
        match cluster.run_with_plan(&plan, SinkMode::Count) {
            Err(EngineError::WorkerPanic(_)) => {}
            other => panic!("PanicAt({point:?}) must surface as WorkerPanic, got {other:?}"),
        }
    }
}

#[test]
fn panic_at_ship_surfaces_as_worker_panic() {
    // Machine 1 stalls on the join segment; machine 0 drains and requests a
    // partition steal, which machine 1 services mid-stall — and the armed
    // ship-point panic fires exactly there.
    let graph = hot_partition_graph(48);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    let config = ClusterConfig::new(2)
        .workers(1)
        .inject_fault(1, join_segment, Fault::Delay(Duration::from_millis(300)))
        .inject_fault(1, join_segment, Fault::PanicAt(PanicPoint::Ship));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    match cluster.run_with_plan(&plan, SinkMode::Count) {
        Err(EngineError::WorkerPanic(_)) => {}
        other => panic!("PanicAt(Ship) must surface as WorkerPanic, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines
// ---------------------------------------------------------------------------

#[test]
fn mid_run_cancel_returns_partial_report_within_bound() {
    // Cancel a skewed join run stuck in an injected straggler stall. The
    // run must unwind cooperatively — a typed error carrying partial stats,
    // within a bounded wall-clock window of the cancel — and the teardown
    // sweep must leave no tracked bytes and no spill files behind.
    let graph = hot_partition_graph(48);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    let config = ClusterConfig::new(2).workers(1).inject_fault(
        1,
        join_segment,
        Fault::Delay(Duration::from_secs(5)),
    );
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let dataflow = huge_plan::translate::translate(&plan).unwrap();

    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    let cancelled_at = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        canceller.cancel();
        Instant::now()
    });
    let result = cluster.run_dataflow_with_cancel(&dataflow, SinkMode::Count, cancel);
    let returned_at = Instant::now();
    let cancelled_at = cancelled_at.join().unwrap();

    let report = match result {
        Err(EngineError::Cancelled(Some(report))) => report,
        other => panic!("expected Cancelled with a partial report, got {other:?}"),
    };
    let latency = returned_at.saturating_duration_since(cancelled_at);
    assert!(
        latency < Duration::from_secs(3),
        "cancel took {latency:?} to observe (the injected stall was 5s — \
         the run must not wait it out)"
    );
    assert_eq!(report.outcome, RunOutcome::Cancelled);
    assert_eq!(
        report.machines.len(),
        2,
        "partial stats cover every machine"
    );
    assert_eq!(
        report.leaked_bytes, 0,
        "ship/queue charges must be released"
    );
    assert_eq!(report.orphaned_spill_files, 0);
}

#[test]
fn deadline_exceeded_carries_partial_report() {
    let graph = hot_partition_graph(32);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    let config = ClusterConfig::new(2)
        .workers(1)
        .deadline(Duration::from_millis(50))
        .inject_fault(1, join_segment, Fault::Delay(Duration::from_secs(2)));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    match cluster.run_with_plan(&plan, SinkMode::Count) {
        Err(EngineError::DeadlineExceeded(Some(report))) => {
            assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
            assert_eq!(report.leaked_bytes, 0);
            assert_eq!(report.orphaned_spill_files, 0);
        }
        other => panic!("expected DeadlineExceeded with a partial report, got {other:?}"),
    }
}

#[test]
fn cancel_with_spilled_joins_leaves_no_spill_files_or_bytes() {
    // Regression for the abort-path leak: a tiny join buffer forces Grace
    // partitions onto disk during the build, then the run is cancelled
    // mid-stall. The teardown sweep must delete every spill file and
    // release every in-flight charge before the report is audited.
    let graph = hot_partition_graph(48);
    let query = Pattern::Square.query_graph();
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    let config = ClusterConfig::new(2)
        .workers(1)
        .join_buffer_bytes(2048)
        .inject_fault(1, join_segment, Fault::Delay(Duration::from_secs(5)));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let dataflow = huge_plan::translate::translate(&plan).unwrap();

    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        canceller.cancel();
    });
    match cluster.run_dataflow_with_cancel(&dataflow, SinkMode::Count, cancel) {
        Err(EngineError::Cancelled(Some(report))) => {
            assert_eq!(report.leaked_bytes, 0, "spilled/buffered join bytes leaked");
            assert_eq!(
                report.orphaned_spill_files, 0,
                "spill files survived teardown"
            );
        }
        other => panic!("expected Cancelled with a partial report, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fault-plan validation
// ---------------------------------------------------------------------------

#[test]
fn out_of_range_fault_specs_are_rejected() {
    // A machine index beyond the cluster is caught at build time.
    let graph = gen::erdos_renyi(60, 240, 5);
    let config = ClusterConfig::new(2)
        .workers(1)
        .inject_fault(5, 0, Fault::Panic);
    match HugeCluster::build(graph.clone(), config) {
        Err(EngineError::Config(_)) => {}
        Err(other) => panic!("expected a Config error, got {other:?}"),
        Ok(_) => panic!("an out-of-range machine index must be rejected at build"),
    }
    // A segment index beyond the plan is caught when the run knows the
    // segment count — instead of silently never firing.
    let config = ClusterConfig::new(2).workers(1).inject_fault(
        0,
        99,
        Fault::Delay(Duration::from_millis(1)),
    );
    let cluster = HugeCluster::build(graph, config).unwrap();
    match cluster.run(&Pattern::Triangle.query_graph(), SinkMode::Count) {
        Err(EngineError::Config(msg)) => {
            assert!(msg.contains("segment"), "unexpected message: {msg}")
        }
        other => panic!("out-of-range segment index must be rejected, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Lossy transport
// ---------------------------------------------------------------------------

#[test]
fn drop_batch_on_ship_path_recovers_with_retry_ack() {
    // Partition stealing under a lossy link: the straggler's shuffle *and*
    // its partition ships ride a dropping transport. The retry/ack path must
    // recover every envelope — parity holds, every shipped partition is
    // adopted exactly once, and the retransmit counters show the recovery
    // actually happened.
    let graph = hot_partition_graph(48);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;
    let mut config = ClusterConfig::new(2)
        .workers(1)
        .inject_fault(1, join_segment, Fault::Delay(Duration::from_millis(300)))
        // The ship path: machine 1's PartitionShip control envelopes.
        .inject_fault(1, join_segment, Fault::DropBatch { ppm: 400_000 });
    // The data path: every producing segment's shuffle, from both senders.
    for segment in 0..join_segment {
        for machine in 0..2 {
            config = config.inject_fault(machine, segment, Fault::DropBatch { ppm: 300_000 });
        }
    }
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected, "parity under a dropping link");
    assert!(
        report.join.partitions_stolen > 0,
        "the drained machine never stole a partition: {:?}",
        report.join
    );
    assert_eq!(
        report.join.partitions_shipped, report.join.partitions_stolen,
        "every shipped partition must be adopted exactly once (ship_id dedup)"
    );
    assert!(report.comm.transport_drops > 0, "the fault never fired");
    assert!(
        report.comm.retransmits > 0,
        "drops were never retransmitted"
    );
    assert_eq!(report.leaked_bytes, 0);
    assert_eq!(report.orphaned_spill_files, 0);
}

#[test]
fn lossy_transport_preserves_parity_with_retransmits() {
    // All four transport fault kinds at once, on every sender of every
    // producing segment: drops retransmit, duplicates dedup, reorders and
    // slow links deliver late — and the result is bit-identical.
    let graph = gen::erdos_renyi(200, 1100, 17);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(3).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let mut config = ClusterConfig::new(3).workers(1).fault_seed(0xC0FFEE);
    for segment in 0..segments {
        for machine in 0..3 {
            config = config
                .inject_fault(machine, segment, Fault::DropBatch { ppm: 200_000 })
                .inject_fault(machine, segment, Fault::DuplicateBatch { ppm: 200_000 })
                .inject_fault(machine, segment, Fault::ReorderWindow { window: 4 })
                .inject_fault(
                    machine,
                    segment,
                    Fault::SlowLink {
                        delay: Duration::from_millis(2),
                    },
                );
        }
    }
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected, "parity under the full fault mix");
    assert!(report.comm.transport_drops > 0);
    assert!(report.comm.retransmits > 0);
    assert_eq!(
        report.comm.dedup_drops, report.comm.transport_dups,
        "every duplicated envelope must be deduplicated by its receiver"
    );
    assert_eq!(report.leaked_bytes, 0);
    assert_eq!(report.orphaned_spill_files, 0);
}

// ---------------------------------------------------------------------------
// The seeded chaos property
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic fault plan from a seed: a mix of stalls,
/// transport faults and (occasionally) panics, every index in range.
fn gen_fault_plan(seed: u64, machines: usize, segments: usize, n: usize) -> Vec<FaultSpec> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let machine = (splitmix(&mut s) % machines as u64) as usize;
            let segment = (splitmix(&mut s) % segments as u64) as usize;
            let fault = match splitmix(&mut s) % 10 {
                0 | 1 => Fault::Delay(Duration::from_millis(1 + splitmix(&mut s) % 20)),
                2 | 3 => Fault::DropBatch {
                    ppm: (splitmix(&mut s) % 400_000) as u32,
                },
                4 => Fault::DuplicateBatch {
                    ppm: (splitmix(&mut s) % 400_000) as u32,
                },
                5 => Fault::ReorderWindow {
                    window: 1 + (splitmix(&mut s) % 8) as usize,
                },
                6 => Fault::SlowLink {
                    delay: Duration::from_millis(1 + splitmix(&mut s) % 5),
                },
                7 => Fault::PanicAt(match splitmix(&mut s) % 3 {
                    0 => PanicPoint::Build,
                    1 => PanicPoint::Probe,
                    _ => PanicPoint::Ship,
                }),
                8 => Fault::Panic,
                _ => Fault::Delay(Duration::from_millis(splitmix(&mut s) % 10)),
            };
            FaultSpec {
                machine,
                segment,
                fault,
            }
        })
        .collect()
}

/// One chaos case: run the query under a seeded fault plan (optionally with
/// a tight deadline) on its own thread with a hang watchdog, then hold the
/// outcome to the contract — exact parity or a clean typed error, and a
/// leak-free teardown either way.
#[allow(clippy::too_many_arguments)]
fn chaos_case(
    graph: Graph,
    pattern: Pattern,
    machines: usize,
    seed: u64,
    nfaults: usize,
    force_joins: bool,
    with_deadline: bool,
) {
    let query = pattern.query_graph();
    let expected = naive::enumerate(&graph, &query);
    // Discover the segment count of the plan this case will execute, so the
    // generated fault plan always passes segment validation.
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(machines).workers(1)).unwrap();
    let segments = if force_joins {
        join_plan(&probe, &query).1
    } else {
        let plan = probe.plan(&query).unwrap();
        huge_plan::translate::translate(&plan)
            .unwrap()
            .segments
            .len()
    };
    let fault_plan = gen_fault_plan(seed, machines, segments, nfaults);
    let mut config = ClusterConfig::new(machines)
        .workers(1)
        .fault_seed(seed)
        .fault_plan(fault_plan);
    if with_deadline {
        config = config.deadline(Duration::from_millis(150));
    }

    // The run gets its own thread so a hang is detected (and failed) instead
    // of wedging the suite.
    let (tx, rx) = mpsc::channel();
    let thread_query = query.clone();
    std::thread::spawn(move || {
        let cluster = HugeCluster::build(graph, config).unwrap();
        let result = if force_joins {
            let (plan, _) = join_plan(&cluster, &thread_query);
            cluster.run_with_plan(&plan, SinkMode::Count)
        } else {
            cluster.run(&thread_query, SinkMode::Count)
        };
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(HANG_TIMEOUT)
        .expect("chaos run hung (no result within the watchdog window)");

    match result {
        Ok(report) => {
            assert_eq!(
                report.matches, expected,
                "a surviving run must match the fault-free result (seed {seed})"
            );
            assert_eq!(report.outcome, RunOutcome::Completed);
            assert_eq!(report.leaked_bytes, 0, "tracked bytes leaked (seed {seed})");
            assert_eq!(
                report.orphaned_spill_files, 0,
                "spill files leaked (seed {seed})"
            );
        }
        Err(EngineError::Cancelled(Some(report))) => {
            assert_eq!(report.outcome, RunOutcome::Cancelled);
            assert_eq!(report.leaked_bytes, 0, "tracked bytes leaked (seed {seed})");
            assert_eq!(report.orphaned_spill_files, 0);
        }
        Err(EngineError::DeadlineExceeded(Some(report))) => {
            assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
            assert_eq!(report.leaked_bytes, 0, "tracked bytes leaked (seed {seed})");
            assert_eq!(report.orphaned_spill_files, 0);
        }
        // Injected panics tear the run down through the abort protocol.
        Err(EngineError::WorkerPanic(_)) => {}
        // Total link loss may exhaust the bounded retries.
        Err(EngineError::Transport(_)) => {}
        Err(other) => panic!("chaos run failed with an unexpected error: {other:?} (seed {seed})"),
    }
}

proptest! {
    // Every case is a whole-cluster run; CI caps the count through
    // PROPTEST_CASES. Locally the suite performs 64 seeded fault-plan runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chaos contract: random plans × machine counts × seeded fault
    /// plans × deadlines either reproduce the fault-free result exactly or
    /// fail with a clean typed error — never a hang, never a leak.
    #[test]
    fn chaos_runs_are_parity_or_clean_typed_error(
        graph in prop::collection::vec((0u32..60, 0u32..60), 10..250)
            .prop_map(Graph::from_edges)
            .prop_filter("need some edges", |g| g.num_edges() >= 5),
        pattern in prop_oneof![
            Just(Pattern::Triangle),
            Just(Pattern::Square),
            Just(Pattern::ChordalSquare),
            Just(Pattern::Path(4)),
        ],
        machines in 1usize..4,
        seed in 0u64..u64::MAX,
        nfaults in 0usize..4,
        force_joins in 0u32..2,
        deadline_sel in 0u32..8,
    ) {
        chaos_case(
            graph,
            pattern,
            machines,
            seed,
            nfaults,
            force_joins == 1,
            deadline_sel == 0,
        );
    }
}
