//! Integration tests of the event-driven pipelined runtime: the per-machine
//! dataflow scheduler (cross-segment pipelining, abort propagation, threads
//! spawned once per run), the persistent worker pool, the bounded notifying
//! router, the streaming baseline shuffles, the count-only sink and the
//! steal accounting hand-off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use huge_baselines::exec::{hash_join_pushing, scan_star, BaselineCtx};
use huge_baselines::Baseline;
use huge_comm::stats::ClusterStats;
use huge_comm::{Router, RowBatch};
use huge_core::memory::MemoryTracker;
use huge_core::pool::WorkerPool;
use huge_core::scheduler::SharedQueue;
use huge_core::{ClusterConfig, Fault, HugeCluster, LoadBalance, SinkMode};
use huge_graph::{gen, Graph, Partitioner};
use huge_query::{naive, Pattern, QueryGraph};

/// A multi-segment (PUSH-JOIN) plan for `query` on `cluster`: pulling is
/// disabled so the optimiser must decompose the query into join segments.
fn join_plan(
    cluster: &HugeCluster,
    query: &QueryGraph,
) -> (huge_plan::logical::ExecutionPlan, usize) {
    let plan = cluster
        .plan_with_options(
            query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    let dataflow = huge_plan::translate::translate(&plan).unwrap();
    assert!(
        dataflow.num_joins() >= 1,
        "expected a PUSH-JOIN in the plan"
    );
    (plan, dataflow.segments.len())
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

#[test]
fn pool_survives_overlapping_epochs_from_many_threads() {
    // Hammer one pool with concurrent `run` calls (each an epoch) from many
    // threads; every item must be processed exactly once per run, and the
    // pool must never spawn more than its configured worker threads.
    let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let pool = pool.clone();
            scope.spawn(move || {
                for _round in 0u64..30 {
                    let items: Vec<u64> = (0..256).collect();
                    let run = pool.run(items, |x, out| out.push(x * 2 + t));
                    let mut flat = run.into_flat();
                    flat.sort_unstable();
                    assert_eq!(flat.len(), 256);
                    assert_eq!(flat[0], t);
                    assert_eq!(flat[255], 510 + t);
                }
            });
        }
    });
    // Workers were created once and reused across all 240 overlapping runs.
    assert_eq!(pool.threads_spawned(), 4);
}

#[test]
fn pool_explicit_epochs_interleave() {
    let pool = WorkerPool::new(3, LoadBalance::WorkStealing);
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    // Interleave submissions to two epochs, then join them in reverse order.
    let a = pool.begin_epoch();
    let b = pool.begin_epoch();
    for i in 0..50 {
        let hits_a = Arc::clone(&hits);
        pool.submit(&a, i, move |_| {
            hits_a.fetch_add(1, Ordering::SeqCst);
        });
        let hits_b = Arc::clone(&hits);
        pool.submit(&b, i + 1, move |_| {
            hits_b.fetch_add(1000, Ordering::SeqCst);
        });
    }
    pool.join_epoch(b);
    pool.join_epoch(a);
    assert_eq!(hits.load(Ordering::SeqCst), 50 + 50 * 1000);
    assert_eq!(pool.threads_spawned(), 3);
}

// ---------------------------------------------------------------------------
// Bounded, notifying router
// ---------------------------------------------------------------------------

#[test]
fn bounded_router_backpressure_terminates_with_parked_consumer() {
    // A tiny inbox (8 rows) and a producer shipping 200 batches of 4 rows:
    // the producer must block on backpressure, the parked consumer must be
    // woken by pushes, and the whole exchange must terminate.
    const BATCHES: usize = 200;
    let stats = ClusterStats::new(2);
    let router = Router::with_capacity(2, stats, 8);
    let producer = router.endpoint(0);
    let consumer = router.endpoint(1);
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let done_consumer = Arc::clone(&done);
        let consume = scope.spawn(move || {
            let mut rows = 0usize;
            while !done_consumer.load(Ordering::SeqCst) || consumer.has_data() {
                // Park on the notify handle instead of spinning.
                if consumer.wait_data(Duration::from_millis(20)) {
                    while let Some(env) = consumer.try_recv() {
                        rows += env.batch.len();
                    }
                }
            }
            rows
        });
        for i in 0..BATCHES {
            // Blocking push: waits for space when the inbox is full.
            producer.push(1, 3, RowBatch::from_flat(1, vec![i as u32; 4]));
        }
        done.store(true, Ordering::SeqCst);
        producer.wake(1);
        assert_eq!(consume.join().unwrap(), BATCHES * 4);
    });
}

// ---------------------------------------------------------------------------
// Steal accounting
// ---------------------------------------------------------------------------

#[test]
fn steal_hand_off_conserves_cluster_wide_memory_accounting() {
    // Concurrent thieves move batches between queues while consumers pop:
    // at every quiescent point the sum of the trackers' `current()` must
    // equal the bytes actually enqueued, and it must never undercount while
    // steals are in flight (the thief registers before the victim releases).
    let trackers: Vec<Arc<MemoryTracker>> =
        (0..2).map(|_| Arc::new(MemoryTracker::new())).collect();
    let victim = SharedQueue::new(usize::MAX / 2, Some(Arc::clone(&trackers[0])));
    let thief = SharedQueue::new(usize::MAX / 2, Some(Arc::clone(&trackers[1])));
    let mut total_bytes = 0u64;
    for i in 0..256 {
        let batch = huge_comm::ColBatch::from_columns(vec![vec![i as u32; (i % 7) + 1]]);
        total_bytes += batch.byte_size();
        victim.push(batch);
    }
    std::thread::scope(|scope| {
        let stealing = scope.spawn(|| {
            for _ in 0..64 {
                victim.steal_into(&thief);
                thief.steal_into(&victim);
            }
        });
        // While steals are in flight, the cluster-wide sum may transiently
        // double-count the one batch mid-hand-off (at most 28 bytes here)
        // but must never undercount the bytes actually held.
        for _ in 0..1000 {
            let sum: u64 = trackers.iter().map(|t| t.current()).sum();
            assert!(sum >= total_bytes, "undercounted: {sum} < {total_bytes}");
            assert!(sum <= total_bytes + 32, "overcounted: {sum}");
        }
        stealing.join().unwrap();
    });
    // Quiescent: conservation must be exact.
    let sum: u64 = trackers.iter().map(|t| t.current()).sum();
    assert_eq!(sum, total_bytes);
    // Draining both queues returns every tracker to zero.
    while victim.pop().is_some() {}
    while thief.pop().is_some() {}
    assert_eq!(trackers[0].current() + trackers[1].current(), 0);
}

// ---------------------------------------------------------------------------
// Streaming baseline shuffle: bounded memory
// ---------------------------------------------------------------------------

#[test]
fn baseline_join_streams_instead_of_double_buffering() {
    // A join whose shuffled inputs far exceed the router capacity: with the
    // streaming shuffle (bounded inboxes + spilling joiners) the tracked
    // transient peak must stay below what materialising both shuffled tables
    // at once would need — the pre-streaming behaviour.
    let graph = gen::barabasi_albert(600, 10, 3);
    let query = Pattern::Square.query_graph();
    let partitions = Arc::new(Partitioner::new(3).unwrap().partition(graph.clone()));
    // 2048-row inboxes, 64 KiB spill threshold per joiner side.
    let mut ctx = BaselineCtx::with_streaming_limits(partitions, &query, 2_048, 64 * 1024);
    let left = scan_star(&mut ctx, 0, &[1, 3]).unwrap();
    let right = scan_star(&mut ctx, 2, &[1, 3]).unwrap();
    let shuffled_bytes = left.total_bytes() + right.total_bytes();
    let joined = hash_join_pushing(&mut ctx, left, right).unwrap();
    assert_eq!(joined.total_rows(), naive::enumerate(&graph, &query));
    assert!(
        ctx.memory.peak() < shuffled_bytes,
        "streaming shuffle peak {} must stay below full materialisation {}",
        ctx.memory.peak(),
        shuffled_bytes
    );
    // Everything transient was drained and released.
    assert_eq!(ctx.memory.current(), 0);

    // The degenerate all-local case (k = 1): every push goes to the own
    // machine, which bypasses the inbox bound — the absorb-on-full path must
    // still keep the shuffle from double-buffering the whole table.
    let single = Arc::new(Partitioner::new(1).unwrap().partition(graph.clone()));
    let mut ctx1 = BaselineCtx::with_streaming_limits(single, &query, 2_048, 64 * 1024);
    let left1 = scan_star(&mut ctx1, 0, &[1, 3]).unwrap();
    let right1 = scan_star(&mut ctx1, 2, &[1, 3]).unwrap();
    let shuffled1 = left1.total_bytes() + right1.total_bytes();
    let joined1 = hash_join_pushing(&mut ctx1, left1, right1).unwrap();
    assert_eq!(joined1.total_rows(), naive::enumerate(&graph, &query));
    assert!(
        ctx1.memory.peak() < shuffled1,
        "local-only streaming peak {} must stay below full materialisation {}",
        ctx1.memory.peak(),
        shuffled1
    );
    assert_eq!(ctx1.memory.current(), 0);
}

// ---------------------------------------------------------------------------
// Count-only sink
// ---------------------------------------------------------------------------

#[test]
fn count_only_sink_matches_collect_on_paths() {
    let graph = gen::erdos_renyi(400, 2_400, 77);
    let query = Pattern::Path(5).query_graph();
    let expected = naive::enumerate(&graph, &query);
    let cluster = HugeCluster::build(graph, ClusterConfig::new(2).workers(2)).unwrap();
    let counted = cluster.run(&query, SinkMode::Count).unwrap();
    let collected = cluster.run(&query, SinkMode::Collect(5)).unwrap();
    assert_eq!(counted.matches, expected);
    assert_eq!(collected.matches, expected);
    assert!(!collected.sample_matches.is_empty());
    // The count-only run never materialises the final extension column, so
    // its peak intermediate memory cannot exceed the collecting run's.
    assert!(counted.peak_memory_bytes <= collected.peak_memory_bytes);
}

// ---------------------------------------------------------------------------
// Cross-engine parity
// ---------------------------------------------------------------------------

#[test]
fn all_five_engines_agree_and_account_comparable_traffic() {
    let graph = gen::erdos_renyi(150, 800, 9);
    let config = ClusterConfig::new(3).workers(1);
    for pattern in [Pattern::Triangle, Pattern::Square] {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let huge = HugeCluster::build(graph.clone(), config.clone())
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(huge.matches, expected, "HUGE on {pattern:?}");
        // Parity must hold with cross-segment pipelining off, too.
        let barriered = HugeCluster::build(graph.clone(), config.clone().pipeline_segments(false))
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(barriered.matches, expected, "barriered HUGE on {pattern:?}");
        let mut pushed = Vec::new();
        for baseline in Baseline::ALL {
            let report = baseline.run(&graph, &query, &config).unwrap();
            assert_eq!(
                report.matches,
                expected,
                "{} on {:?}",
                baseline.name(),
                pattern
            );
            pushed.push((baseline, report.comm.bytes_pushed));
        }
        // The pushing engines (StarJoin, SEED, BiGJoin) must report traffic
        // through the shared accounted router; the pulling engines (BENU,
        // RADS) must push nothing.
        for (baseline, bytes) in pushed {
            match baseline {
                Baseline::StarJoin | Baseline::Seed | Baseline::BigJoin => {
                    assert!(bytes > 0, "{} pushed no bytes", baseline.name())
                }
                Baseline::Benu | Baseline::Rads => {
                    assert_eq!(bytes, 0, "{} should pull, not push", baseline.name())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The machine loop parks (no spinning) and still terminates
// ---------------------------------------------------------------------------

#[test]
fn push_join_plans_pipeline_through_the_bounded_router() {
    // Force PUSH-JOIN segments with a small router inbox: the producing
    // segments must stream their shuffles through backpressure into the
    // pre-built joins and still count correctly.
    let graph = gen::erdos_renyi(250, 1_200, 31);
    let query = Pattern::Path(4).query_graph();
    let expected = naive::enumerate(&graph, &query);
    let cluster = HugeCluster::build(
        graph,
        ClusterConfig::new(3)
            .workers(2)
            .batch_size(256)
            .router_queue_rows(512)
            .join_buffer_bytes(8 * 1024),
    )
    .unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(report.comm.bytes_pushed > 0);
}

// ---------------------------------------------------------------------------
// Cross-segment pipelining: the per-machine dataflow scheduler
// ---------------------------------------------------------------------------

#[test]
fn machine_threads_are_spawned_once_per_run_when_pipelined() {
    let graph = gen::erdos_renyi(200, 1_000, 17);
    let query = Pattern::Path(4).query_graph();
    let expected = naive::enumerate(&graph, &query);

    let cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(3).workers(1)).unwrap();
    let (plan, segments) = join_plan(&cluster, &query);
    assert!(segments >= 3, "want a multi-segment plan, got {segments}");
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(report.pipelined);
    // One thread per machine for the whole run, no matter how many segments.
    assert_eq!(report.machine_threads_spawned, 3);

    // The barriered escape hatch spawns (and joins) per segment.
    let barriered = HugeCluster::build(
        graph,
        ClusterConfig::new(3).workers(1).pipeline_segments(false),
    )
    .unwrap();
    let report = barriered.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(!report.pipelined);
    assert_eq!(report.machine_threads_spawned, 3 * segments);
}

#[test]
fn segments_overlap_across_machines_without_barriers() {
    // Make machine 1 a deterministic straggler on segment 0 (a producing
    // scan segment). Without barriers, machine 0 must move on to segment 1
    // while machine 1 is still inside segment 0 — the spans of the two
    // segments overlap. With barriers they cannot.
    let delay = Duration::from_millis(150);
    let graph = gen::erdos_renyi(120, 500, 23);
    let query = Pattern::Path(4).query_graph();
    let expected = naive::enumerate(&graph, &query);

    let overlap_of = |pipelined: bool| {
        let config = ClusterConfig::new(2)
            .workers(1)
            .pipeline_segments(pipelined)
            .inject_fault(1, 0, Fault::Delay(delay));
        let cluster = HugeCluster::build(graph.clone(), config).unwrap();
        let (plan, segments) = join_plan(&cluster, &query);
        assert!(segments >= 3);
        let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
        assert_eq!(report.matches, expected);
        let m0_seg1_start = report.machines[0].segment_spans[1]
            .expect("m0 ran segment 1")
            .0;
        let m1_seg0_end = report.machines[1].segment_spans[0]
            .expect("m1 ran segment 0")
            .1;
        (m0_seg1_start, m1_seg0_end)
    };

    // Pipelined: machine 0 starts segment 1 while machine 1 (sleeping
    // `delay` before its segment-0 work) has not finished segment 0.
    let (start1, end0) = overlap_of(true);
    assert!(
        start1 < end0,
        "expected overlap: m0 started segment 1 at {start1:?}, m1 finished segment 0 at {end0:?}"
    );
    // Barriered: no machine may start segment 1 before every machine
    // finished segment 0.
    let (start1, end0) = overlap_of(false);
    assert!(
        start1 >= end0,
        "barriered run must not overlap: m0 started segment 1 at {start1:?}, m1 finished segment 0 at {end0:?}"
    );
}

#[test]
fn panicking_machine_aborts_the_whole_pipelined_run() {
    // Machine 0 panics in segment 0 while its peers park waiting for the
    // join segment's producers: the abort must propagate and unblock them
    // instead of deadlocking the run.
    let graph = gen::erdos_renyi(150, 700, 29);
    let query = Pattern::Path(4).query_graph();
    let cluster = HugeCluster::build(
        graph,
        ClusterConfig::new(3)
            .workers(1)
            .router_queue_rows(256)
            .inject_fault(0, 0, Fault::Panic),
    )
    .unwrap();
    let (plan, segments) = join_plan(&cluster, &query);
    assert!(segments >= 3);
    let start = Instant::now();
    let result = cluster.run_with_plan(&plan, SinkMode::Count);
    let err = result.expect_err("an injected panic must fail the run");
    assert!(
        matches!(err, huge_core::EngineError::WorkerPanic(_)),
        "unexpected error: {err}"
    );
    // Peers parked in later segments were woken, not left hanging.
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "abort propagation took {:?}",
        start.elapsed()
    );
}

// ---------------------------------------------------------------------------
// Skew-proof joins: Grace partition stealing + speculative sealing
// ---------------------------------------------------------------------------

/// A sparse ring base with a K_{2,m} gadget implanted on two fresh hub
/// vertices: the `m` gadget squares all join through the single Grace
/// partition the (hub, hub) key pair hashes into, so one machine's join
/// build is massively hotter than the other's.
fn hot_partition_graph(m: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..120u32 {
        edges.push((v, (v + 1) % 120));
        edges.push((v, (v + 7) % 120));
    }
    let (u, w) = (200u32, 201u32);
    for i in 0..m {
        edges.push((u, 300 + i));
        edges.push((w, 300 + i));
    }
    Graph::from_edges(edges)
}

#[test]
fn delayed_join_segment_ships_partitions_to_the_finished_machine() {
    // Machine 1 sleeps before probing its join partitions; machine 0
    // finishes its own probe, drains, and must pull sealed-but-unprobed
    // partitions out of the sleeping victim through the router's control
    // plane. Every shipped partition must be adopted exactly once.
    let graph = hot_partition_graph(48);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);

    // The root join is the deepest (= last) segment of the plan.
    let probe = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(1)).unwrap();
    let (_, segments) = join_plan(&probe, &query);
    let join_segment = segments - 1;

    let config = ClusterConfig::new(2).workers(1).inject_fault(
        1,
        join_segment,
        Fault::Delay(Duration::from_millis(300)),
    );
    let cluster = HugeCluster::build(graph.clone(), config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(
        report.join.partitions_stolen > 0,
        "the drained machine never stole a partition: {:?}",
        report.join
    );
    assert_eq!(
        report.join.partitions_shipped, report.join.partitions_stolen,
        "every shipped partition must be adopted exactly once"
    );
    assert!(report.join.shipped_bytes > 0);

    // The same straggler with stealing disabled: parity must survive, but
    // no partition may move.
    let config = ClusterConfig::new(2)
        .workers(1)
        .partition_stealing(false)
        .inject_fault(1, join_segment, Fault::Delay(Duration::from_millis(300)));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert_eq!(report.join.partitions_stolen, 0);
    assert_eq!(report.join.partitions_shipped, 0);
}

#[test]
fn all_engines_agree_on_the_hot_partition_graph_with_stealing_forced_on() {
    let graph = hot_partition_graph(64);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let config = ClusterConfig::new(2).workers(1).partition_stealing(true);
    let cluster = HugeCluster::build(graph.clone(), config.clone()).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let huge = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(huge.matches, expected, "HUGE on the hot-partition graph");
    for baseline in Baseline::ALL {
        let report = baseline.run(&graph, &query, &config).unwrap();
        assert_eq!(
            report.matches,
            expected,
            "{} disagrees on the hot-partition graph",
            baseline.name()
        );
    }
}

#[test]
fn speculative_sealing_probes_before_late_counters_settle() {
    // Delay a straggler's first scan segment: the per-source EOS envelopes
    // go out before the coarse `remaining` slots settle, so the machine
    // holding full EOS evidence seals its join and probes ahead of the
    // counter gate — the lead the join report measures.
    let graph = gen::erdos_renyi(120, 500, 23);
    let query = Pattern::Path(4).query_graph();
    let expected = naive::enumerate(&graph, &query);
    let config = ClusterConfig::new(2).workers(1).inject_fault(
        1,
        0,
        Fault::Delay(Duration::from_millis(100)),
    );
    let cluster = HugeCluster::build(graph.clone(), config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(
        report.join.speculative_seals > 0,
        "no seal beat the counter gate: {:?}",
        report.join
    );
    assert!(report.join.seal_lead > Duration::ZERO);

    // With speculative sealing off, every seal waits for the counters.
    let config = ClusterConfig::new(2)
        .workers(1)
        .speculative_sealing(false)
        .inject_fault(1, 0, Fault::Delay(Duration::from_millis(100)));
    let cluster = HugeCluster::build(graph, config).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert_eq!(report.join.speculative_seals, 0);
    assert_eq!(report.join.seal_lead, Duration::ZERO);
}

#[test]
fn ship_hand_off_conserves_cluster_wide_memory_accounting() {
    // The PartitionShip protocol keeps the victim charged for a shipped
    // partition until the thief's ShipAck arrives, and the thief allocates
    // before acking: cluster-wide accounting may transiently double-count
    // the one partition in flight but must never undercount, and must be
    // exact once the hand-offs quiesce.
    const PARTITIONS: u64 = 64;
    const BYTES: u64 = 1_024;
    let victim = Arc::new(MemoryTracker::new());
    let thief = Arc::new(MemoryTracker::new());
    victim.allocate(PARTITIONS * BYTES);
    let (ship_tx, ship_rx) = std::sync::mpsc::channel::<u64>();
    let (ack_tx, ack_rx) = std::sync::mpsc::channel::<u64>();
    std::thread::scope(|scope| {
        let thief_side = Arc::clone(&thief);
        scope.spawn(move || {
            // Thief: allocate on receipt, then ack — never the other order.
            for bytes in ship_rx {
                thief_side.allocate(bytes);
                ack_tx.send(bytes).unwrap();
            }
        });
        let victim_side = Arc::clone(&victim);
        scope.spawn(move || {
            // Victim: ship, keep the charge until the ack comes back.
            for _ in 0..PARTITIONS {
                ship_tx.send(BYTES).unwrap();
                let acked = ack_rx.recv().unwrap();
                victim_side.release(acked);
            }
        });
        for _ in 0..10_000 {
            let sum = victim.current() + thief.current();
            assert!(sum >= PARTITIONS * BYTES, "undercounted: {sum}");
            assert!(sum <= (PARTITIONS + 1) * BYTES, "overcounted: {sum}");
        }
    });
    assert_eq!(victim.current(), 0);
    assert_eq!(thief.current(), PARTITIONS * BYTES);
}

#[test]
fn skewed_partitions_finish_via_stealing_and_pipelining() {
    // A graph whose edges concentrate on the vertices machine 1 owns
    // (odd ids under the modulo partitioner): the pipelined run with
    // stealing must still match the reference count.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for a in (1..81u32).step_by(2) {
        for b in ((a + 2)..81).step_by(2) {
            edges.push((a, b));
        }
    }
    edges.extend([(0, 2), (2, 4), (4, 6), (0, 1), (2, 3)]);
    let graph = Graph::from_edges(edges);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let cluster = HugeCluster::build(graph, ClusterConfig::new(2).workers(2)).unwrap();
    let (plan, _) = join_plan(&cluster, &query);
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(report.pipelined);
}
