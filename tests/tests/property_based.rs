//! Property-based integration tests: on arbitrary small graphs the whole
//! distributed pipeline must agree with the sequential reference, for
//! arbitrary cluster shapes and engine knobs.

use huge_comm::{ColBatch, RowBatch};
use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::Graph;
use huge_plan::baselines::{plug_into_huge, BaselineSystem};
use huge_query::{naive, Pattern};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u32..60, 0u32..60), 10..250)
        .prop_map(Graph::from_edges)
        .prop_filter("need some edges", |g| g.num_edges() >= 5)
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Triangle),
        Just(Pattern::Square),
        Just(Pattern::ChordalSquare),
        Just(Pattern::FourClique),
        Just(Pattern::Star(3)),
        Just(Pattern::Path(4)),
    ]
}

proptest! {
    // Few cases: every case runs a whole-cluster enumeration. CI further
    // caps this suite through the PROPTEST_CASES environment variable.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The HUGE engine agrees with the sequential reference on arbitrary
    /// graphs, queries and cluster shapes.
    #[test]
    fn engine_agrees_with_reference(
        graph in arb_graph(),
        pattern in arb_pattern(),
        machines in 1usize..5,
        workers in 1usize..3,
        batch in prop_oneof![Just(32usize), Just(512usize), Just(1usize << 16)],
    ) {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let cluster = HugeCluster::build(
            graph,
            ClusterConfig::new(machines).workers(workers).batch_size(batch),
        ).unwrap();
        let report = cluster.run(&query, SinkMode::Count).unwrap();
        prop_assert_eq!(report.matches, expected);
    }

    /// Plugged baseline logical plans compute exactly the same result set
    /// sizes as the optimiser's plan.
    #[test]
    fn plugged_plans_agree(
        graph in arb_graph(),
        pattern in prop_oneof![
            Just(Pattern::Square),
            Just(Pattern::ChordalSquare),
            Just(Pattern::FourClique),
        ],
        system in prop_oneof![
            Just(BaselineSystem::Seed),
            Just(BaselineSystem::BigJoin),
            Just(BaselineSystem::Rads),
            Just(BaselineSystem::StarJoin),
        ],
    ) {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let cluster = HugeCluster::build(graph, ClusterConfig::new(2).workers(1)).unwrap();
        let plan = plug_into_huge(system, &query).unwrap();
        let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
        prop_assert_eq!(report.matches, expected);
    }

    /// The number of matches never depends on the symmetry-breaking
    /// constraints being checked early or late: multiplying by the
    /// automorphism count recovers the embedding count.
    #[test]
    fn symmetry_breaking_counts_are_consistent(graph in arb_graph()) {
        let query = Pattern::Square.query_graph();
        let matches = naive::enumerate(&graph, &query);
        let embeddings = naive::enumerate_embeddings(&graph, &query);
        prop_assert_eq!(embeddings, matches * 8); // |Aut(C4)| = 8
    }

    /// Columnar ↔ row-major conversion is lossless for arbitrary batches,
    /// including batches narrowed by a selection vector: the logical rows a
    /// `ColBatch` exposes (and ships through the wire format) are exactly
    /// the selected ones, before and after compaction.
    #[test]
    fn colbatch_rowbatch_round_trip(
        arity in 1usize..5,
        values in prop::collection::vec(0u32..1000, 0..120),
        mask in prop::collection::vec(0u8..2, 0..40),
    ) {
        let n = values.len() / arity;
        let mut rows = RowBatch::new(arity);
        for i in 0..n {
            rows.push_row(&values[i * arity..(i + 1) * arity]);
        }
        let mut cols = ColBatch::from_rows(&rows);
        prop_assert_eq!(cols.len(), n);
        prop_assert_eq!(cols.to_rows().as_flat(), rows.as_flat());

        // Install a selection and check the logical view everywhere.
        let sel: Vec<u32> = (0..n as u32).filter(|&i| {
            mask.get(i as usize).copied().unwrap_or(0) == 1
        }).collect();
        let expected: Vec<u32> = sel
            .iter()
            .flat_map(|&i| values[i as usize * arity..(i as usize + 1) * arity].to_vec())
            .collect();
        cols.set_selection(sel.clone());
        prop_assert_eq!(cols.len(), sel.len());
        prop_assert_eq!(cols.to_rows().as_flat(), expected.as_slice());

        // Compaction materialises the selection without changing the view,
        // and shrinks the accounted bytes to the surviving rows.
        let selected_bytes = (sel.len() * arity * 4) as u64;
        cols.compact();
        prop_assert!(cols.selection().is_none());
        prop_assert_eq!(cols.byte_size(), selected_bytes);
        prop_assert_eq!(cols.to_rows().as_flat(), expected.as_slice());
    }
}
