//! Integration tests of the BFS/DFS-adaptive scheduler, the memory bound and
//! the cache / communication behaviour.

use huge_cache::CacheKind;
use huge_core::{ClusterConfig, HugeCluster, LoadBalance, SinkMode};
use huge_graph::gen;
use huge_query::{naive, Pattern};

#[test]
fn bounded_queues_bound_memory() {
    // A dense-ish graph where the square query has a large intermediate
    // (2-path) stage; bounded queues must keep the peak far below the
    // unbounded (pure BFS) run.
    let graph = gen::barabasi_albert(2_000, 12, 3);
    let query = Pattern::Square.query_graph();
    let bounded = HugeCluster::build(
        graph.clone(),
        ClusterConfig::new(2)
            .workers(2)
            .output_queue_rows(2_000)
            .batch_size(1_000),
    )
    .unwrap()
    .run(&query, SinkMode::Count)
    .unwrap();
    let unbounded = HugeCluster::build(
        graph,
        ClusterConfig::new(2)
            .workers(2)
            .output_queue_rows(usize::MAX / 2),
    )
    .unwrap()
    .run(&query, SinkMode::Count)
    .unwrap();
    assert_eq!(bounded.matches, unbounded.matches);
    assert!(
        bounded.peak_memory_bytes * 2 < unbounded.peak_memory_bytes,
        "bounded {} vs unbounded {}",
        bounded.peak_memory_bytes,
        unbounded.peak_memory_bytes
    );
}

#[test]
fn cache_reduces_pulled_traffic() {
    let graph = gen::barabasi_albert(3_000, 8, 9);
    let query = Pattern::Triangle.query_graph();
    // Small batches so the cache gets a chance to be reused *across* batches
    // (within a single batch both configurations deduplicate fetches).
    let with_cache = HugeCluster::build(
        graph.clone(),
        ClusterConfig::new(4)
            .workers(2)
            .batch_size(512)
            .cache_fraction(1.0),
    )
    .unwrap()
    .run(&query, SinkMode::Count)
    .unwrap();
    let without_cache = HugeCluster::build(
        graph,
        ClusterConfig::new(4).workers(2).batch_size(512).no_cache(),
    )
    .unwrap()
    .run(&query, SinkMode::Count)
    .unwrap();
    assert_eq!(with_cache.matches, without_cache.matches);
    assert!(
        with_cache.comm.bytes_pulled < without_cache.comm.bytes_pulled,
        "cache {} vs no cache {}",
        with_cache.comm.bytes_pulled,
        without_cache.comm.bytes_pulled
    );
    assert!(with_cache.cache.hits > 0);
}

#[test]
fn larger_caches_do_not_pull_more() {
    let graph = gen::barabasi_albert(2_000, 8, 11);
    let query = Pattern::Square.query_graph();
    let mut previous = u64::MAX;
    let mut counts = Vec::new();
    for fraction in [0.02, 0.3, 1.0] {
        let report = HugeCluster::build(
            graph.clone(),
            ClusterConfig::new(4).workers(2).cache_fraction(fraction),
        )
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
        counts.push(report.matches);
        assert!(
            report.comm.bytes_pulled <= previous,
            "pulled bytes should not grow with cache size"
        );
        previous = report.comm.bytes_pulled;
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn every_cache_design_is_correct() {
    let graph = gen::erdos_renyi(400, 2_500, 17);
    let query = Pattern::Triangle.query_graph();
    let expected = naive::enumerate(&graph, &query);
    for kind in CacheKind::ALL {
        let report = HugeCluster::build(
            graph.clone(),
            ClusterConfig::new(3)
                .workers(2)
                .cache_kind(kind)
                .cache_fraction(0.1),
        )
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
        assert_eq!(report.matches, expected, "{}", kind.name());
    }
}

#[test]
fn every_load_balance_strategy_is_correct() {
    let graph = gen::barabasi_albert(800, 7, 23);
    let query = Pattern::ChordalSquare.query_graph();
    let expected = naive::enumerate(&graph, &query);
    for lb in [
        LoadBalance::WorkStealing,
        LoadBalance::None,
        LoadBalance::RegionGroup,
    ] {
        let report = HugeCluster::build(
            graph.clone(),
            ClusterConfig::new(3).workers(3).load_balance(lb),
        )
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
        assert_eq!(report.matches, expected, "{lb:?}");
    }
}

#[test]
fn pushing_plans_spill_and_still_count_correctly() {
    // Force a plan with PUSH-JOIN (disable pulling) and a tiny join buffer so
    // the Grace partitions spill to disk.
    let graph = gen::erdos_renyi(300, 1_500, 41);
    let query = Pattern::Path(5).query_graph();
    let expected = naive::enumerate(&graph, &query);
    let cluster = HugeCluster::build(
        graph,
        ClusterConfig::new(2).workers(2).join_buffer_bytes(2_048),
    )
    .unwrap();
    let plan = cluster
        .plan_with_options(
            &query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    let dataflow = huge_plan::translate::translate(&plan).unwrap();
    assert!(
        dataflow.num_joins() >= 1,
        "expected a PUSH-JOIN in the plan"
    );
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    assert!(report.comm.bytes_pushed > 0);
}

#[test]
fn inter_machine_stealing_keeps_counts_and_moves_work() {
    // A very skewed graph: one hub machine owns most of the work.
    let graph = gen::barabasi_albert(4_000, 10, 1);
    let query = Pattern::Triangle.query_graph();
    let expected = naive::enumerate(&graph, &query);
    let report = HugeCluster::build(graph, ClusterConfig::new(4).workers(1).batch_size(512))
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
    assert_eq!(report.matches, expected);
    // Stealing is opportunistic; at least the counters must be consistent.
    let stolen: u64 = report.machines.iter().map(|m| m.batches_stolen).sum();
    assert_eq!(stolen, report.comm.steals + stolen - report.comm.steals);
}

#[test]
fn fetch_time_is_a_small_fraction_of_total() {
    // The two-stage execution's synchronisation overhead (fetch stage) must
    // stay small relative to the total, as Table 5 reports.
    let graph = gen::barabasi_albert(3_000, 8, 29);
    let query = Pattern::FourClique.query_graph();
    let report = HugeCluster::build(graph, ClusterConfig::new(2).workers(2))
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
    assert!(report.fetch_time <= report.compute_time);
}
