//! Cross-crate integration tests: the full pipeline (generate → partition →
//! plan → translate → execute) against the sequential reference enumerator,
//! for every paper query, several datasets and both the optimiser's plans
//! and the plugged baseline plans.

use huge_baselines::Baseline;
use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::{gen, Dataset, DatasetKind, Graph};
use huge_plan::baselines::{plug_into_huge, BaselineSystem};
use huge_query::{naive, Pattern};

fn reference(graph: &Graph, pattern: Pattern) -> u64 {
    naive::enumerate(graph, &pattern.query_graph())
}

#[test]
fn huge_matches_reference_on_every_paper_query() {
    // A graph small enough that even the 6-vertex queries finish quickly.
    let graph = gen::erdos_renyi(150, 650, 21);
    let cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(3).workers(2)).unwrap();
    for (i, pattern) in Pattern::PAPER_QUERIES.iter().enumerate() {
        let expected = reference(&graph, *pattern);
        let report = cluster
            .run(&pattern.query_graph(), SinkMode::Count)
            .unwrap();
        assert_eq!(report.matches, expected, "q{} mismatch", i + 1);
    }
}

#[test]
fn huge_matches_reference_on_synthetic_datasets() {
    for kind in [DatasetKind::Go, DatasetKind::Eu, DatasetKind::Uk] {
        let graph = Dataset::new(kind).scaled(0.01).generate();
        let expected = reference(&graph, Pattern::Triangle);
        let cluster = HugeCluster::build(graph, ClusterConfig::new(4).workers(2)).unwrap();
        let report = cluster
            .run(&Pattern::Triangle.query_graph(), SinkMode::Count)
            .unwrap();
        assert_eq!(report.matches, expected, "{}", kind.name());
    }
}

#[test]
fn plugged_baseline_plans_agree_with_the_optimiser() {
    let graph = gen::barabasi_albert(250, 6, 13);
    let cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(2).workers(2)).unwrap();
    for pattern in [Pattern::Square, Pattern::ChordalSquare, Pattern::FourClique] {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        for system in [
            BaselineSystem::StarJoin,
            BaselineSystem::Seed,
            BaselineSystem::BigJoin,
            BaselineSystem::Benu,
            BaselineSystem::Rads,
        ] {
            let plan = plug_into_huge(system, &query).unwrap();
            let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
            assert_eq!(
                report.matches, expected,
                "{system:?} plan on {pattern:?} disagrees"
            );
        }
    }
}

#[test]
fn baseline_engines_agree_with_huge() {
    let graph = gen::erdos_renyi(120, 550, 5);
    let config = ClusterConfig::new(2).workers(1);
    let cluster = HugeCluster::build(graph.clone(), config.clone()).unwrap();
    for pattern in [Pattern::Triangle, Pattern::Square] {
        let query = pattern.query_graph();
        let huge = cluster.run(&query, SinkMode::Count).unwrap().matches;
        for baseline in Baseline::ALL {
            let report = baseline.run(&graph, &query, &config).unwrap();
            assert_eq!(report.matches, huge, "{}", baseline.name());
        }
    }
}

#[test]
fn results_are_independent_of_cluster_shape() {
    let graph = gen::barabasi_albert(400, 5, 31);
    let query = Pattern::ChordalSquare.query_graph();
    let expected = naive::enumerate(&graph, &query);
    for machines in [1, 2, 5] {
        for workers in [1, 3] {
            let cluster =
                HugeCluster::build(graph.clone(), ClusterConfig::new(machines).workers(workers))
                    .unwrap();
            let report = cluster.run(&query, SinkMode::Count).unwrap();
            assert_eq!(
                report.matches, expected,
                "machines={machines} workers={workers}"
            );
        }
    }
}

#[test]
fn results_are_independent_of_batch_and_queue_sizes() {
    let graph = gen::erdos_renyi(200, 900, 77);
    let query = Pattern::Square.query_graph();
    let expected = naive::enumerate(&graph, &query);
    for batch in [64, 1024, 1 << 20] {
        for queue in [128, 100_000] {
            let cluster = HugeCluster::build(
                graph.clone(),
                ClusterConfig::new(3)
                    .workers(2)
                    .batch_size(batch)
                    .output_queue_rows(queue),
            )
            .unwrap();
            let report = cluster.run(&query, SinkMode::Count).unwrap();
            assert_eq!(report.matches, expected, "batch={batch} queue={queue}");
        }
    }
}

#[test]
fn collected_samples_are_genuine_isomorphic_matches() {
    let graph = gen::caveman(8, 7, 3);
    let query = Pattern::FourClique.query_graph();
    let cluster = HugeCluster::build(graph.clone(), ClusterConfig::new(2)).unwrap();
    let report = cluster.run(&query, SinkMode::Collect(25)).unwrap();
    assert!(!report.sample_matches.is_empty());
    for m in &report.sample_matches {
        // All query edges must map to data edges and the mapping must be
        // injective and respect the symmetry-breaking order.
        for &(a, b) in query.edges() {
            assert!(graph.has_edge(m[a as usize], m[b as usize]));
        }
        let mut sorted = m.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), query.num_vertices());
        assert!(query.order().check_full(m));
    }
}
