//! Integration tests of the memory governor: the bounded-memory adaptive
//! scheduling subsystem (the paper's Exp-7 trade-off as an online
//! controller).
//!
//! The governed guarantee under test: with a byte budget set, a run
//! completes with *identical results* while its peak tracked memory stays
//! within the per-machine budget plus one output batch of slack (every
//! flow-control point may overflow by at most one batch, §5.2) plus the one
//! resident Grace partition a streaming join needs as working set.

use huge_baselines::Baseline;
use huge_core::{ClusterConfig, HugeCluster, PressureLevel, SinkMode};
use huge_graph::gen;
use huge_plan::optimizer::OptimizerOptions;
use huge_query::{naive, Pattern};
use proptest::prelude::*;

/// The skewed-join workload: a power-law graph whose square query compiles
/// (with pulling disabled) into a multi-segment `PUSH-JOIN` plan with a
/// large 2-path intermediate on the hub machine.
fn skewed_join_setup() -> (
    huge_graph::Graph,
    huge_plan::logical::ExecutionPlan,
    ClusterConfig,
) {
    let graph = gen::barabasi_albert(2_000, 12, 3);
    let config = ClusterConfig::new(2).workers(2).batch_size(1_000);
    let plan = HugeCluster::build(graph.clone(), config.clone())
        .unwrap()
        .plan_with_options(
            &Pattern::Square.query_graph(),
            OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    (graph, plan, config)
}

#[test]
fn governed_peak_respects_the_budget_on_a_skewed_join_plan() {
    let (graph, plan, config) = skewed_join_setup();
    let ungoverned = HugeCluster::build(graph.clone(), config.clone())
        .unwrap()
        .run_with_plan(&plan, SinkMode::Count)
        .unwrap();
    assert!(ungoverned.governor.is_none(), "no budget, no governor");
    let natural_peak = ungoverned.peak_memory_bytes;
    assert!(natural_peak > 0);

    // Budget: half the natural peak, per machine.
    let budget = natural_peak / 2;
    let batch_rows = config.batch_size as u64;
    let governed = HugeCluster::build(graph, config.memory_budget_per_machine(budget))
        .unwrap()
        .run_with_plan(&plan, SinkMode::Count)
        .unwrap();

    // Identical results.
    assert_eq!(governed.matches, ungoverned.matches);

    // Bounded memory: budget + slack. The slack has two terms, mirroring
    // the runtime's actual bound: (a) one output batch per flow-control
    // point (configured-size batches of ≤4 u32 columns across the ≤16
    // overflow points that can each hold one batch when the ladder trips —
    // the paper's overflow-by-at-most-one-batch argument), and (b) the
    // single resident Grace partition a streaming join must hold to make
    // progress (the paper bounds join memory by the partition size; one of
    // 16 partitions of the materialised intermediates, conservatively
    // natural_peak / 16).
    let batch_slack: u64 = batch_rows * 4 * 4 * 16;
    let partition_slack = natural_peak / 16;
    let slack = batch_slack + partition_slack;
    assert!(
        governed.peak_memory_bytes <= budget + slack,
        "governed peak {} exceeds budget {budget} + slack {slack}",
        governed.peak_memory_bytes
    );
    assert!(
        governed.peak_memory_bytes * 10 <= natural_peak * 7,
        "governing at half budget should cut the peak well below the \
         natural one: {} vs {natural_peak}",
        governed.peak_memory_bytes
    );

    // The report records what the controller did.
    let gov = governed.governor.expect("budgeted run carries a report");
    assert_eq!(gov.machine_budget_bytes, budget);
    assert_eq!(gov.peak_bytes, governed.peak_memory_bytes);
    assert!(gov.transitions() > 0, "a tight budget must trip the ladder");
    assert!(
        gov.transitions_to_red > 0 && gov.spilled_bytes > 0,
        "half the natural peak must reach Red and spill joins \
         (red={}, spilled={})",
        gov.transitions_to_red,
        gov.spilled_bytes
    );
    assert!(gov.throttled_batches > 0);
}

#[test]
fn governed_runs_agree_with_every_engine() {
    // Result parity under a tight budget, against the ungoverned HUGE run
    // and all five baseline engines (which receive, and ignore, the budget).
    let graph = gen::erdos_renyi(150, 800, 9);
    let config = ClusterConfig::new(3).workers(1);
    for pattern in [Pattern::Triangle, Pattern::Square] {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let ungoverned = HugeCluster::build(graph.clone(), config.clone())
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(ungoverned.matches, expected, "HUGE on {pattern:?}");
        // A budget tight enough to keep the whole run under pressure.
        let governed_config = config.clone().memory_budget(64 * 1024);
        let governed = HugeCluster::build(graph.clone(), governed_config.clone())
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(governed.matches, expected, "governed HUGE on {pattern:?}");
        // Barriered execution is governed through the same hooks.
        let barriered = HugeCluster::build(
            graph.clone(),
            governed_config.clone().pipeline_segments(false),
        )
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
        assert_eq!(
            barriered.matches, expected,
            "governed barriered {pattern:?}"
        );
        for baseline in Baseline::ALL {
            let report = baseline.run(&graph, &query, &governed_config).unwrap();
            assert_eq!(
                report.matches,
                expected,
                "{} with a budgeted config on {:?}",
                baseline.name(),
                pattern
            );
        }
    }
}

#[test]
fn pressure_ladder_stays_green_under_a_loose_budget() {
    let (graph, plan, config) = skewed_join_setup();
    let ungoverned = HugeCluster::build(graph.clone(), config.clone())
        .unwrap()
        .run_with_plan(&plan, SinkMode::Count)
        .unwrap();
    // A budget far above the natural peak never leaves Green: the governor
    // observes but the run is identical to the ungoverned one.
    let governed = HugeCluster::build(
        graph,
        config.memory_budget_per_machine(ungoverned.peak_memory_bytes * 16),
    )
    .unwrap()
    .run_with_plan(&plan, SinkMode::Count)
    .unwrap();
    assert_eq!(governed.matches, ungoverned.matches);
    let gov = governed.governor.expect("report present");
    assert_eq!(gov.transitions(), 0);
    assert_eq!(gov.throttled_batches, 0);
    assert_eq!(gov.spilled_bytes, 0);
    assert!(!gov.over_budget());
}

#[test]
fn governed_columnar_run_stays_bounded_and_charges_column_bytes() {
    // The operator currency is columnar: the bytes a governed run tracks in
    // its operator queues are `ColBatch` bytes, and the traffic report
    // surfaces both the column bytes produced and the intersection-kernel
    // dispatch counts. A tight budget must still bound the peak and keep the
    // count identical.
    let graph = gen::barabasi_albert(1_500, 10, 5);
    let query = Pattern::Triangle.query_graph();
    let config = ClusterConfig::new(2).workers(2).batch_size(512);
    let ungoverned = HugeCluster::build(graph.clone(), config.clone())
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
    assert!(
        ungoverned.comm.col_bytes > 0,
        "columnar batches must be charged to the stats"
    );
    assert!(
        ungoverned.comm.kernel_invocations() > 0,
        "extends must record their kernel dispatches"
    );

    let budget = 48 * 1024u64;
    let governed = HugeCluster::build(graph, config.memory_budget_per_machine(budget))
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
    assert_eq!(governed.matches, ungoverned.matches);
    let gov = governed.governor.expect("budgeted run carries a report");
    assert_eq!(gov.peak_bytes, governed.peak_memory_bytes);
    // One 3-column batch of slack per flow-control point (≤16), same
    // overflow-by-at-most-one-batch bound the row-major runtime had.
    let slack = 512 * 3 * 4 * 16;
    assert!(
        governed.peak_memory_bytes <= budget + slack,
        "governed columnar peak {} exceeds budget {budget} + slack {slack}",
        governed.peak_memory_bytes
    );
}

#[test]
fn pressure_levels_order_green_yellow_red() {
    // The ladder is ordered (used by the strict-DFS comparisons).
    assert!(PressureLevel::Green < PressureLevel::Yellow);
    assert!(PressureLevel::Yellow < PressureLevel::Red);
}

proptest! {
    // Each case is a whole governed cluster run; keep the count small (CI
    // further caps it through PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (often absurdly tight) budgets over random graphs, plans and
    /// cluster shapes: a governed run must always terminate with the
    /// reference count — the actuators only tighten flow control, so no
    /// budget may deadlock or change results.
    #[test]
    fn governed_runs_never_deadlock_and_stay_correct(
        graph in prop::collection::vec((0u32..60, 0u32..60), 10..200)
            .prop_map(huge_graph::Graph::from_edges)
            .prop_filter("need some edges", |g| g.num_edges() >= 5),
        pattern in prop_oneof![
            Just(Pattern::Triangle),
            Just(Pattern::Square),
            Just(Pattern::ChordalSquare),
            Just(Pattern::Path(4)),
        ],
        machines in 1usize..4,
        budget in prop_oneof![
            Just(1u64),            // everything is Red from the first byte
            Just(4 * 1024),
            Just(256 * 1024),
            Just(u64::MAX / 4),    // never leaves Green
        ],
        batch in prop_oneof![Just(64usize), Just(1024usize)],
        pipelined in prop_oneof![Just(true), Just(false)],
    ) {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let config = ClusterConfig::new(machines)
            .workers(1)
            .batch_size(batch)
            .memory_budget(budget)
            .pipeline_segments(pipelined);
        let report = HugeCluster::build(graph, config)
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        prop_assert_eq!(report.matches, expected);
        prop_assert!(report.governor.is_some());
    }
}
