//! Flight-recorder integration tests: ring overflow exactness, tracing as a
//! pure observer across the five-engine matrix, and Chrome trace-event JSON
//! well-formedness/nesting under proptest-generated span interleavings.

use std::collections::HashMap;

use huge_baselines::Baseline;
use huge_core::{ClusterConfig, HugeCluster, SinkMode, TraceConfig};
use huge_graph::gen;
use huge_query::{naive, Pattern};
use huge_trace::{kv, Recorder, SpanId, TraceBuf};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Ring overflow: newest events win, drops are counted exactly
// ---------------------------------------------------------------------------

#[test]
fn ring_overflow_keeps_newest_and_counts_drops_exactly() {
    let rec = Recorder::new(TraceConfig::full().ring_capacity(16));
    let buf = rec.ring(0, "machine-0", 0);
    for i in 0..100u64 {
        buf.instant_kv("tick", kv("seq", i));
    }
    let tl = rec.timeline();
    let track = &tl.tracks[0];
    assert_eq!(track.events.len(), 16, "a full ring holds exactly capacity");
    assert_eq!(track.dropped, 100 - 16, "drops are counted exactly");
    let seqs: Vec<u64> = track.events.iter().map(|e| e.args[0].1).collect();
    assert_eq!(
        seqs,
        (84..100).collect::<Vec<u64>>(),
        "overflow overwrites oldest-first, keeping the newest window in order"
    );
    let summary = tl.summary();
    assert_eq!(summary.events_recorded, 16);
    assert_eq!(summary.events_dropped, 84);
    assert_eq!(summary.instants, 16);
}

#[test]
fn engine_run_with_tiny_rings_counts_drops_and_still_exports() {
    // A multi-segment PUSH-JOIN run floods 8-slot rings many times over; the
    // export must stay valid and account every displaced event.
    let graph = gen::erdos_renyi(250, 1_200, 31);
    let query = Pattern::Path(4).query_graph();
    let expected = naive::enumerate(&graph, &query);
    let cluster = HugeCluster::build(
        graph,
        ClusterConfig::new(3)
            .workers(1)
            .tracing(TraceConfig::full().ring_capacity(8)),
    )
    .unwrap();
    let plan = cluster
        .plan_with_options(
            &query,
            huge_plan::optimizer::OptimizerOptions {
                disable_pulling: true,
                ..Default::default()
            },
        )
        .unwrap();
    let report = cluster.run_with_plan(&plan, SinkMode::Count).unwrap();
    assert_eq!(report.matches, expected);
    let trace = report.trace.expect("full mode attaches a trace summary");
    assert!(
        trace.events_dropped > 0,
        "8-slot rings must have overflowed"
    );
    assert!(trace.events_recorded <= 8 * trace.tracks as u64);
    let json = trace.chrome_json.expect("full mode exports Chrome JSON");
    let parsed = parse_json(&json).expect("export must stay well-formed under overflow");
    check_chrome_shape(&parsed).unwrap();
}

// ---------------------------------------------------------------------------
// Tracing is an observer: five-engine matrix parity, disabled = zero events
// ---------------------------------------------------------------------------

#[test]
fn tracing_is_a_pure_observer_across_the_five_engine_matrix() {
    let graph = gen::erdos_renyi(150, 800, 9);
    let off = ClusterConfig::new(3).workers(1);
    let full = off.clone().tracing(TraceConfig::full());
    for pattern in [Pattern::Triangle, Pattern::Square] {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);

        let huge_off = HugeCluster::build(graph.clone(), off.clone())
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(huge_off.matches, expected, "HUGE off on {pattern:?}");
        assert!(huge_off.trace.is_none(), "off mode attaches no trace");
        assert!(huge_off.metrics.is_none(), "off mode attaches no snapshot");

        let huge_metrics = HugeCluster::build(
            graph.clone(),
            off.clone().tracing(TraceConfig::metrics_only()),
        )
        .unwrap()
        .run(&query, SinkMode::Count)
        .unwrap();
        assert_eq!(
            huge_metrics.matches, expected,
            "HUGE metrics on {pattern:?}"
        );
        let mt = huge_metrics.trace.expect("metrics mode attaches a summary");
        assert_eq!(mt.events_recorded, 0, "span recording stays gated off");
        assert_eq!(mt.spans, 0);
        assert!(mt.chrome_json.is_none(), "no timeline without spans");
        assert!(huge_metrics
            .metrics
            .expect("metrics mode attaches a snapshot")
            .contains("huge_matches_total"));

        let huge_full = HugeCluster::build(graph.clone(), full.clone())
            .unwrap()
            .run(&query, SinkMode::Count)
            .unwrap();
        assert_eq!(huge_full.matches, expected, "HUGE full on {pattern:?}");
        let ft = huge_full.trace.expect("full mode attaches a summary");
        assert!(ft.spans > 0, "full mode records spans");
        assert!(ft.chrome_json.is_some());
        // The recorder-backed per-segment aggregates must fill the report's
        // per-machine fields identically in every mode (one clock, one
        // collection path).
        for (a, b) in huge_off.machines.iter().zip(huge_full.machines.iter()) {
            assert_eq!(a.segment_busy.len(), b.segment_busy.len());
            assert_eq!(a.segment_spans.len(), b.segment_spans.len());
        }

        for baseline in Baseline::ALL {
            let b_off = baseline.run(&graph, &query, &off).unwrap();
            assert_eq!(
                b_off.matches,
                expected,
                "{} off on {pattern:?}",
                baseline.name()
            );
            assert!(b_off.trace.is_none());
            // Baselines execute outside HugeCluster; the tracing config must
            // be a no-op for them — same counts, no trace attached.
            let b_full = baseline.run(&graph, &query, &full).unwrap();
            assert_eq!(
                b_full.matches,
                expected,
                "{} under a traced config on {pattern:?}",
                baseline.name()
            );
            assert!(b_full.trace.is_none());
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome JSON well-formedness under random span interleavings
// ---------------------------------------------------------------------------

/// The operations a generated interleaving is built from. Orphan exits forge
/// span ids whose enters never happened (or were overwritten), mirroring
/// what ring overflow does to a real track.
#[derive(Debug, Clone)]
enum Op {
    Enter(usize),
    ExitTop,
    ExitOrphan(u32),
    Instant(usize),
}

/// Span names deliberately include everything the JSON escaper must handle:
/// quotes, backslashes, newlines and raw control characters.
const NAMES: [&str; 4] = ["chain", "park", "back\"slash\\quote", "ctl\n\t\u{7}chars"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(Op::Enter),
        Just(Op::ExitTop),
        (0u32..u32::MAX).prop_map(Op::ExitOrphan),
        (0usize..NAMES.len()).prop_map(Op::Instant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever interleaving of enters/exits/instants the machines produce —
    /// including orphan exits and overflowing rings — the export must parse
    /// as JSON, carry the Chrome trace-event shape, and contain only
    /// properly nested spans on every track.
    #[test]
    fn chrome_json_is_well_formed_and_nesting_balanced(
        ops in prop::collection::vec(op_strategy(), 0..200),
        capacity in 4usize..64,
        tracks in 1usize..4,
    ) {
        let rec = Recorder::new(TraceConfig::full().ring_capacity(capacity));
        let bufs: Vec<TraceBuf> = (0..tracks)
            .map(|m| rec.ring(m as u32, format!("machine-{m}"), 0))
            .collect();
        let mut stacks: Vec<Vec<SpanId>> = vec![Vec::new(); tracks];
        for (i, op) in ops.iter().enumerate() {
            let t = i % tracks;
            match op {
                Op::Enter(n) => stacks[t].push(bufs[t].enter_kv(NAMES[*n], kv("i", i as u64))),
                Op::ExitTop => {
                    if let Some(id) = stacks[t].pop() {
                        bufs[t].exit(id);
                    }
                }
                Op::ExitOrphan(raw) => bufs[t].exit(SpanId(raw % 1024)),
                Op::Instant(n) => bufs[t].instant(NAMES[*n]),
            }
        }
        rec.global_instant("cancelled", 42, kv("machines", tracks as u64));
        let json = rec.timeline().chrome_json();
        let parsed = parse_json(&json);
        prop_assert!(parsed.is_ok(), "unparseable export: {:?}", parsed.err());
        if let Err(msg) = check_chrome_shape(&parsed.unwrap()) {
            prop_assert!(false, "{msg}");
        }
    }
}

/// Validates the Chrome trace-event shape and per-track span nesting of a
/// parsed export. Returns a description of the first violation.
fn check_chrome_shape(doc: &Json) -> Result<(), String> {
    let top = doc.as_obj().ok_or("top level must be an object")?;
    let unit = lookup(top, "displayTimeUnit").ok_or("missing displayTimeUnit")?;
    if unit.as_str() != Some("ms") {
        return Err(format!("displayTimeUnit is {unit:?}"));
    }
    let events = lookup(top, "traceEvents")
        .and_then(Json::as_arr)
        .ok_or("traceEvents must be an array")?;
    let mut spans_by_track: HashMap<(i64, i64), Vec<(i64, i64)>> = HashMap::new();
    for ev in events {
        let obj = ev.as_obj().ok_or("every event must be an object")?;
        let ph = lookup(obj, "ph")
            .and_then(Json::as_str)
            .ok_or("every event carries ph")?;
        let pid = lookup(obj, "pid")
            .and_then(Json::as_i64)
            .ok_or("every event carries pid")?;
        let tid = lookup(obj, "tid")
            .and_then(Json::as_i64)
            .ok_or("every event carries tid")?;
        match ph {
            "M" => {}
            "i" => {
                if lookup(obj, "s").and_then(Json::as_str) != Some("t") {
                    return Err("instants must be thread-scoped (\"s\":\"t\")".into());
                }
                let ts = lookup(obj, "ts")
                    .and_then(Json::as_i64)
                    .ok_or("instant ts")?;
                if ts < 0 {
                    return Err(format!("negative instant ts {ts}"));
                }
            }
            "X" => {
                let ts = lookup(obj, "ts").and_then(Json::as_i64).ok_or("span ts")?;
                let dur = lookup(obj, "dur")
                    .and_then(Json::as_i64)
                    .ok_or("span dur")?;
                if ts < 0 || dur < 0 {
                    return Err(format!("span with ts {ts} dur {dur}"));
                }
                if lookup(obj, "name").and_then(Json::as_str).is_none() {
                    return Err("span without a name".into());
                }
                spans_by_track
                    .entry((pid, tid))
                    .or_default()
                    .push((ts, ts + dur));
            }
            other => return Err(format!("unexpected ph {other:?}")),
        }
    }
    // Nesting balance: on each track, sorted by (start asc, end desc) —
    // parents before children — every span must sit entirely inside the
    // innermost still-open ancestor.
    for ((pid, tid), mut spans) in spans_by_track {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut open: Vec<i64> = Vec::new();
        for (start, end) in spans {
            while open
                .last()
                .is_some_and(|&ancestor_end| ancestor_end <= start)
            {
                open.pop();
            }
            if let Some(&ancestor_end) = open.last() {
                if end > ancestor_end {
                    return Err(format!(
                        "track ({pid},{tid}): span [{start},{end}] crosses its \
                         ancestor ending at {ancestor_end}"
                    ));
                }
            }
            open.push(end);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// A minimal JSON parser (the workspace is offline — no serde), strict enough
// to reject trailing garbage, bad escapes and unbalanced structure.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
}

fn lookup<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected {:?} at byte {}", b as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                // Raw control characters are invalid inside JSON strings —
                // this is exactly what the exporter's escaper must prevent.
                0x00..=0x1f => return Err(format!("raw control byte {b:#x} in string")),
                _ => {
                    // Collect the full UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or("invalid UTF-8 lead byte")?;
                    let end = start + len;
                    let chunk = self.bytes.get(start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0x20..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}
