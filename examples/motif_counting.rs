//! Motif counting (a graph-pattern-mining style workload, §6 of the paper):
//! counts all connected 3- and 4-vertex motifs of a graph and reports their
//! frequencies, using HUGE as the enumeration engine.
//!
//! ```text
//! cargo run -p huge-examples --release --example motif_counting
//! ```

use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::{Pattern, QueryGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gen::barabasi_albert(8_000, 6, 9);
    let cluster = HugeCluster::build(graph, ClusterConfig::new(4).workers(2))?;

    // The connected motifs on 3 and 4 vertices.
    let motifs: Vec<(&str, QueryGraph)> = vec![
        ("wedge (2-path)", Pattern::Path(3).query_graph()),
        ("triangle", Pattern::Triangle.query_graph()),
        ("3-path", Pattern::Path(4).query_graph()),
        ("3-star", Pattern::Star(3).query_graph()),
        ("square", Pattern::Square.query_graph()),
        ("tailed triangle", {
            QueryGraph::new(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
                .with_name("tailed-triangle")
                .with_auto_order()
        }),
        ("chordal square", Pattern::ChordalSquare.query_graph()),
        ("4-clique", Pattern::FourClique.query_graph()),
    ];

    println!("{:<18} {:>14} {:>10}", "motif", "occurrences", "time (s)");
    let mut total = 0u64;
    for (name, query) in &motifs {
        let report = cluster.run(query, SinkMode::Count)?;
        total += report.matches;
        println!(
            "{:<18} {:>14} {:>10.3}",
            name,
            report.matches,
            report.total_time().as_secs_f64()
        );
    }
    println!("\n{total} motif occurrences in total");
    Ok(())
}
