//! Quickstart: enumerate a few patterns on a synthetic social graph.
//!
//! ```text
//! cargo run -p huge-examples --release --example quickstart
//! ```

use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power-law graph standing in for a small social network.
    let graph = gen::barabasi_albert(20_000, 8, 42);
    println!(
        "data graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // A simulated 4-machine cluster with 2 workers per machine.
    let cluster = HugeCluster::build(graph, ClusterConfig::new(4).workers(2))?;

    for pattern in [
        Pattern::Triangle,
        Pattern::Square,
        Pattern::ChordalSquare,
        Pattern::FourClique,
    ] {
        let query = pattern.query_graph();
        let report = cluster.run(&query, SinkMode::Count)?;
        println!(
            "{:<22} {:>12} matches   T = {:>8.3}s  (compute {:.3}s, comm {:.3}s, {} KiB moved)",
            pattern.name(),
            report.matches,
            report.total_time().as_secs_f64(),
            report.compute_time.as_secs_f64(),
            report.comm_time.as_secs_f64(),
            report.comm_bytes / 1024
        );
    }

    // Collect a handful of concrete matches for inspection.
    let query = Pattern::Square.query_graph();
    let report = cluster.run(&query, SinkMode::Collect(3))?;
    println!("\nthree example squares (vertex ids per query vertex v1..v4):");
    for m in &report.sample_matches {
        println!("  {m:?}");
    }
    Ok(())
}
