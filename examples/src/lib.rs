//! Shared helpers for the runnable examples (see the `examples/*.rs` files).
//!
//! The actual examples are example targets of this package:
//! `cargo run -p huge-examples --example quickstart`.
