//! A miniature Cypher-like front end (§6: "HUGE can be extended as a
//! Cypher-based distributed graph database"): parses `MATCH` patterns of the
//! form `(a)-(b), (b)-(c), …`, builds the query graph, plans it with the
//! optimiser and runs it on the engine.
//!
//! ```text
//! cargo run -p huge-examples --release --example cypher_like_queries
//! ```

use std::collections::HashMap;

use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::QueryGraph;

/// Parses a tiny `MATCH`-style pattern: a comma-separated list of
/// `(name)-(name)` edges. Returns the query graph and the variable names in
/// query-vertex order.
fn parse_match(pattern: &str) -> Result<(QueryGraph, Vec<String>), String> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, u8> = HashMap::new();
    let mut edges: Vec<(u8, u8)> = Vec::new();
    for part in pattern.split(',') {
        let part = part.trim();
        let (a, b) = part
            .split_once('-')
            .ok_or_else(|| format!("cannot parse edge {part:?}"))?;
        let clean = |s: &str| s.trim().trim_matches(|c| c == '(' || c == ')').to_string();
        let mut resolve = |name: String| -> u8 {
            *index.entry(name.clone()).or_insert_with(|| {
                names.push(name);
                (names.len() - 1) as u8
            })
        };
        let ai = resolve(clean(a));
        let bi = resolve(clean(b));
        if ai == bi {
            return Err(format!("self loop in pattern: {part:?}"));
        }
        edges.push((ai, bi));
    }
    let query = QueryGraph::new(names.len(), edges).with_auto_order();
    Ok((query, names))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gen::barabasi_albert(10_000, 7, 3);
    let cluster = HugeCluster::build(graph, ClusterConfig::new(4).workers(2))?;

    // The chain-of-five query runs with the count-only sink: a pure `COUNT`
    // answer never materialises the final extension column, which dominates
    // the work on low-degree chain/path patterns.
    let queries = [
        (
            "friends of friends closing a triangle",
            "(a)-(b), (b)-(c), (a)-(c)",
            SinkMode::Collect(2),
        ),
        (
            "square of collaborations",
            "(a)-(b), (b)-(c), (c)-(d), (d)-(a)",
            SinkMode::Collect(2),
        ),
        (
            "densely knit group of four",
            "(a)-(b), (a)-(c), (a)-(d), (b)-(c), (b)-(d), (c)-(d)",
            SinkMode::Collect(2),
        ),
        (
            "chain of five (count-only sink)",
            "(a)-(b), (b)-(c), (c)-(d), (d)-(e)",
            SinkMode::Count,
        ),
    ];

    for (description, pattern, sink) in queries {
        let (query, names) = parse_match(pattern).map_err(std::io::Error::other)?;
        let report = cluster.run(&query, sink)?;
        println!("MATCH {pattern}");
        println!("  -- {description}");
        println!(
            "  {} matches in {:.3}s",
            report.matches,
            report.total_time().as_secs_f64()
        );
        for sample in &report.sample_matches {
            let bindings: Vec<String> = names
                .iter()
                .zip(sample)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            println!("  e.g. {}", bindings.join(", "));
        }
        println!();
    }
    Ok(())
}
