//! Runs HUGE and every baseline system on the same workload and prints a
//! Table-1-style comparison (total time, computation time, communication
//! time, bytes moved and peak memory).
//!
//! ```text
//! cargo run -p huge-examples --release --example baseline_faceoff
//! ```

use huge_baselines::Baseline;
use huge_core::{ClusterConfig, HugeCluster, SinkMode};
use huge_graph::gen;
use huge_query::Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gen::barabasi_albert(6_000, 8, 17);
    let query = Pattern::Square.query_graph();
    let config = ClusterConfig::new(4).workers(2);

    println!(
        "square query on a {}-vertex / {}-edge power-law graph, {} machines\n",
        graph.num_vertices(),
        graph.num_edges(),
        config.machines
    );
    println!(
        "{:<10} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "system", "matches", "T(s)", "T_R(s)", "T_C(s)", "C(KiB)", "M(KiB)"
    );

    for baseline in Baseline::ALL {
        let report = baseline.run(&graph, &query, &config)?;
        println!(
            "{:<10} {:>12} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>10}",
            baseline.name(),
            report.matches,
            report.total_time().as_secs_f64(),
            report.compute_time.as_secs_f64(),
            report.comm_time.as_secs_f64(),
            report.comm_bytes / 1024,
            report.peak_memory_bytes / 1024
        );
    }

    let cluster = HugeCluster::build(graph, config)?;
    let report = cluster.run(&query, SinkMode::Count)?;
    println!(
        "{:<10} {:>12} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>10}",
        "HUGE",
        report.matches,
        report.total_time().as_secs_f64(),
        report.compute_time.as_secs_f64(),
        report.comm_time.as_secs_f64(),
        report.comm_bytes / 1024,
        report.peak_memory_bytes / 1024
    );
    Ok(())
}
