//! Shows the optimiser's execution plans and their dataflow translations for
//! every paper query (the programmatic version of Figure 1 of the paper).
//!
//! ```text
//! cargo run -p huge-examples --example plan_explain
//! ```

use huge_graph::gen;
use huge_plan::cost::{CostModel, HybridEstimator};
use huge_plan::optimizer::Optimizer;
use huge_plan::translate::translate;
use huge_query::Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cost model needs a data graph; use a mid-sized power-law graph.
    let graph = gen::barabasi_albert(50_000, 10, 7);
    let estimator = HybridEstimator::from_graph(&graph);
    let model = CostModel::new(10, graph.num_edges()).with_avg_degree(graph.avg_degree());

    for (i, pattern) in Pattern::PAPER_QUERIES.iter().enumerate() {
        let query = pattern.query_graph();
        let plan = Optimizer::new(&estimator, model.clone()).optimize(&query)?;
        let dataflow = translate(&plan)?;
        println!("============ q{} ({}) ============", i + 1, pattern.name());
        print!("{}", plan.explain());
        println!("dataflow:");
        print!("{}", dataflow.explain());
        println!();
    }
    Ok(())
}
