//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, range/tuple/`Just`/
//! collection strategies, `prop_oneof!`, and the [`proptest!`] macro driving
//! seeded, deterministic case generation. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports the assertion failure with the
//!   case's seed; re-running reproduces it exactly (generation is a pure
//!   function of test name and case index).
//! * **Case counts** come from `ProptestConfig` and are capped by the
//!   `PROPTEST_CASES` environment variable (the same knob real proptest
//!   reads), so CI can globally bound suite runtime.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG derived from a test identifier and case index, so every case
    /// of every test draws an independent, reproducible stream.
    pub fn deterministic(test_id: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over an empty domain");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, capped by the `PROPTEST_CASES` environment
    /// variable when set (CI uses this to bound suite runtime).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate (retries generation;
    /// panics if the predicate rejects too often).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((((rng.next_u64() as u128) * span) >> 64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with element strategy `element` and length range
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.index(self.len.end - self.len.start)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest-based test file normally imports.
pub mod prelude {
    pub use crate::{
        boxed, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Asserts a property-level condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-level inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property-based tests: each `fn name(arg in strategy, ...)` runs
/// the body for `cases` seeded, deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases() as u64;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..cases {
                    let mut __rng = $crate::TestRng::deterministic(test_id, __case);
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }

        #[test]
        fn filter_retries(x in (0u32..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_picks_each_option(mut x in prop_oneof![Just(1u32), Just(2u32)]) {
            x += 0;
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u32..1000, 0..50);
        let a: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn env_cap_bounds_cases() {
        // Not set in this process: effective == configured.
        let cfg = ProptestConfig::with_cases(37);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.effective_cases(), 37);
        } else {
            assert!(cfg.effective_cases() <= 37);
        }
    }
}
