//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses — MPMC channels
//! ([`channel`]) and work-stealing deques ([`deque`]) — implemented over std
//! primitives. The implementations favour simplicity (a mutex-protected
//! `VecDeque`) over the lock-free algorithms of the real crate; the API and
//! semantics (cloneable senders *and* receivers, LIFO owner pops with FIFO
//! steals) are the same, so swapping the real crate back in is transparent.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel (cloneable, unlike `std::mpsc`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue.lock().unwrap().push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they can observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None => {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        /// Blocking receive; fails once every sender is gone and the channel
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.available.wait(queue).unwrap();
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod deque {
    //! Work-stealing deques: the owner pushes/pops one end, stealers take
    //! from the other.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Lifo,
        Fifo,
    }

    /// The owner handle of a deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    /// A stealer handle (cloneable, shareable across threads).
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The deque was empty.
        Empty,
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque (owner pops its most recent push).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Creates a FIFO deque (owner pops its oldest push).
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// Pushes a task onto the deque.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Pops a task (from the end determined by the flavor).
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().unwrap();
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Creates a stealer for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the task at the opposite end from the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::deque::{Steal, Worker};

    #[test]
    fn channel_fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn channel_disconnects_when_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn channel_receivers_are_cloneable() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        let got = rx1.try_recv().or_else(|_| rx2.try_recv());
        assert_eq!(got, Ok(7));
    }

    #[test]
    fn channel_concurrent_producers() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn deque_lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: most recent
        assert_eq!(s.steal(), Steal::Success(1)); // stealer: oldest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }
}
