//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses — MPMC channels
//! ([`channel`]) and work-stealing deques ([`deque`]). The channel is a
//! condvar-protected `VecDeque` (simple, correct, and off the hot path); the
//! deque is a real lock-free Chase–Lev deque with the memory-ordering
//! recipe of Lê et al., "Correct and Efficient Work-Stealing for Weak Memory
//! Models" (PPoPP '13) — the owner pushes and pops at the bottom without
//! locks, thieves race on `top` with a single compare-exchange. The API and
//! semantics (LIFO owner pops, FIFO steals, cloneable stealers) match the
//! real crate, so swapping it back in is transparent.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel (cloneable, unlike `std::mpsc`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue.lock().unwrap().push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they can observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None => {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        /// Blocking receive; fails once every sender is gone and the channel
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.available.wait(queue).unwrap();
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod deque {
    //! Lock-free Chase–Lev work-stealing deques.
    //!
    //! The owner ([`Worker`]) pushes and pops at the *bottom* of a growable
    //! circular buffer; thieves ([`Stealer`]) take from the *top*. `top` and
    //! `bottom` are monotonically increasing indices mapped into the buffer
    //! modulo its (power-of-two) capacity. The only contended operation is
    //! the compare-exchange on `top` — the owner's fast path touches no lock
    //! and no CAS except when the deque holds a single element.
    //!
    //! Buffer growth never invalidates concurrent steals: old buffers are
    //! retired to a side list and freed when the deque is dropped, and the
    //! owner can only overwrite a slot after `bottom - top >= capacity`,
    //! which triggers growth into a fresh buffer instead.

    use std::cell::Cell;
    use std::marker::PhantomData;
    use std::mem::{self, MaybeUninit};
    use std::ptr;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    const MIN_CAPACITY: usize = 32;

    struct Buffer<T> {
        ptr: *mut MaybeUninit<T>,
        cap: usize,
    }

    impl<T> Buffer<T> {
        /// Allocates a buffer for `cap` (a power of two) slots.
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let mut slots: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
            // SAFETY: `MaybeUninit` slots need no initialisation.
            unsafe { slots.set_len(cap) };
            let ptr = Box::into_raw(slots.into_boxed_slice()) as *mut MaybeUninit<T>;
            Box::into_raw(Box::new(Buffer { ptr, cap }))
        }

        /// Frees the buffer *without* dropping any contained values.
        ///
        /// # Safety
        /// `buf` must come from [`Buffer::alloc`] and not be freed twice.
        unsafe fn dealloc(buf: *mut Buffer<T>) {
            let b = Box::from_raw(buf);
            drop(Box::from_raw(ptr::slice_from_raw_parts_mut(b.ptr, b.cap)));
        }

        /// Writes `value` into the slot for logical index `index`.
        ///
        /// # Safety
        /// Owner-only, and the slot must be logically empty.
        unsafe fn write(&self, index: isize, value: T) {
            let slot = self.ptr.add((index as usize) & (self.cap - 1));
            ptr::write(slot, MaybeUninit::new(value));
        }

        /// Reads the slot for logical index `index` (a bitwise copy).
        ///
        /// # Safety
        /// The caller must ensure at most one reader logically *takes* the
        /// value (losers of the `top` race must `mem::forget` their copy).
        unsafe fn read(&self, index: isize) -> T {
            let slot = self.ptr.add((index as usize) & (self.cap - 1));
            ptr::read(slot).assume_init()
        }
    }

    struct Inner<T> {
        top: AtomicIsize,
        bottom: AtomicIsize,
        buffer: AtomicPtr<Buffer<T>>,
        /// Buffers replaced by growth, freed when the deque is dropped so
        /// that in-flight steals reading a stale buffer stay memory-safe.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    // SAFETY: the Chase–Lev protocol serialises all accesses to each slot.
    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            // Exclusive access: drop the remaining values, free all buffers.
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buffer.get_mut();
            unsafe {
                let mut i = t;
                while i < b {
                    drop((*buf).read(i));
                    i += 1;
                }
                Buffer::dealloc(buf);
                for old in self.retired.get_mut().unwrap().drain(..) {
                    Buffer::dealloc(old);
                }
            }
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Lifo,
        Fifo,
    }

    /// The owner handle of a deque (`Send` but not `Sync`: pushes and pops
    /// must come from one thread at a time).
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        flavor: Flavor,
        /// Opts out of `Sync` (a `Cell` is `Send` but not `Sync`).
        _not_sync: PhantomData<Cell<()>>,
    }

    /// A stealer handle (cloneable, shareable across threads).
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The deque was empty.
        Empty,
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Worker<T> {
        fn new(flavor: Flavor) -> Self {
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(Buffer::alloc(MIN_CAPACITY)),
                    retired: Mutex::new(Vec::new()),
                }),
                flavor,
                _not_sync: PhantomData,
            }
        }

        /// Creates a LIFO deque (owner pops its most recent push).
        pub fn new_lifo() -> Self {
            Worker::new(Flavor::Lifo)
        }

        /// Creates a FIFO deque (owner pops its oldest push).
        pub fn new_fifo() -> Self {
            Worker::new(Flavor::Fifo)
        }

        /// Pushes a task onto the bottom of the deque.
        pub fn push(&self, task: T) {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed);
            let t = inner.top.load(Ordering::Acquire);
            let mut buf = inner.buffer.load(Ordering::Relaxed);
            if b.wrapping_sub(t) >= unsafe { (*buf).cap } as isize {
                buf = self.grow(t, b, buf);
            }
            // SAFETY: slot `b` is logically empty and we are the owner.
            unsafe { (*buf).write(b, task) };
            // Publish the write before making the slot visible to thieves.
            inner.bottom.store(b.wrapping_add(1), Ordering::Release);
        }

        /// Replaces the buffer with one of twice the capacity (owner-only).
        fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
            let inner = &*self.inner;
            let new = unsafe {
                let new = Buffer::alloc(((*old).cap * 2).max(MIN_CAPACITY));
                let mut i = t;
                while i < b {
                    // Bitwise copy: values stay logically owned by the deque;
                    // the old buffer is only deallocated, never dropped
                    // element-wise.
                    (*new).write(i, (*old).read(i));
                    i = i.wrapping_add(1);
                }
                new
            };
            inner.buffer.store(new, Ordering::Release);
            inner.retired.lock().unwrap().push(old);
            new
        }

        /// Pops a task (from the end determined by the flavor).
        pub fn pop(&self) -> Option<T> {
            match self.flavor {
                Flavor::Lifo => self.pop_bottom(),
                Flavor::Fifo => loop {
                    // FIFO owners take from the top, racing like a thief.
                    match steal_top(&self.inner) {
                        Steal::Success(task) => return Some(task),
                        Steal::Empty => return None,
                        Steal::Retry => continue,
                    }
                },
            }
        }

        fn pop_bottom(&self) -> Option<T> {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            let buf = inner.buffer.load(Ordering::Relaxed);
            inner.bottom.store(b, Ordering::Relaxed);
            // Order the `bottom` store before reading `top` (Lê et al.).
            fence(Ordering::SeqCst);
            let t = inner.top.load(Ordering::Relaxed);
            if t <= b {
                if t == b {
                    // Single element left: race thieves for it on `top`.
                    let won = inner
                        .top
                        .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok();
                    inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                    // SAFETY: we won the CAS, so no thief reads this slot.
                    won.then(|| unsafe { (*buf).read(b) })
                } else {
                    // SAFETY: more than one element: slot `b` is owner-only.
                    Some(unsafe { (*buf).read(b) })
                }
            } else {
                // Deque was empty: restore `bottom`.
                inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                None
            }
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            let t = self.inner.top.load(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::SeqCst);
            b.wrapping_sub(t) <= 0
        }

        /// Creates a stealer for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// One steal attempt from the top of the deque.
    fn steal_top<T>(inner: &Inner<T>) -> Steal<T> {
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if b.wrapping_sub(t) <= 0 {
            return Steal::Empty;
        }
        let buf = inner.buffer.load(Ordering::Acquire);
        // SAFETY: a bitwise copy; it only becomes *the* value if the CAS
        // below wins, otherwise it is forgotten. The slot cannot have been
        // overwritten: the owner would have grown into a new buffer first.
        let task = unsafe { (*buf).read(t) };
        if inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(task)
        } else {
            mem::forget(task);
            Steal::Retry
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task in the deque.
        pub fn steal(&self) -> Steal<T> {
            steal_top(&self.inner)
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            let t = self.inner.top.load(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::SeqCst);
            b.wrapping_sub(t) <= 0
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::deque::{Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn channel_disconnects_when_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn channel_receivers_are_cloneable() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        let got = rx1.try_recv().or_else(|_| rx2.try_recv());
        assert_eq!(got, Ok(7));
    }

    #[test]
    fn channel_concurrent_producers() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn deque_lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: most recent
        assert_eq!(s.steal(), Steal::Success(1)); // stealer: oldest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn deque_fifo_owner_pops_oldest() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn deque_grows_past_initial_capacity() {
        let w = Worker::new_lifo();
        for i in 0..10_000 {
            w.push(i);
        }
        let mut popped = 0;
        while w.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 10_000);
        assert!(w.is_empty());
    }

    #[test]
    fn deque_drops_remaining_items() {
        struct Token(std::sync::Arc<AtomicUsize>);
        impl Drop for Token {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = std::sync::Arc::new(AtomicUsize::new(0));
        let w = Worker::new_lifo();
        for _ in 0..100 {
            w.push(Token(std::sync::Arc::clone(&drops)));
        }
        drop(w.pop());
        drop(w);
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn deque_concurrent_steals_take_each_item_once() {
        // One producer/owner, three thieves; every pushed value must be
        // taken exactly once across owner pops and steals.
        const N: u64 = 100_000;
        let w = Worker::new_lifo();
        let sum = AtomicUsize::new(0);
        let taken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let sum = &sum;
                let taken = &taken;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if taken.load(Ordering::SeqCst) >= N as usize {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let sum = &sum;
            let taken = &taken;
            // The owner interleaves pushes with occasional pops.
            for i in 0..N {
                w.push(i);
                if i % 7 == 0 {
                    if let Some(v) = w.pop() {
                        sum.fetch_add(v as usize, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = w.pop() {
                sum.fetch_add(v as usize, Ordering::Relaxed);
                taken.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(taken.load(Ordering::SeqCst), N as usize);
        assert_eq!(sum.load(Ordering::SeqCst) as u64, N * (N - 1) / 2);
    }
}
