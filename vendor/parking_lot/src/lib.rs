//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std locks behind `parking_lot`'s API: `lock`/`read`/`write`
//! return guards directly (no poisoning `Result`s). A panic while a lock is
//! held does not poison it for later users — the inner value of a poisoned
//! std lock is recovered — which matches `parking_lot` semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
