//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!`/`criterion_main!`). Measurement is deliberately simple:
//! after a warm-up, each benchmark runs `sample_size` samples and reports the
//! minimum, median and mean wall-clock time per iteration. There is no
//! statistical regression analysis or HTML report — this harness exists so
//! `cargo bench` produces honest relative numbers offline.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a value or the computation behind it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `f`, collecting one duration sample per batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Aim for ~1ms per sample so cheap workloads are not all timer noise.
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<40} min {:>12?}   median {:>12?}   mean {:>12?}",
            min, median, mean
        );
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness sizes samples itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets group throughput metadata (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Throughput metadata (accepted for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark (its own group of one).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function("", f);
        self
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No-op (the real crate prints a summary here).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a bare
            // `--list`/`--test` invocation must not run the benchmarks.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            if args.iter().any(|a| a == "--test") {
                // Test mode: one pass over each group with minimal sampling
                // is still the honest behaviour; fall through.
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        let mut counter = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("LRBU").to_string(), "LRBU");
    }
}
