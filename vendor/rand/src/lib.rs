//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: a seedable `StdRng` plus the
//! `Rng::{gen, gen_range, gen_bool}` methods. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for synthetic-graph
//! generation and benchmarks, deterministic across platforms, but **not**
//! cryptographically secure (call sites all seed explicitly, so reproducible
//! sequences are the point).

pub mod rngs {
    /// A seedable pseudo-random generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed, as rand_core does.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The `Rng` trait: uniform sampling helpers over a raw bit generator.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from the whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws a uniform sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable with `gen_range` (subset of `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift mapping (Lemire); the bias is < 2^-64 for
                // every span this workspace uses.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + f64::sample(rng) * (high - low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
