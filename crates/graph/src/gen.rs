//! Synthetic graph generators.
//!
//! The paper evaluates on seven real-world graphs (Table 3). Those graphs
//! are not redistributable inside this repository and are far larger than a
//! laptop-scale reproduction can hold, so we generate synthetic graphs whose
//! *shape* matches the originals: power-law social/web graphs
//! (Barabási–Albert and RMAT with skew) and a near-constant-degree road
//! network (grid with perturbation). All generators are deterministic given
//! a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};

/// Erdős–Rényi `G(n, m)` random graph: `m` distinct uniform random edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);
    let mut added = 0usize;
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    while added < target {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(u, v);
            added += 1;
        }
    }
    builder.build()
}

/// Barabási–Albert preferential-attachment graph.
///
/// Starts from a small clique of `m + 1` vertices; each new vertex attaches
/// to `m` existing vertices chosen proportionally to their degree. Produces
/// a power-law degree distribution similar to social networks (LJ, OR, FS).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be at least 1");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);
    // `targets` is a repeated-node list: picking a uniform element samples
    // proportionally to degree.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            builder.add_edge(u, v);
            targets.push(u);
            targets.push(v);
        }
    }
    for v in (m + 1)..n {
        let v = v as VertexId;
        let mut chosen = std::collections::HashSet::with_capacity(m * 2);
        while chosen.len() < m {
            let idx = rng.gen_range(0..targets.len());
            chosen.insert(targets[idx]);
        }
        // The hash set's iteration order is randomised per process; sort so
        // that a fixed seed reproduces the same graph across runs.
        let mut chosen: Vec<VertexId> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for &u in &chosen {
            builder.add_edge(u, v);
            targets.push(u);
            targets.push(v);
        }
    }
    builder.build()
}

/// Parameters of the RMAT recursive-matrix generator.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// Noise added to the quadrant probabilities at each level.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // The classic Graph500 parameters produce a heavily skewed degree
        // distribution, similar to web graphs (UK, CW).
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
        }
    }
}

/// RMAT (recursive matrix) graph over `2^scale` vertices with `m` edges.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);
    for _ in 0..m {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        let (mut a, mut b, mut c) = (params.a, params.b, params.c);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.gen();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
            // Perturb to avoid exact self-similarity.
            let perturb = |x: f64, rng: &mut StdRng| {
                (x * (1.0 - params.noise + 2.0 * params.noise * rng.gen::<f64>())).clamp(0.01, 0.97)
            };
            a = perturb(a, &mut rng);
            b = perturb(b, &mut rng);
            c = perturb(c, &mut rng);
        }
        let u = lo_u as VertexId;
        let v = lo_v as VertexId;
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// A 2-D grid graph with optional random "shortcut" edges.
///
/// Degree is nearly constant (≤ 4 plus shortcuts) which mimics road networks
/// such as the paper's EU dataset (average degree 3.9, max degree 20).
pub fn grid(rows: usize, cols: usize, shortcuts: usize, seed: u64) -> Graph {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    for _ in 0..shortcuts {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// A complete graph on `n` vertices; handy in tests since every query has a
/// predictable number of matches.
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder.add_edge(u as VertexId, v as VertexId);
        }
    }
    builder.build()
}

/// A cycle graph on `n` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut builder = GraphBuilder::with_vertices(n);
    for u in 0..n {
        builder.add_edge(u as VertexId, ((u + 1) % n) as VertexId);
    }
    builder.build()
}

/// A "caveman"-style graph: `communities` cliques of size `size` connected in
/// a ring. Gives a graph with many cliques, useful to exercise dense queries.
pub fn caveman(communities: usize, size: usize, seed: u64) -> Graph {
    assert!(communities >= 1 && size >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = communities * size;
    let mut builder = GraphBuilder::with_vertices(n);
    for c in 0..communities {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                builder.add_edge((base + i) as VertexId, (base + j) as VertexId);
            }
        }
        // Connect to the next community via a random pair.
        let next = ((c + 1) % communities) * size;
        let u = base + rng.gen_range(0..size);
        let v = next + rng.gen_range(0..size);
        if u != v {
            builder.add_edge(u as VertexId, v as VertexId);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let g = erdos_renyi(100, 300, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(50, 100, 42);
        let b = erdos_renyi(50, 100, 42);
        for v in a.vertices() {
            assert_eq!(a.neighbours(v), b.neighbours(v));
        }
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(500, 4, 1);
        assert_eq!(g.num_vertices(), 500);
        // Each of the n - m - 1 later vertices adds exactly m edges on top of
        // the seed clique.
        let expected = (4 * 5) / 2 + (500 - 5) * 4;
        assert_eq!(g.num_edges() as usize, expected);
        // Power-law-ish: the max degree should be well above the average.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8000, RmatParams::default(), 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 1000);
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn grid_degrees_bounded() {
        let g = grid(20, 20, 0, 0);
        assert_eq!(g.num_vertices(), 400);
        assert!(g.max_degree() <= 4);
        assert_eq!(g.num_edges(), (19 * 20 + 19 * 20) as u64);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(10);
        assert_eq!(g.num_edges(), 45);
        assert_eq!(g.count_triangles(), 120);
    }

    #[test]
    fn cycle_graph() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.count_triangles(), 0);
    }

    #[test]
    fn caveman_has_many_triangles() {
        let g = caveman(5, 6, 9);
        assert_eq!(g.num_vertices(), 30);
        // Each 6-clique contributes C(6,3) = 20 triangles.
        assert!(g.count_triangles() >= 100);
    }
}
