//! The CSR graph representation.

use crate::builder::GraphBuilder;
use crate::stats::GraphStats;

/// Identifier of a data-graph vertex.
///
/// The paper assigns each vertex a unique integer id in `0..|V|` (§2); we use
/// `u32` which is sufficient for the laptop-scale graphs this reproduction
/// targets while halving the memory footprint of adjacency lists compared to
/// `u64`.
pub type VertexId = u32;

/// An immutable, undirected graph in compressed sparse row (CSR) form.
///
/// Adjacency lists are sorted in ascending order which allows:
///
/// * binary-search edge existence checks ([`Graph::has_edge`]),
/// * linear-merge multi-way intersections (the kernel of `PULL-EXTEND`),
/// * cheap symmetry-breaking filters (`u < u'` comparisons on ids).
///
/// The graph is undirected: every edge `(u, v)` appears in both `adj(u)` and
/// `adj(v)`. [`Graph::num_edges`] reports the number of undirected edges.
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR offsets; `offsets[v]..offsets[v + 1]` indexes into `neighbours`.
    offsets: Vec<u64>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbours: Vec<VertexId>,
    /// Number of undirected edges.
    num_edges: u64,
}

impl Default for Graph {
    /// The empty graph (no vertices, no edges).
    fn default() -> Self {
        Graph {
            offsets: vec![0],
            neighbours: Vec::new(),
            num_edges: 0,
        }
    }
}

impl Graph {
    /// Creates a graph directly from CSR arrays.
    ///
    /// `offsets` must have length `n + 1`, be non-decreasing, start at 0 and
    /// end at `neighbours.len()`. Each adjacency slice must be sorted. These
    /// invariants are checked with debug assertions only; use
    /// [`GraphBuilder`] for checked construction.
    pub fn from_csr(offsets: Vec<u64>, neighbours: Vec<VertexId>, num_edges: u64) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.first().unwrap(), 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbours.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Graph {
            offsets,
            neighbours,
            num_edges,
        }
    }

    /// Builds a graph from an iterator of undirected edges.
    ///
    /// Duplicate edges and self loops are removed. Vertex ids are taken as
    /// given (the vertex count is `max id + 1`).
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbours(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbours[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbours(a).binary_search(&b).is_ok()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterates over all undirected edges, each reported once with `u < v`
    /// (except that isolated direction choices follow adjacency ordering).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbours(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree `D_G` over all vertices.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `d_G`.
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Computes the full degree statistics of this graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(self)
    }

    /// An estimate of the in-memory size of the CSR representation in bytes.
    ///
    /// Used to model the "pull at most the whole graph data" communication
    /// bound (`k · |E_G|`, Remark 3.1) and to size caches as a fraction of
    /// the graph (the paper's "cache capacity: 30% of the data graph").
    pub fn csr_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbours.len() * std::mem::size_of::<VertexId>()) as u64
    }

    /// Counts triangles (closed wedges) in the graph.
    ///
    /// This is a reference/diagnostic routine used by tests to cross-check
    /// the enumeration engine on the simplest non-trivial query.
    pub fn count_triangles(&self) -> u64 {
        let mut count = 0u64;
        for u in self.vertices() {
            let nu = self.neighbours(u);
            for &v in nu.iter().filter(|&&v| v > u) {
                let nv = self.neighbours(v);
                count += intersect_count_gt(nu, nv, v);
            }
        }
        count
    }
}

/// Counts common elements of two sorted slices strictly greater than `min`.
///
/// Lower bounds are handled by pre-slicing with `partition_point`, so the
/// counting kernel itself stays branch-light (see [`crate::kernels`]).
fn intersect_count_gt(a: &[VertexId], b: &[VertexId], min: VertexId) -> u64 {
    let i = a.partition_point(|&x| x <= min);
    let j = b.partition_point(|&x| x <= min);
    crate::kernels::intersect_count_merge(&a[i..], &b[j..])
}

/// Intersects two sorted adjacency slices into a new vector.
pub fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersects many sorted slices, smallest first, into a new vector.
///
/// This is the multiway intersection of Equation 2 in the paper, used by the
/// `PULL-EXTEND` operator to compute the candidate set of the next query
/// vertex. The accumulator is seeded from the smallest list and compacted
/// in place against each remaining list by the adaptive kernel — one
/// allocation total, instead of one fresh vector per list.
pub fn intersect_many(mut lists: Vec<&[VertexId]>) -> Vec<VertexId> {
    if lists.is_empty() {
        return Vec::new();
    }
    lists.sort_by_key(|l| l.len());
    let mut acc: Vec<VertexId> = lists[0].to_vec();
    for l in &lists[1..] {
        if acc.is_empty() {
            break;
        }
        crate::kernels::intersect_in_place(&mut acc, l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Graph {
        Graph::from_edges((0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn empty_graph() {
        let g = Graph::default();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.count_triangles(), 1);
        assert_eq!(g.neighbours(1), &[0, 2]);
    }

    #[test]
    fn duplicate_and_self_loops_removed() {
        let g = Graph::from_edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = path_graph(10);
        assert_eq!(g.count_triangles(), 0);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn intersect_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(
            intersect_many(vec![&[1, 2, 3, 4], &[2, 3, 4], &[0, 2, 4, 6]]),
            vec![2, 4]
        );
        assert!(intersect_many(vec![]).is_empty());
        assert!(intersect_sorted(&[], &[1, 2]).is_empty());
    }

    #[test]
    fn k4_triangle_count() {
        let g = Graph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(g.count_triangles(), 4);
    }

    #[test]
    fn csr_bytes_positive() {
        let g = path_graph(100);
        assert!(g.csr_bytes() > 0);
    }

    #[test]
    fn avg_degree() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert!((g.avg_degree() - 2.0).abs() < 1e-9);
    }
}
