//! Named synthetic datasets mirroring Table 3 of the paper.
//!
//! Each [`DatasetKind`] corresponds to one of the paper's graphs and is
//! generated with a matching *shape* (degree distribution) at a laptop
//! scale. The `scale` knob multiplies the default vertex count so that the
//! benchmark harness can be grown towards the paper's sizes when more time
//! and memory are available.
//!
//! # Real graphs
//!
//! The paper's actual datasets are distributed as plain edge lists (SNAP,
//! WebGraph, DIMACS). [`Dataset::load`] checks the `HUGE_DATASET_DIR`
//! environment variable for a downloaded copy (`<dir>/<name>.txt`, e.g.
//! `lj.txt`) and parses it through [`crate::io`] before falling back to the
//! synthetic generator, so offline environments keep working while machines
//! with the real graphs benchmark against them.

use std::path::{Path, PathBuf};

use crate::gen::{self, RmatParams};
use crate::graph::Graph;

/// Environment variable naming a directory of real edge-list datasets.
pub const DATASET_DIR_ENV: &str = "HUGE_DATASET_DIR";

/// The seven data graphs of the paper (Table 3), reproduced synthetically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Google web graph (`GO`): medium power-law web graph.
    Go,
    /// LiveJournal (`LJ`): the paper's default comparison graph (Table 1).
    Lj,
    /// Orkut (`OR`): denser social network.
    Or,
    /// UK02 web graph (`UK`): the paper's default dataset, skewed degrees.
    Uk,
    /// EU road network (`EU`): near-constant low degree.
    Eu,
    /// Friendster (`FS`): the largest social graph, used for scalability.
    Fs,
    /// ClueWeb12 (`CW`): the web-scale graph of Exp-3.
    Cw,
}

impl DatasetKind {
    /// All datasets in the order the paper lists them.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::Go,
        DatasetKind::Lj,
        DatasetKind::Or,
        DatasetKind::Uk,
        DatasetKind::Eu,
        DatasetKind::Fs,
        DatasetKind::Cw,
    ];

    /// The short name used in reports (with an `-S` suffix marking the
    /// synthetic stand-in).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Go => "GO-S",
            DatasetKind::Lj => "LJ-S",
            DatasetKind::Or => "OR-S",
            DatasetKind::Uk => "UK-S",
            DatasetKind::Eu => "EU-S",
            DatasetKind::Fs => "FS-S",
            DatasetKind::Cw => "CW-S",
        }
    }

    /// The lower-case file stem [`Dataset::load`] looks for under
    /// `HUGE_DATASET_DIR` (e.g. `lj` → `$HUGE_DATASET_DIR/lj.txt`).
    pub fn file_stem(&self) -> &'static str {
        match self {
            DatasetKind::Go => "go",
            DatasetKind::Lj => "lj",
            DatasetKind::Or => "or",
            DatasetKind::Uk => "uk",
            DatasetKind::Eu => "eu",
            DatasetKind::Fs => "fs",
            DatasetKind::Cw => "cw",
        }
    }

    /// Loads this dataset at the given scale: a real edge list from
    /// `HUGE_DATASET_DIR` when available, else the synthetic stand-in (see
    /// [`Dataset::load`]).
    pub fn load(self, scale: f64) -> Graph {
        Dataset::new(self).scaled(scale).load()
    }

    /// Parses a dataset name (either the paper's name or the `-S` variant).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().trim_end_matches("-S") {
            "GO" => Some(DatasetKind::Go),
            "LJ" => Some(DatasetKind::Lj),
            "OR" => Some(DatasetKind::Or),
            "UK" => Some(DatasetKind::Uk),
            "EU" => Some(DatasetKind::Eu),
            "FS" => Some(DatasetKind::Fs),
            "CW" => Some(DatasetKind::Cw),
            _ => None,
        }
    }
}

/// A dataset descriptor: which graph to generate and how large.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// Which of the paper's graphs this stands in for.
    pub kind: DatasetKind,
    /// Multiplier applied to the default vertex count (1.0 = default).
    pub scale: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Dataset {
    /// A dataset at default (laptop) scale.
    pub fn new(kind: DatasetKind) -> Self {
        Dataset {
            kind,
            scale: 1.0,
            seed: 0xD1CE,
        }
    }

    /// Overrides the scale multiplier.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Loads the dataset: if `HUGE_DATASET_DIR` is set and contains an edge
    /// list for this dataset ([`Dataset::try_load_real`]), the *real* graph
    /// is parsed (the `scale` knob does not apply to real data); otherwise
    /// the synthetic stand-in is generated.
    pub fn load(&self) -> Graph {
        self.try_load_real().unwrap_or_else(|| self.generate())
    }

    /// Attempts to load the real edge list for this dataset from
    /// `HUGE_DATASET_DIR`, trying `<stem>.txt`, `<stem>.edges` and
    /// `<stem>.el`. Returns `None` (and warns on stderr for parse failures)
    /// when no usable file is found, so callers can fall back to the
    /// generator.
    pub fn try_load_real(&self) -> Option<Graph> {
        let dir = PathBuf::from(std::env::var_os(DATASET_DIR_ENV)?);
        self.try_load_real_from(&dir)
    }

    /// [`Dataset::try_load_real`] with an explicit directory instead of the
    /// environment variable.
    pub fn try_load_real_from(&self, dir: &Path) -> Option<Graph> {
        let stem = self.kind.file_stem();
        for ext in ["txt", "edges", "el"] {
            let path = dir.join(format!("{stem}.{ext}"));
            if !path.is_file() {
                continue;
            }
            match crate::io::load_edge_list(&path) {
                Ok(graph) => return Some(graph),
                Err(err) => {
                    // Keep trying the other extensions: a corrupt .txt next
                    // to a valid .edges should still load the real graph.
                    eprintln!(
                        "warning: failed to load {} for dataset {}: {err}; \
                         trying other extensions before falling back",
                        path.display(),
                        self.kind.name()
                    );
                }
            }
        }
        None
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let s = self.scale.max(0.01);
        let n = |base: usize| ((base as f64 * s) as usize).max(64);
        match self.kind {
            // Web graph, moderate skew.
            DatasetKind::Go => gen::barabasi_albert(n(30_000), 5, self.seed ^ 0x60),
            // Social network; the paper's Table 1 graph.
            DatasetKind::Lj => gen::barabasi_albert(n(60_000), 9, self.seed ^ 0x17),
            // Denser social network.
            DatasetKind::Or => gen::barabasi_albert(n(40_000), 19, self.seed ^ 0x0F),
            // Skewed web graph (default dataset of the paper's experiments).
            DatasetKind::Uk => {
                let nodes = n(80_000);
                let scale = usize::BITS - nodes.leading_zeros();
                gen::rmat(scale, nodes * 8, RmatParams::default(), self.seed ^ 0x4B)
            }
            // Road network: grid with a few shortcuts.
            DatasetKind::Eu => {
                let side = ((n(100_000) as f64).sqrt() as usize).max(8);
                gen::grid(side, side, side, self.seed ^ 0xE0)
            }
            // Large social network for scalability runs.
            DatasetKind::Fs => gen::barabasi_albert(n(120_000), 14, self.seed ^ 0xF5),
            // Web-scale stand-in: the largest, heavily skewed.
            DatasetKind::Cw => {
                let nodes = n(200_000);
                let scale = usize::BITS - nodes.leading_zeros();
                gen::rmat(
                    scale,
                    nodes * 10,
                    RmatParams {
                        a: 0.62,
                        b: 0.18,
                        c: 0.15,
                        noise: 0.05,
                    },
                    self.seed ^ 0xC1,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("lj"), Some(DatasetKind::Lj));
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn tiny_scale_generates_quickly() {
        for kind in DatasetKind::ALL {
            let g = Dataset::new(kind).scaled(0.02).generate();
            assert!(g.num_vertices() >= 64, "{}", kind.name());
            assert!(g.num_edges() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn road_network_is_sparse_and_flat() {
        let eu = Dataset::new(DatasetKind::Eu).scaled(0.05).generate();
        assert!(eu.max_degree() <= 16);
        assert!(eu.avg_degree() < 6.0);
    }

    #[test]
    fn social_graph_is_skewed() {
        let lj = Dataset::new(DatasetKind::Lj).scaled(0.05).generate();
        assert!(lj.max_degree() as f64 > 4.0 * lj.avg_degree());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Dataset::new(DatasetKind::Go).scaled(0.02).generate();
        let b = Dataset::new(DatasetKind::Go).scaled(0.02).generate();
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn load_prefers_real_edge_lists_and_falls_back() {
        // The directory-parameterised path is tested without touching the
        // process environment (mutating env vars races other test threads);
        // `try_load_real` is the same body behind an env lookup. When the
        // env var is genuinely unset, `load` is the synthetic generator.
        if std::env::var_os(DATASET_DIR_ENV).is_none() {
            let synthetic = Dataset::new(DatasetKind::Eu).scaled(0.02).load();
            assert!(synthetic.num_vertices() >= 64);
            assert!(Dataset::new(DatasetKind::Eu).try_load_real().is_none());
        }

        // Pointed at a real edge list, the loader parses it.
        let dir = std::env::temp_dir().join(format!("huge-datasets-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("eu.txt"), "# tiny\n0 1\n1 2\n2 0\n").unwrap();
        let real = Dataset::new(DatasetKind::Eu)
            .try_load_real_from(&dir)
            .expect("eu.txt parses");
        assert_eq!(real.num_vertices(), 3);
        assert_eq!(real.num_edges(), 3);
        // Datasets without a file in the directory fall back.
        assert!(Dataset::new(DatasetKind::Go)
            .try_load_real_from(&dir)
            .is_none());
        // A malformed file warns and falls back instead of panicking.
        std::fs::write(dir.join("go.txt"), "not an edge list\n").unwrap();
        assert!(Dataset::new(DatasetKind::Go)
            .try_load_real_from(&dir)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
