//! Degree statistics used by the optimiser's cost model and the benchmark
//! reports (mirroring Table 3 of the paper).

use crate::graph::Graph;

/// Summary statistics of a data graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of undirected edges `|E|`.
    pub num_edges: u64,
    /// Maximum degree `D_G`.
    pub max_degree: usize,
    /// Average degree `d_G`.
    pub avg_degree: f64,
    /// Number of triangles (wedge closures), used by the cost estimator for
    /// clique-like sub-queries.
    pub triangles: u64,
    /// In-memory CSR size in bytes.
    pub csr_bytes: u64,
}

impl GraphStats {
    /// Computes statistics for `graph`. Triangle counting is linear in the
    /// number of wedges which is fine at reproduction scale.
    pub fn of(graph: &Graph) -> Self {
        GraphStats {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            max_degree: graph.max_degree(),
            avg_degree: graph.avg_degree(),
            triangles: graph.count_triangles(),
            csr_bytes: graph.csr_bytes(),
        }
    }

    /// Computes statistics without the (comparatively expensive) triangle
    /// count; `triangles` is estimated from the degree distribution instead.
    pub fn of_cheap(graph: &Graph) -> Self {
        // Expected triangles in a configuration-model graph:
        //   (sum d(d-1)/2)^... we use a simpler proxy: wedges * closure prob.
        let wedges: f64 = graph
            .vertices()
            .map(|v| {
                let d = graph.degree(v) as f64;
                d * (d - 1.0) / 2.0
            })
            .sum();
        let p = if graph.num_vertices() > 1 {
            graph.avg_degree() / (graph.num_vertices() as f64 - 1.0)
        } else {
            0.0
        };
        GraphStats {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            max_degree: graph.max_degree(),
            avg_degree: graph.avg_degree(),
            triangles: (wedges * p) as u64,
            csr_bytes: graph.csr_bytes(),
        }
    }

    /// Edge density `2|E| / (|V| (|V|-1))`.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / (n * (n - 1.0))
        }
    }
}

/// Computes a degeneracy ordering of the graph (smallest-degree-last).
///
/// The ordering is useful as a matching-order heuristic: matching
/// high-coreness vertices first shrinks candidate sets early. Returns a
/// permutation of vertex ids and the graph degeneracy.
pub fn degeneracy_ordering(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as u32)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // Bucket queue keyed by current degree.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the non-empty bucket with the smallest degree.
        while cur < buckets.len() && buckets[cur].is_empty() {
            cur += 1;
        }
        // The bucket may contain stale entries; skip them.
        let v = loop {
            if cur >= buckets.len() {
                // All remaining entries were stale; rescan from zero.
                cur = 0;
                while buckets[cur].is_empty() {
                    cur += 1;
                }
            }
            match buckets[cur].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cur => break v,
                Some(_) => continue,
                None => {
                    cur += 1;
                    continue;
                }
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        order.push(v);
        for &u in graph.neighbours(v) {
            if !removed[u as usize] {
                let d = degree[u as usize];
                if d > 0 {
                    degree[u as usize] = d - 1;
                    buckets[d - 1].push(u);
                    if d - 1 < cur {
                        cur = d - 1;
                    }
                }
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_complete_graph() {
        let g = gen::complete(6);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 15);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.triangles, 20);
        assert!((s.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cheap_stats_reasonable() {
        let g = gen::erdos_renyi(200, 1000, 5);
        let exact = GraphStats::of(&g);
        let cheap = GraphStats::of_cheap(&g);
        assert_eq!(exact.num_edges, cheap.num_edges);
        // The cheap triangle estimate should be the right order of magnitude.
        assert!(cheap.triangles > 0);
        assert!(cheap.triangles < exact.triangles * 20 + 100);
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let g = gen::complete(8);
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(order.len(), 8);
        assert_eq!(d, 7);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = crate::Graph::from_edges([(0, 1), (1, 2), (1, 3), (3, 4)]);
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(order.len(), 5);
        assert_eq!(d, 1);
    }

    #[test]
    fn degeneracy_of_empty_graph() {
        let g = crate::Graph::default();
        let (order, d) = degeneracy_ordering(&g);
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }
}
