//! Checked graph construction.

use crate::graph::{Graph, VertexId};

/// Incremental builder for [`Graph`].
///
/// The builder accumulates undirected edges, removes duplicates and self
/// loops, and produces a CSR [`Graph`] with sorted adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    max_vertex: Option<VertexId>,
    /// When set, the vertex count is fixed even if some vertices are isolated.
    declared_vertices: Option<usize>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will produce exactly `n` vertices (isolated
    /// vertices included), regardless of the maximum id seen in edges.
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            declared_vertices: Some(n),
            ..Self::default()
        }
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self loops are silently ignored (the vertex
    /// is still registered so the vertex count reflects it).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        let m = self.max_vertex.unwrap_or(0).max(u).max(v);
        self.max_vertex = Some(m);
        if u == v {
            return self;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self
    }

    /// Adds every edge from the iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Finalizes the builder into a CSR graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = match self.declared_vertices {
            Some(n) => n,
            None => self.max_vertex.map(|m| m as usize + 1).unwrap_or(0),
        };
        let num_edges = self.edges.len() as u64;

        // Degree counting pass (each undirected edge contributes to both ends).
        let mut degrees = vec![0u64; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut neighbours = vec![0 as VertexId; acc as usize];
        for &(u, v) in &self.edges {
            neighbours[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbours[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list (the per-vertex slices).
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbours[lo..hi].sort_unstable();
        }
        Graph::from_csr(offsets, neighbours, num_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_sorts() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 1)
            .add_edge(1, 3)
            .add_edge(0, 3)
            .add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbours(3), &[0, 1, 2]);
    }

    #[test]
    fn declared_vertices_keeps_isolated() {
        let mut b = GraphBuilder::with_vertices(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 5);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(b.edge_count(), 3);
        let g = b.build();
        assert_eq!(g.count_triangles(), 1);
    }
}
