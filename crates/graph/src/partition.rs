//! Hash partitioning of the data graph over `k` machines.
//!
//! Following §2 of the paper, the data graph is randomly partitioned: each
//! vertex is stored, together with its full adjacency list, on exactly one
//! machine. A vertex is *local* to the machine holding it and *remote*
//! elsewhere; remote adjacency lists must be obtained either by pushing
//! intermediate results to the owner or by pulling the list via RPC.

use std::sync::Arc;

use crate::graph::{Graph, VertexId};
use crate::kernels::{HubBitmap, HubIndex};
use crate::{GraphError, Result};

/// Identifier of a machine in the (simulated) cluster.
pub type MachineId = usize;

/// Maps vertices to owning machines.
///
/// The default strategy is modulo hashing on the vertex id, which matches
/// the "random partitioning" of the paper (ids carry no locality).
#[derive(Clone, Debug)]
pub struct PartitionMap {
    num_machines: usize,
}

impl PartitionMap {
    /// Creates a partition map over `num_machines` machines.
    pub fn new(num_machines: usize) -> Result<Self> {
        if num_machines == 0 {
            return Err(GraphError::InvalidPartitionCount);
        }
        Ok(PartitionMap { num_machines })
    }

    /// Number of machines.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// The machine that owns vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> MachineId {
        // Multiplicative hashing spreads consecutive ids (BA generators
        // produce id-correlated degrees) across machines.
        let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % self.num_machines as u64) as MachineId
    }

    /// Returns `true` if `v` is owned by `machine`.
    #[inline]
    pub fn is_local(&self, v: VertexId, machine: MachineId) -> bool {
        self.owner(v) == machine
    }
}

/// The slice of the data graph stored on one machine: the adjacency lists of
/// its local vertices, plus a shared handle to the global graph for
/// *accounted* remote access (see `huge-comm`).
#[derive(Clone, Debug)]
pub struct GraphPartition {
    machine: MachineId,
    map: PartitionMap,
    /// Local vertices in ascending id order.
    local_vertices: Vec<VertexId>,
    /// The full graph. Local reads go through this handle directly; remote
    /// reads must go through the communication fabric which charges bytes.
    graph: Arc<Graph>,
    /// Total bytes of the local adjacency lists (for memory accounting).
    local_bytes: u64,
    /// Cached hub bitmaps for local high-degree vertices (see
    /// [`GraphPartition::build_hub_index`]). `None` until built or when the
    /// threshold disables the index.
    hubs: Option<Arc<HubIndex>>,
}

impl GraphPartition {
    /// Number of local vertices.
    pub fn num_local_vertices(&self) -> usize {
        self.local_vertices.len()
    }

    /// The machine this partition belongs to.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The partition map shared by the whole cluster.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.map
    }

    /// Local vertices in ascending order.
    pub fn local_vertices(&self) -> &[VertexId] {
        &self.local_vertices
    }

    /// Returns `true` if `v` is stored on this machine.
    #[inline]
    pub fn is_local(&self, v: VertexId) -> bool {
        self.map.is_local(v, self.machine)
    }

    /// Adjacency list of a *local* vertex.
    ///
    /// # Panics
    /// Panics (debug) if `v` is not local; the engine must pull remote
    /// vertices through the communication fabric so that traffic is
    /// accounted.
    #[inline]
    pub fn local_neighbours(&self, v: VertexId) -> &[VertexId] {
        debug_assert!(
            self.is_local(v),
            "vertex {v} is not local to machine {}",
            self.machine
        );
        self.graph.neighbours(v)
    }

    /// Adjacency list of any vertex, bypassing locality checks.
    ///
    /// Only the communication fabric (RPC server answering `GetNbrs`) and
    /// single-machine reference engines should use this.
    #[inline]
    pub fn any_neighbours(&self, v: VertexId) -> &[VertexId] {
        self.graph.neighbours(v)
    }

    /// Degree of any vertex (degree information is metadata that all
    /// machines may access without communication, as in the paper's
    /// cost-model discussion).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    /// Checks edge existence against the underlying graph. Used only by
    /// verification paths and tests.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.graph.has_edge(u, v)
    }

    /// Number of vertices in the *global* graph.
    pub fn global_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges in the *global* graph.
    pub fn global_edges(&self) -> u64 {
        self.graph.num_edges()
    }

    /// Bytes of adjacency data stored locally.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes
    }

    /// A shared handle to the global graph (used by the RPC server).
    pub fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Builds (or disables, for `threshold == 0`) the hub-bitmap index over
    /// local vertices with degree at least `threshold`.
    ///
    /// The bitmaps are chunk-sparse (only non-zero 64-bit blocks are kept)
    /// and cached per partition so the intersection kernels can dispatch to
    /// the block-skipping bitmap branch for hub adjacency lists.
    pub fn build_hub_index(&mut self, threshold: usize) {
        if threshold == 0 {
            self.hubs = None;
            return;
        }
        let graph = &self.graph;
        self.hubs = Some(HubIndex::build(
            threshold,
            self.local_vertices
                .iter()
                .map(|&v| (v, graph.neighbours(v))),
        ));
    }

    /// The cached bitmap for a local hub vertex, if the index is built and
    /// `v` met the degree threshold.
    #[inline]
    pub fn hub_bitmap(&self, v: VertexId) -> Option<&HubBitmap> {
        self.hubs.as_ref()?.get(v)
    }

    /// The hub index handle, if built.
    pub fn hub_index(&self) -> Option<&Arc<HubIndex>> {
        self.hubs.as_ref()
    }
}

/// Splits a graph into `k` partitions.
#[derive(Clone, Debug)]
pub struct Partitioner {
    map: PartitionMap,
}

impl Partitioner {
    /// Creates a partitioner for `num_machines` machines.
    pub fn new(num_machines: usize) -> Result<Self> {
        Ok(Partitioner {
            map: PartitionMap::new(num_machines)?,
        })
    }

    /// The partition map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Partitions `graph`, producing one [`GraphPartition`] per machine.
    pub fn partition(&self, graph: Graph) -> Vec<GraphPartition> {
        let graph = Arc::new(graph);
        let k = self.map.num_machines();
        let mut locals: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in graph.vertices() {
            locals[self.map.owner(v)].push(v);
        }
        locals
            .into_iter()
            .enumerate()
            .map(|(machine, local_vertices)| {
                let local_bytes: u64 = local_vertices
                    .iter()
                    .map(|&v| {
                        (graph.degree(v) * std::mem::size_of::<VertexId>()
                            + std::mem::size_of::<u64>()) as u64
                    })
                    .sum();
                GraphPartition {
                    machine,
                    map: self.map.clone(),
                    local_vertices,
                    graph: Arc::clone(&graph),
                    local_bytes,
                    hubs: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn every_vertex_owned_exactly_once() {
        let g = gen::erdos_renyi(500, 2000, 11);
        let parts = Partitioner::new(4).unwrap().partition(g);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.num_local_vertices()).sum();
        assert_eq!(total, 500);
        for p in &parts {
            for &v in p.local_vertices() {
                assert!(p.is_local(v));
                assert_eq!(p.partition_map().owner(v), p.machine());
            }
        }
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = gen::erdos_renyi(10_000, 30_000, 3);
        let parts = Partitioner::new(8).unwrap().partition(g);
        let sizes: Vec<usize> = parts.iter().map(|p| p.num_local_vertices()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 <= min as f64 * 1.3, "imbalanced: {sizes:?}");
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(Partitioner::new(0).is_err());
        assert!(PartitionMap::new(0).is_err());
    }

    #[test]
    fn single_machine_owns_everything() {
        let g = gen::cycle(10);
        let parts = Partitioner::new(1).unwrap().partition(g);
        assert_eq!(parts[0].num_local_vertices(), 10);
        assert!(parts[0].is_local(7));
        assert_eq!(parts[0].local_neighbours(0), &[1, 9]);
    }

    #[test]
    fn hub_index_covers_exactly_local_hubs() {
        let g = gen::barabasi_albert(2000, 8, 7);
        let threshold = 64;
        let mut parts = Partitioner::new(3).unwrap().partition(g);
        for p in &mut parts {
            assert!(p.hub_index().is_none());
            p.build_hub_index(threshold);
        }
        let mut indexed = 0usize;
        for p in &parts {
            for &v in p.local_vertices() {
                let is_hub = p.degree(v) >= threshold;
                assert_eq!(p.hub_bitmap(v).is_some(), is_hub, "vertex {v}");
                if let Some(bm) = p.hub_bitmap(v) {
                    indexed += 1;
                    assert_eq!(bm.cardinality() as usize, p.degree(v));
                    for &n in p.any_neighbours(v) {
                        assert!(bm.contains(n));
                    }
                }
            }
        }
        assert!(indexed > 0, "BA graph with m=8 should have hubs above 64");
        // Threshold 0 disables the index.
        parts[0].build_hub_index(0);
        assert!(parts[0].hub_index().is_none());
    }

    #[test]
    fn local_bytes_sum_close_to_csr() {
        let g = gen::barabasi_albert(1000, 5, 2);
        let csr = g.csr_bytes();
        let parts = Partitioner::new(3).unwrap().partition(g);
        let sum: u64 = parts.iter().map(|p| p.local_bytes()).sum();
        // local_bytes uses per-vertex offset accounting so it will not match
        // exactly, but it should be within a factor of 2.
        assert!(sum > csr / 2 && sum < csr * 2);
    }
}
