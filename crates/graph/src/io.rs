//! Reading and writing edge-list files.
//!
//! The paper's datasets (SNAP, WebGraph, DIMACS) are distributed as plain
//! edge lists; this module supports the common variants: whitespace-separated
//! `u v` pairs, optional `#`/`%` comment lines, and an optional binary format
//! for fast round-trips of generated graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::{Graph, VertexId};
use crate::{GraphBuilder, GraphError, Result};

/// Parses an edge-list from a reader.
///
/// Lines beginning with `#` or `%` are treated as comments. Each other line
/// must contain at least two whitespace-separated integers; extra columns
/// (e.g. weights or timestamps) are ignored.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = it.next().and_then(|t| t.parse::<VertexId>().ok());
        let v = it.next().and_then(|t| t.parse::<VertexId>().ok());
        match (u, v) {
            (Some(u), Some(v)) => {
                builder.add_edge(u, v);
            }
            _ => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    content: line,
                })
            }
        }
    }
    Ok(builder.build())
}

/// Loads a graph from a whitespace-separated edge-list file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Writes a graph as a `u v` edge list (one undirected edge per line).
pub fn write_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vertices: {}", graph.num_vertices())?;
    writeln!(w, "# edges: {}", graph.num_edges())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

const BINARY_MAGIC: &[u8; 8] = b"HUGEGRF1";

/// Writes a graph in a compact binary format (magic, vertex count, edge
/// count, CSR-free edge pairs). Intended for caching generated datasets.
pub fn write_binary<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for (u, v) in graph.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let mut file = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            content: "bad magic in binary graph file".to_string(),
        });
    }
    let mut buf8 = [0u8; 8];
    file.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    file.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8);
    let mut builder = GraphBuilder::with_vertices(n);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        file.read_exact(&mut buf4)?;
        let u = VertexId::from_le_bytes(buf4);
        file.read_exact(&mut buf4)?;
        let v = VertexId::from_le_bytes(buf4);
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# comment\n0 1\n1 2\n% another comment\n2 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn extra_columns_ignored() {
        let text = "0 1 0.5\n1 2 0.25 extra\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_error() {
        let text = "0 1\nnot-an-edge\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let dir = std::env::temp_dir().join("huge_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn binary_round_trip() {
        let g = Graph::from_edges([(0, 5), (5, 3), (3, 0), (2, 4)]);
        let dir = std::env::temp_dir().join("huge_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbours(v), g2.neighbours(v));
        }
        let _ = std::fs::remove_file(path);
    }
}
