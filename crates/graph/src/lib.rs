//! Graph substrate for the HUGE subgraph-enumeration system.
//!
//! This crate provides everything the engine needs from the *data graph*
//! side of the problem:
//!
//! * [`Graph`] — an immutable, in-memory graph stored in compressed sparse
//!   row (CSR) form with sorted adjacency lists (required for the merge-based
//!   intersections used by the worst-case-optimal join operator).
//! * [`GraphBuilder`] and [`io`] — construction from edge lists, text files
//!   and programmatic insertion.
//! * [`partition`] — hash partitioning of a graph over `k` machines, as the
//!   paper does ("we randomly partition a data graph G in a distributed
//!   context", §2).
//! * [`gen`] — synthetic graph generators (Erdős–Rényi, Barabási–Albert,
//!   RMAT, grid) used as laptop-scale stand-ins for the paper's datasets.
//! * [`datasets`] — named dataset descriptors mirroring Table 3 of the paper
//!   (`GO-S`, `LJ-S`, …) at configurable scale.
//! * [`stats`] — degree statistics (average/max degree, degeneracy ordering)
//!   used by the optimiser's cost model.

pub mod builder;
pub mod datasets;
pub mod gen;
pub mod graph;
pub mod io;
pub mod kernels;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use datasets::{Dataset, DatasetKind};
pub use graph::{Graph, VertexId};
pub use kernels::{HubBitmap, HubIndex, KernelKind, KernelTally};
pub use partition::{GraphPartition, PartitionMap, Partitioner};
pub use stats::GraphStats;

/// Errors produced while building, loading or partitioning graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id outside the declared vertex range.
    VertexOutOfRange { vertex: u64, max: u64 },
    /// A self-loop was encountered and self-loops are not allowed.
    SelfLoop { vertex: u64 },
    /// The input file could not be read or parsed.
    Io(std::io::Error),
    /// A text line could not be parsed as an edge.
    Parse { line: usize, content: String },
    /// The requested partition count is invalid (zero).
    InvalidPartitionCount,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, max } => {
                write!(f, "vertex {vertex} out of range (max {max})")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop on vertex {vertex}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            GraphError::InvalidPartitionCount => write!(f, "partition count must be non-zero"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
