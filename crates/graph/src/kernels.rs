//! Cardinality-adaptive intersection kernels for the enumeration hot loop.
//!
//! `PULL-EXTEND` (HUGE §4.2, Eq. 2) spends nearly all of its compute time
//! intersecting sorted adjacency lists. One scalar two-pointer merge is the
//! wrong shape for most real calls: adjacency cardinalities in power-law
//! graphs differ by orders of magnitude, and hub vertices are intersected
//! against thousands of partial results per run. This module provides a
//! small kernel *family* and a per-call dispatcher:
//!
//! * [`intersect_merge_into`] — branch-light sorted merge for balanced
//!   lists. The loop advances both cursors with arithmetic on comparison
//!   results instead of a three-way `match`, which keeps the hot loop free
//!   of unpredictable branches and lets the compiler vectorise the common
//!   all-misses stretches.
//! * [`intersect_gallop_into`] — galloping (exponential search) when the
//!   cardinalities differ by at least [`GALLOP_RATIO`]×: iterate the small
//!   list, bound each probe into the large list by doubling steps, finish
//!   with a binary search on the bracketed window. `O(s · log(l/s))` versus
//!   the merge's `O(s + l)`.
//! * [`intersect_bitmap_into`] — block-skipping bitmap membership for hub
//!   vertices. A [`HubBitmap`] stores only the non-zero 64-bit blocks of the
//!   hub's adjacency set (sorted block ids + one word each); the query list
//!   is walked once with a monotone block cursor, so runs of the query that
//!   fall into absent blocks cost one comparison per element and no binary
//!   search.
//!
//! Every kernel has an `intersect_count_*` twin that skips output writes
//! entirely — the count-only sinks of the runtime never materialise
//! candidates. [`select_kernel`] picks the branch per call from
//! `(|smallest|, |largest|, hub-ness)` and callers record the choice in a
//! [`KernelTally`] so the kernel mix is observable in `ClusterStats`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::VertexId;

/// Cardinality ratio at which galloping overtakes the sorted merge.
///
/// With `|large| ≥ 8 · |small|` the expected `log₂(l/s)` probe cost per
/// small element is well under the `l/s` elements the merge would scan.
pub const GALLOP_RATIO: usize = 8;

/// Which kernel an intersection call dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Branch-light sorted merge (balanced cardinalities).
    Merge,
    /// Galloping / exponential search (≥ [`GALLOP_RATIO`]× skew).
    Gallop,
    /// Block-skipping bitmap membership (hub vertices).
    Bitmap,
}

/// Per-kernel invocation counters, accumulated locally by a work item and
/// flushed to `ClusterStats` in one shot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// Sorted-merge invocations.
    pub merge: u64,
    /// Galloping invocations.
    pub gallop: u64,
    /// Bitmap invocations.
    pub bitmap: u64,
}

impl KernelTally {
    /// Records one invocation of `kind`.
    #[inline]
    pub fn bump(&mut self, kind: KernelKind) {
        match kind {
            KernelKind::Merge => self.merge += 1,
            KernelKind::Gallop => self.gallop += 1,
            KernelKind::Bitmap => self.bitmap += 1,
        }
    }

    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: KernelTally) {
        self.merge += other.merge;
        self.gallop += other.gallop;
        self.bitmap += other.bitmap;
    }

    /// Total invocations across all kernels.
    pub fn total(&self) -> u64 {
        self.merge + self.gallop + self.bitmap
    }
}

/// Picks the kernel for one intersection call.
///
/// `small`/`large` are the two list cardinalities (order-insensitive);
/// `hub` says whether a cached [`HubBitmap`] is available for the larger
/// side. Bitmap wins whenever available (O(1) membership, no search),
/// galloping wins at ≥ [`GALLOP_RATIO`]× skew, the merge handles the rest.
#[inline]
pub fn select_kernel(small: usize, large: usize, hub: bool) -> KernelKind {
    let (small, large) = if small <= large {
        (small, large)
    } else {
        (large, small)
    };
    if hub {
        KernelKind::Bitmap
    } else if large >= small.saturating_mul(GALLOP_RATIO) {
        KernelKind::Gallop
    } else {
        KernelKind::Merge
    }
}

// ---------------------------------------------------------------------------
// Merge kernel
// ---------------------------------------------------------------------------

/// Branch-light sorted merge: appends `a ∩ b` to `out`.
pub fn intersect_merge_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push(x);
        }
        // Cursor advancement as arithmetic on the comparison outcome keeps
        // the loop body branchless apart from the rare `push`.
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
}

/// Count twin of [`intersect_merge_into`]: `|a ∩ b|` with no output writes.
pub fn intersect_count_merge(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j) = (0, 0);
    let mut n = 0u64;
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += (x == y) as u64;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    n
}

// ---------------------------------------------------------------------------
// Galloping kernel
// ---------------------------------------------------------------------------

/// Index of the first element of `hay` that is `>= needle`, found by
/// exponential search: double the probe offset until the needle is
/// bracketed, then binary-search the bracket. `O(log d)` where `d` is the
/// returned index, which is what makes galloping cheap when consecutive
/// needles land close together.
#[inline]
fn lower_bound_gallop(hay: &[VertexId], needle: VertexId) -> usize {
    let mut hi = 1usize;
    while hi <= hay.len() && hay[hi - 1] < needle {
        hi <<= 1;
    }
    // Invariant: hay[hi/2 - 1] < needle (or hi/2 == 0) and
    // hay[hi - 1] >= needle (or hi > len), so the answer is in [hi/2, hi).
    let lo = hi >> 1;
    let hi = hi.min(hay.len());
    lo + hay[lo..hi].partition_point(|&x| x < needle)
}

/// Galloping intersection: iterates `small`, exponential-searches `large`.
///
/// Appends `small ∩ large` to `out`. The search restarts from the previous
/// match position, so the large list is consumed monotonically.
pub fn intersect_gallop_into(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>) {
    let mut base = 0usize;
    for &x in small {
        base += lower_bound_gallop(&large[base..], x);
        if base >= large.len() {
            break;
        }
        if large[base] == x {
            out.push(x);
            base += 1;
        }
    }
}

/// Count twin of [`intersect_gallop_into`].
pub fn intersect_count_gallop(small: &[VertexId], large: &[VertexId]) -> u64 {
    let mut base = 0usize;
    let mut n = 0u64;
    for &x in small {
        base += lower_bound_gallop(&large[base..], x);
        if base >= large.len() {
            break;
        }
        if large[base] == x {
            n += 1;
            base += 1;
        }
    }
    n
}

// ---------------------------------------------------------------------------
// Hub bitmap kernel
// ---------------------------------------------------------------------------

/// Sparse bitmap over a hub vertex's adjacency set.
///
/// Only non-zero 64-bit blocks are stored: `blocks[i]` is the block id
/// (`vertex >> 6`) and `words[i]` the membership word for that block.
/// Blocks are sorted, so intersecting with a sorted query list is a single
/// monotone walk that skips absent blocks without searching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubBitmap {
    blocks: Vec<u32>,
    words: Vec<u64>,
}

impl HubBitmap {
    /// Builds the bitmap from a sorted, deduplicated adjacency list.
    pub fn build(sorted: &[VertexId]) -> HubBitmap {
        let mut blocks: Vec<u32> = Vec::new();
        let mut words: Vec<u64> = Vec::new();
        for &v in sorted {
            let blk = v >> 6;
            if blocks.last() != Some(&blk) {
                blocks.push(blk);
                words.push(0);
            }
            *words.last_mut().expect("block pushed") |= 1u64 << (v & 63);
        }
        HubBitmap { blocks, words }
    }

    /// Membership test for a single vertex.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match self.blocks.binary_search(&(v >> 6)) {
            Ok(i) => (self.words[i] >> (v & 63)) & 1 == 1,
            Err(_) => false,
        }
    }

    /// Number of set bits (the hub's degree).
    pub fn cardinality(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Heap bytes held by the bitmap (for memory accounting).
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u32>()
            + self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Bitmap intersection: appends `query ∩ hub` to `out`.
///
/// Walks the sorted `query` once with a monotone cursor over the bitmap's
/// non-zero blocks; query elements in absent blocks cost one comparison.
pub fn intersect_bitmap_into(query: &[VertexId], hub: &HubBitmap, out: &mut Vec<VertexId>) {
    let mut bi = 0usize;
    for &v in query {
        let blk = v >> 6;
        while bi < hub.blocks.len() && hub.blocks[bi] < blk {
            bi += 1;
        }
        if bi == hub.blocks.len() {
            break;
        }
        if hub.blocks[bi] == blk && (hub.words[bi] >> (v & 63)) & 1 == 1 {
            out.push(v);
        }
    }
}

/// In-place variant of [`intersect_bitmap_into`]: compacts `acc` to
/// `acc ∩ hub` using the same monotone block cursor.
pub fn intersect_bitmap_in_place(acc: &mut Vec<VertexId>, hub: &HubBitmap) {
    let mut w = 0usize;
    let mut bi = 0usize;
    for r in 0..acc.len() {
        let v = acc[r];
        let blk = v >> 6;
        while bi < hub.blocks.len() && hub.blocks[bi] < blk {
            bi += 1;
        }
        if bi == hub.blocks.len() {
            break;
        }
        if hub.blocks[bi] == blk && (hub.words[bi] >> (v & 63)) & 1 == 1 {
            acc[w] = v;
            w += 1;
        }
    }
    acc.truncate(w);
}

/// Count twin of [`intersect_bitmap_into`].
pub fn intersect_count_bitmap(query: &[VertexId], hub: &HubBitmap) -> u64 {
    let mut bi = 0usize;
    let mut n = 0u64;
    for &v in query {
        let blk = v >> 6;
        while bi < hub.blocks.len() && hub.blocks[bi] < blk {
            bi += 1;
        }
        if bi == hub.blocks.len() {
            break;
        }
        n += (hub.blocks[bi] == blk && (hub.words[bi] >> (v & 63)) & 1 == 1) as u64;
    }
    n
}

// ---------------------------------------------------------------------------
// Adaptive dispatch
// ---------------------------------------------------------------------------

/// Intersects `acc` with `other` in place (compacting `acc`), dispatching
/// on cardinality skew. Returns the kernel used so callers can tally it.
///
/// This is the one shared in-place compaction used by `intersect_many` and
/// the operator layer's multiway extension loop.
pub fn intersect_in_place(acc: &mut Vec<VertexId>, other: &[VertexId]) -> KernelKind {
    let kind = select_kernel(acc.len(), other.len(), false);
    intersect_in_place_with(acc, other, kind);
    kind
}

/// Dispatch-free twin of [`intersect_in_place`]: runs a *pre-selected*
/// kernel instead of calling [`select_kernel`] per invocation.
///
/// Callers that process whole batches (the columnar `PULL-EXTEND`) pick the
/// kernel once per batch and hub class and hand it down here, hoisting the
/// cardinality comparison out of the per-candidate loop. Any `kind` is
/// correct on any input — the choice only affects speed. `Bitmap` has no
/// bitmap operand in list form and falls back to the merge loop; `Gallop`
/// still branches on which side is smaller (the accumulator shrinks as the
/// multiway intersection proceeds, so the galloped side can flip mid-batch).
pub fn intersect_in_place_with(acc: &mut Vec<VertexId>, other: &[VertexId], kind: KernelKind) {
    let mut w = 0usize;
    match kind {
        KernelKind::Merge | KernelKind::Bitmap => {
            let (mut i, mut j) = (0, 0);
            while i < acc.len() && j < other.len() {
                let (x, y) = (acc[i], other[j]);
                if x == y {
                    acc[w] = x;
                    w += 1;
                }
                i += (x <= y) as usize;
                j += (y <= x) as usize;
            }
        }
        KernelKind::Gallop if acc.len() <= other.len() => {
            // Small accumulator, large list: gallop the list.
            let mut base = 0usize;
            for i in 0..acc.len() {
                let x = acc[i];
                base += lower_bound_gallop(&other[base..], x);
                if base >= other.len() {
                    break;
                }
                if other[base] == x {
                    acc[w] = x;
                    w += 1;
                    base += 1;
                }
            }
        }
        KernelKind::Gallop => {
            // Large accumulator, small list: gallop the accumulator. The
            // write cursor trails the read cursor (w ≤ matches ≤ base), so
            // compaction in place is safe.
            let mut base = 0usize;
            for &x in other {
                base += lower_bound_gallop(&acc[base..], x);
                if base >= acc.len() {
                    break;
                }
                if acc[base] == x {
                    acc[w] = x;
                    w += 1;
                    base += 1;
                }
            }
        }
    }
    acc.truncate(w);
}

/// Dispatch-free count twin: counts `|a ∩ b|` with a pre-selected kernel.
///
/// Orders the operands internally for the galloping twin; `Bitmap` falls
/// back to the merge twin (use [`intersect_count_bitmap`] when the actual
/// bitmap is at hand). Like [`intersect_in_place_with`], any `kind` is
/// correct on any input.
pub fn intersect_count_with(a: &[VertexId], b: &[VertexId], kind: KernelKind) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match kind {
        KernelKind::Gallop => intersect_count_gallop(small, large),
        _ => intersect_count_merge(small, large),
    }
}

/// Counts `|a ∩ b|`, dispatching between the merge and galloping count
/// twins on skew (use [`intersect_count_bitmap`] directly when a hub bitmap
/// is cached). Returns the count and the kernel used.
pub fn intersect_count_adaptive(a: &[VertexId], b: &[VertexId]) -> (u64, KernelKind) {
    let kind = select_kernel(a.len(), b.len(), false);
    (intersect_count_with(a, b, kind), kind)
}

// ---------------------------------------------------------------------------
// Hub index
// ---------------------------------------------------------------------------

/// Per-partition cache of [`HubBitmap`]s for local high-degree vertices.
///
/// Built once at cluster start for every local vertex whose degree is at
/// least `threshold` (a `threshold` of 0 disables the index). The bitmap
/// kernel is used whenever an extension intersects against one of these
/// hubs; lower-degree vertices fall back to merge/gallop.
#[derive(Clone, Debug, Default)]
pub struct HubIndex {
    threshold: usize,
    map: HashMap<VertexId, HubBitmap>,
    bytes: u64,
}

impl HubIndex {
    /// Builds the index over `(vertex, adjacency)` pairs whose degree meets
    /// `threshold`. Callers supply only the vertices they own.
    pub fn build<'a, I>(threshold: usize, lists: I) -> Arc<HubIndex>
    where
        I: IntoIterator<Item = (VertexId, &'a [VertexId])>,
    {
        let mut map = HashMap::new();
        let mut bytes = 0u64;
        if threshold > 0 {
            for (v, nbrs) in lists {
                if nbrs.len() >= threshold {
                    let bm = HubBitmap::build(nbrs);
                    bytes += bm.byte_size() as u64;
                    map.insert(v, bm);
                }
            }
        }
        Arc::new(HubIndex {
            threshold,
            map,
            bytes,
        })
    }

    /// The degree threshold the index was built with.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The bitmap for `v`, if `v` is an indexed hub.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<&HubBitmap> {
        self.map.get(&v)
    }

    /// Number of indexed hubs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no vertex met the threshold.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total heap bytes held by the cached bitmaps.
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::intersect_sorted;

    fn strided(len: usize, stride: u32, offset: u32) -> Vec<VertexId> {
        (0..len as u32).map(|i| i * stride + offset).collect()
    }

    #[test]
    fn merge_matches_scalar_reference() {
        let a = strided(100, 3, 0);
        let b = strided(400, 2, 1);
        let mut out = Vec::new();
        intersect_merge_into(&a, &b, &mut out);
        assert_eq!(out, intersect_sorted(&a, &b));
        assert_eq!(intersect_count_merge(&a, &b), out.len() as u64);
    }

    #[test]
    fn gallop_matches_scalar_reference() {
        let small = strided(16, 97, 5);
        let large = strided(4096, 3, 0);
        let mut out = Vec::new();
        intersect_gallop_into(&small, &large, &mut out);
        assert_eq!(out, intersect_sorted(&small, &large));
        assert_eq!(intersect_count_gallop(&small, &large), out.len() as u64);
    }

    #[test]
    fn gallop_handles_empty_and_disjoint() {
        let mut out = Vec::new();
        intersect_gallop_into(&[], &[1, 2, 3], &mut out);
        assert!(out.is_empty());
        intersect_gallop_into(&[10, 20], &[], &mut out);
        assert!(out.is_empty());
        intersect_gallop_into(&[100, 200], &[1, 2, 3], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lower_bound_gallop_brackets_correctly() {
        let hay: Vec<VertexId> = vec![2, 4, 6, 8, 10, 12, 14];
        for needle in 0..16 {
            let want = hay.partition_point(|&x| x < needle);
            assert_eq!(lower_bound_gallop(&hay, needle), want, "needle {needle}");
        }
        assert_eq!(lower_bound_gallop(&[], 5), 0);
    }

    #[test]
    fn bitmap_matches_scalar_reference() {
        let hub = strided(500, 7, 3);
        let query = strided(300, 11, 0);
        let bm = HubBitmap::build(&hub);
        assert_eq!(bm.cardinality(), 500);
        let mut out = Vec::new();
        intersect_bitmap_into(&query, &bm, &mut out);
        assert_eq!(out, intersect_sorted(&query, &hub));
        assert_eq!(intersect_count_bitmap(&query, &bm), out.len() as u64);
        let mut acc = query.clone();
        intersect_bitmap_in_place(&mut acc, &bm);
        assert_eq!(acc, out);
    }

    #[test]
    fn bitmap_membership() {
        let bm = HubBitmap::build(&[0, 63, 64, 1000]);
        assert!(bm.contains(0));
        assert!(bm.contains(63));
        assert!(bm.contains(64));
        assert!(bm.contains(1000));
        assert!(!bm.contains(1));
        assert!(!bm.contains(65));
        assert!(!bm.contains(999));
        assert!(bm.byte_size() > 0);
    }

    #[test]
    fn in_place_dispatches_and_compacts() {
        // Balanced → merge.
        let mut acc = strided(64, 3, 0);
        let other = strided(64, 2, 0);
        let want = intersect_sorted(&acc, &other);
        assert_eq!(intersect_in_place(&mut acc, &other), KernelKind::Merge);
        assert_eq!(acc, want);

        // Small acc vs large list → gallop.
        let mut acc = strided(8, 50, 0);
        let other = strided(1024, 5, 0);
        let want = intersect_sorted(&acc, &other);
        assert_eq!(intersect_in_place(&mut acc, &other), KernelKind::Gallop);
        assert_eq!(acc, want);

        // Large acc vs small list → gallop (the other direction).
        let mut acc = strided(1024, 5, 0);
        let other = strided(8, 50, 0);
        let want = intersect_sorted(&acc, &other);
        assert_eq!(intersect_in_place(&mut acc, &other), KernelKind::Gallop);
        assert_eq!(acc, want);
    }

    #[test]
    fn fixed_kind_variants_match_adaptive_on_every_kind() {
        // Any pre-selected kind must produce the same set/count as the
        // adaptive dispatcher — the batch-level hoist relies on this.
        let shapes = [
            (strided(64, 3, 0), strided(64, 2, 0)),   // balanced
            (strided(8, 50, 0), strided(1024, 5, 0)), // small acc, large list
            (strided(1024, 5, 0), strided(8, 50, 0)), // large acc, small list
            (Vec::new(), strided(16, 2, 0)),          // empty acc
            (strided(16, 2, 0), Vec::new()),          // empty list
        ];
        for (acc0, other) in &shapes {
            let want = intersect_sorted(acc0, other);
            for kind in [KernelKind::Merge, KernelKind::Gallop, KernelKind::Bitmap] {
                let mut acc = acc0.clone();
                intersect_in_place_with(&mut acc, other, kind);
                assert_eq!(acc, want, "in-place {kind:?}");
                assert_eq!(
                    intersect_count_with(acc0, other, kind),
                    want.len() as u64,
                    "count {kind:?}"
                );
            }
        }
    }

    #[test]
    fn count_adaptive_matches_reference() {
        let a = strided(10, 100, 0);
        let b = strided(2000, 4, 0);
        let (n, kind) = intersect_count_adaptive(&a, &b);
        assert_eq!(n, intersect_sorted(&a, &b).len() as u64);
        assert_eq!(kind, KernelKind::Gallop);
        let (n2, kind2) = intersect_count_adaptive(&b, &a);
        assert_eq!(n2, n);
        assert_eq!(kind2, KernelKind::Gallop);
    }

    #[test]
    fn kernel_selection_rules() {
        assert_eq!(select_kernel(100, 100, false), KernelKind::Merge);
        assert_eq!(select_kernel(100, 799, false), KernelKind::Merge);
        assert_eq!(select_kernel(100, 800, false), KernelKind::Gallop);
        assert_eq!(select_kernel(800, 100, false), KernelKind::Gallop);
        assert_eq!(select_kernel(100, 100, true), KernelKind::Bitmap);
        assert_eq!(select_kernel(0, 10, false), KernelKind::Gallop);
    }

    #[test]
    fn tally_accumulates() {
        let mut t = KernelTally::default();
        t.bump(KernelKind::Merge);
        t.bump(KernelKind::Gallop);
        t.bump(KernelKind::Gallop);
        t.bump(KernelKind::Bitmap);
        assert_eq!(t.merge, 1);
        assert_eq!(t.gallop, 2);
        assert_eq!(t.bitmap, 1);
        assert_eq!(t.total(), 4);
        let mut u = KernelTally::default();
        u.absorb(t);
        u.absorb(t);
        assert_eq!(u.total(), 8);
    }

    #[test]
    fn hub_index_builds_only_hubs() {
        let big = strided(300, 2, 0);
        let small = strided(10, 2, 1);
        let idx = HubIndex::build(256, vec![(0u32, big.as_slice()), (1u32, small.as_slice())]);
        assert_eq!(idx.len(), 1);
        assert!(idx.get(0).is_some());
        assert!(idx.get(1).is_none());
        assert_eq!(idx.threshold(), 256);
        assert!(idx.byte_size() > 0);

        let off = HubIndex::build(0, vec![(0u32, big.as_slice())]);
        assert!(off.is_empty());
    }
}
