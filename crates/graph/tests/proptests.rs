//! Property-based tests of the graph substrate.

use huge_graph::graph::{intersect_many, intersect_sorted};
use huge_graph::kernels::{
    self, intersect_bitmap_into, intersect_count_bitmap, intersect_count_gallop,
    intersect_count_merge, intersect_gallop_into, intersect_merge_into, HubBitmap, HubIndex,
};
use huge_graph::{gen, Graph, GraphBuilder, Partitioner};
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

/// Two sorted deduplicated lists whose cardinalities differ by a random
/// ratio (1:1 up to ~1:1000), exercising every kernel's dispatch band.
fn arb_skewed_lists() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        prop::collection::vec(0u32..4096, 0..48),
        prop::collection::vec(0u32..4096, 0..512),
        1usize..4,
    )
        .prop_map(|(mut small, mut large, rep)| {
            // Repeat the large draw to push the ratio past the gallop cutoff
            // in some cases.
            let extra: Vec<u32> = large.iter().map(|&v| v.wrapping_mul(rep as u32)).collect();
            large.extend(extra);
            small.sort_unstable();
            small.dedup();
            large.sort_unstable();
            large.dedup();
            (small, large)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction is symmetric: `v ∈ adj(u)` iff `u ∈ adj(v)`.
    #[test]
    fn adjacency_is_symmetric(edges in arb_edges(64, 200)) {
        let g = Graph::from_edges(edges);
        for u in g.vertices() {
            for &v in g.neighbours(u) {
                prop_assert!(g.neighbours(v).binary_search(&u).is_ok());
            }
        }
    }

    /// Adjacency lists are sorted and contain no duplicates or self loops.
    #[test]
    fn adjacency_sorted_unique(edges in arb_edges(64, 200)) {
        let g = Graph::from_edges(edges);
        for u in g.vertices() {
            let adj = g.neighbours(u);
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!adj.contains(&u));
        }
    }

    /// The number of undirected edges equals half the sum of degrees.
    #[test]
    fn handshake_lemma(edges in arb_edges(128, 400)) {
        let g = Graph::from_edges(edges);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum as u64, 2 * g.num_edges());
    }

    /// `has_edge` agrees with adjacency membership.
    #[test]
    fn has_edge_consistent(edges in arb_edges(48, 150), u in 0u32..48, v in 0u32..48) {
        let g = Graph::from_edges(edges);
        if (u as usize) < g.num_vertices() && (v as usize) < g.num_vertices() {
            let expect = g.neighbours(u).contains(&v);
            prop_assert_eq!(g.has_edge(u, v), expect);
            prop_assert_eq!(g.has_edge(v, u), expect);
        }
    }

    /// Sorted intersection equals the set intersection.
    #[test]
    fn intersection_correct(mut a in prop::collection::vec(0u32..200, 0..80),
                            mut b in prop::collection::vec(0u32..200, 0..80)) {
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        let got = intersect_sorted(&a, &b);
        let sa: std::collections::BTreeSet<_> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<_> = b.iter().copied().collect();
        let want: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Multi-way intersection is order independent and matches pairwise folding.
    #[test]
    fn multiway_intersection_correct(lists in prop::collection::vec(
        prop::collection::vec(0u32..100, 0..40), 1..4)) {
        let sorted: Vec<Vec<u32>> = lists.iter().map(|l| {
            let mut l = l.clone();
            l.sort_unstable();
            l.dedup();
            l
        }).collect();
        let refs: Vec<&[u32]> = sorted.iter().map(|l| l.as_slice()).collect();
        let got = intersect_many(refs);
        let mut want = sorted[0].clone();
        for l in &sorted[1..] {
            want = intersect_sorted(&want, l);
        }
        prop_assert_eq!(got, want);
    }

    /// Partitioning covers every vertex exactly once, regardless of k.
    #[test]
    fn partition_is_a_cover(edges in arb_edges(100, 300), k in 1usize..8) {
        let g = Graph::from_edges(edges);
        let n = g.num_vertices();
        let parts = Partitioner::new(k).unwrap().partition(g);
        let covered: usize = parts.iter().map(|p| p.num_local_vertices()).sum();
        prop_assert_eq!(covered, n);
    }

    /// Builder is idempotent under duplicated input edges.
    #[test]
    fn builder_dedup(edges in arb_edges(40, 120)) {
        let mut doubled = edges.clone();
        doubled.extend(edges.iter().copied());
        let g1 = Graph::from_edges(edges);
        let g2 = Graph::from_edges(doubled);
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
    }

    /// Every kernel of the intersection family — merge, gallop, bitmap, the
    /// adaptive dispatchers, and all the `*_count_*` twins — agrees with the
    /// scalar reference on random sorted lists of every cardinality ratio.
    #[test]
    fn kernel_family_agrees_with_scalar_reference((small, large) in arb_skewed_lists()) {
        let want = intersect_sorted(&small, &large);
        let want_n = want.len() as u64;

        let mut merge = Vec::new();
        intersect_merge_into(&small, &large, &mut merge);
        prop_assert_eq!(&merge, &want);
        prop_assert_eq!(intersect_count_merge(&small, &large), want_n);

        // Galloping in either orientation.
        let mut gallop = Vec::new();
        intersect_gallop_into(&small, &large, &mut gallop);
        prop_assert_eq!(&gallop, &want);
        gallop.clear();
        intersect_gallop_into(&large, &small, &mut gallop);
        prop_assert_eq!(&gallop, &want);
        prop_assert_eq!(intersect_count_gallop(&small, &large), want_n);
        prop_assert_eq!(intersect_count_gallop(&large, &small), want_n);

        // Bitmap over the larger side, probed with the smaller.
        let bm = HubBitmap::build(&large);
        prop_assert_eq!(bm.cardinality() as usize, large.len());
        let mut bitmap = Vec::new();
        intersect_bitmap_into(&small, &bm, &mut bitmap);
        prop_assert_eq!(&bitmap, &want);
        prop_assert_eq!(intersect_count_bitmap(&small, &bm), want_n);

        // Adaptive dispatchers pick some kernel; the result must not depend
        // on which.
        let mut acc = small.clone();
        kernels::intersect_in_place(&mut acc, &large);
        prop_assert_eq!(&acc, &want);
        let mut acc = large.clone();
        kernels::intersect_in_place(&mut acc, &small);
        prop_assert_eq!(&acc, &want);
        let (n, _) = kernels::intersect_count_adaptive(&small, &large);
        prop_assert_eq!(n, want_n);
    }

    /// A hub index over random adjacency data answers exactly the vertices
    /// at or above the threshold, and its bitmaps reproduce their lists.
    #[test]
    fn hub_index_covers_exactly_the_hubs(edges in arb_edges(96, 400),
                                         threshold in 1usize..16) {
        let g = Graph::from_edges(edges);
        let verts: Vec<u32> = g.vertices().collect();
        let index = HubIndex::build(
            threshold,
            verts.iter().map(|&v| (v, g.neighbours(v))),
        );
        for v in g.vertices() {
            match index.get(v) {
                Some(bm) => {
                    prop_assert!(g.degree(v) >= threshold);
                    let mut from_bm = Vec::new();
                    intersect_bitmap_into(g.neighbours(v), bm, &mut from_bm);
                    prop_assert_eq!(from_bm.as_slice(), g.neighbours(v));
                }
                None => prop_assert!(g.degree(v) < threshold),
            }
        }
    }
}

#[test]
fn generators_are_connected_enough() {
    // BA graphs are connected by construction.
    let g = gen::barabasi_albert(2000, 3, 77);
    let mut visited = vec![false; g.num_vertices()];
    let mut stack = vec![0u32];
    visited[0] = true;
    let mut seen = 1;
    while let Some(v) = stack.pop() {
        for &u in g.neighbours(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                seen += 1;
                stack.push(u);
            }
        }
    }
    assert_eq!(seen, g.num_vertices());
}

#[test]
fn builder_with_vertices_allows_bigger_ids() {
    let mut b = GraphBuilder::with_vertices(4);
    b.add_edge(0, 3);
    let g = b.build();
    assert_eq!(g.num_vertices(), 4);
}
