//! Cooperative cancellation and deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared by the caller and
//! every machine thread of a run. Cancellation is *cooperative*: nothing is
//! interrupted pre-emptively — the scheduling loop, the steal loop,
//! `Fault::Delay` slices and `JoinStream` probing all poll the token at
//! batch granularity and unwind with a typed error
//! ([`EngineError::Cancelled`](crate::EngineError) /
//! [`EngineError::DeadlineExceeded`](crate::EngineError)) when it fires.
//! Because every machine parks on a short timeout (≈1 ms) while idle, the
//! whole cluster observes a cancellation within a few polling intervals.
//!
//! Deadlines ([`ClusterConfig::deadline`](crate::ClusterConfig)) are mapped
//! onto the same token: [`CancelToken::check`] lazily flips the token into
//! the `DeadlineExceeded` state the first time it is polled past the
//! deadline, so no timer thread is needed.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped early. Distinguishes an explicit
/// [`CancelToken::cancel`] from a configured deadline expiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The run outlived [`ClusterConfig::deadline`](crate::ClusterConfig).
    DeadlineExceeded,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

struct Inner {
    /// `LIVE` until the first cancel/deadline observation; monotonic after.
    state: AtomicU8,
    /// Deadline as nanoseconds past `epoch`; `u64::MAX` = no deadline.
    deadline_nanos: AtomicU64,
    /// When the winning cause fired, nanoseconds past `epoch` plus one
    /// (0 = not fired). Stamped exactly once, by the CAS winner, so the
    /// flight recorder can place the cancellation on the run timeline.
    fired_nanos: AtomicU64,
    /// Reference instant the deadline is measured from.
    epoch: Instant,
}

/// A cloneable cancellation handle shared by a run's caller and machines.
///
/// All clones observe the same state; firing is monotonic (a token never
/// goes back to live) and idempotent — the first cause to fire wins.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cause", &self.cause())
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline_nanos: AtomicU64::new(u64::MAX),
                fired_nanos: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// Arms (or re-arms) a deadline `timeout` from now. The token flips to
    /// `DeadlineExceeded` the first time it is polled past that instant.
    pub fn arm_deadline(&self, timeout: Duration) {
        let nanos = self
            .inner
            .epoch
            .elapsed()
            .saturating_add(timeout)
            .as_nanos()
            .min(u64::MAX as u128 - 1) as u64;
        self.inner.deadline_nanos.store(nanos, Ordering::Release);
    }

    /// Requests cancellation. Idempotent; loses to an already-fired
    /// deadline (the first cause wins).
    pub fn cancel(&self) {
        if self
            .inner
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.stamp_fired();
        }
    }

    fn stamp_fired(&self) {
        let nanos = (self.inner.epoch.elapsed().as_nanos() as u64).saturating_add(1);
        self.inner.fired_nanos.store(nanos, Ordering::Release);
    }

    /// When the winning cause fired, or `None` while the token is live. The
    /// cluster uses this to place the cancellation/deadline instant on the
    /// flight-recorder timeline at its true wall-clock position.
    pub fn fired_at(&self) -> Option<Instant> {
        match self.inner.fired_nanos.load(Ordering::Acquire) {
            0 => None,
            nanos => self
                .inner
                .epoch
                .checked_add(Duration::from_nanos(nanos - 1)),
        }
    }

    /// Why the token fired, or `None` while it is still live. Polling here
    /// also lazily trips an expired deadline.
    pub fn cause(&self) -> Option<CancelCause> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(CancelCause::Cancelled),
            DEADLINE => Some(CancelCause::DeadlineExceeded),
            _ => {
                let deadline = self.inner.deadline_nanos.load(Ordering::Acquire);
                if deadline != u64::MAX && self.inner.epoch.elapsed().as_nanos() as u64 >= deadline
                {
                    if self
                        .inner
                        .state
                        .compare_exchange(LIVE, DEADLINE, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.stamp_fired();
                    }
                    self.cause_fast()
                } else {
                    None
                }
            }
        }
    }

    fn cause_fast(&self) -> Option<CancelCause> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(CancelCause::Cancelled),
            DEADLINE => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// `true` once the token has fired (either cause).
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// Polls the token, returning the matching typed error once it fires.
    /// This is the single check every cooperative loop calls at batch
    /// granularity; the `RunReport` payload is attached later by the
    /// cluster, which owns the partial stats.
    pub fn check(&self) -> crate::Result<()> {
        match self.cause() {
            None => Ok(()),
            Some(CancelCause::Cancelled) => Err(crate::EngineError::Cancelled(None)),
            Some(CancelCause::DeadlineExceeded) => Err(crate::EngineError::DeadlineExceeded(None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_token_passes_checks() {
        let t = CancelToken::new();
        assert!(t.cause().is_none());
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.fired_at().is_none());
    }

    #[test]
    fn cancel_fires_once_and_sticks() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        let fired = clone.fired_at().expect("winner stamps the fire instant");
        t.cancel(); // idempotent
        assert_eq!(clone.fired_at(), Some(fired));
        assert_eq!(clone.cause(), Some(CancelCause::Cancelled));
        assert!(matches!(
            clone.check(),
            Err(crate::EngineError::Cancelled(None))
        ));
    }

    #[test]
    fn deadline_trips_lazily_on_poll() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_millis(0));
        // The state flips on the first poll past the deadline.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
        assert!(matches!(
            t.check(),
            Err(crate::EngineError::DeadlineExceeded(None))
        ));
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
        t.cancel(); // too late: deadline already fired
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn far_deadline_stays_live() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_secs(3600));
        assert!(t.cause().is_none());
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Cancelled));
    }
}
