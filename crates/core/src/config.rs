//! Engine configuration.

use std::time::Duration;

use huge_cache::CacheKind;
use huge_comm::NetworkModel;
use huge_trace::TraceConfig;

/// How the results of a run are consumed by the `SINK` operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkMode {
    /// Count matches only (the default for benchmarks; mirrors the paper's
    /// "decompress by counting to verify the results").
    Count,
    /// Count matches and additionally collect up to the given number of
    /// complete matches (for verification and the examples).
    Collect(usize),
}

/// Load-balancing strategy (Exp-8 compares all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadBalance {
    /// Two-layer (intra- and inter-machine) work stealing — HUGE's default.
    WorkStealing,
    /// No stealing: load is distributed statically by the first matched
    /// (pivot) vertex, as BENU does (the paper's HUGE-NOSTL).
    None,
    /// RADS' region-group heuristic: scan input is assigned to workers in
    /// contiguous region groups (the paper's HUGE-RGP).
    RegionGroup,
}

/// Where a [`Fault::PanicAt`] fires inside the faulted segment, instead of
/// at the segment's start like the plain [`Fault::Panic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicPoint {
    /// While building the segment's operator chain (before any input).
    Build,
    /// When the segment's `PUSH-JOIN` starts probing (after sealing).
    Probe,
    /// When the machine ships a stolen Grace partition to a peer.
    Ship,
}

/// What a [`FaultSpec`] injects.
///
/// `Panic`/`PanicAt`/`Delay` fire once, at (or inside) the named segment on
/// the named machine. The transport faults (`DropBatch`, `DuplicateBatch`,
/// `ReorderWindow`, `SlowLink`) instead *arm a lossy link* for every data
/// envelope the machine sends while executing that segment's shuffle; they
/// require [`ClusterConfig::unreliable_transport`] (the run is rejected
/// otherwise — without the retry/ack path the faults would silently corrupt
/// results). All probabilistic decisions derive from
/// [`ClusterConfig::fault_seed`], so a fault plan replays identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The machine thread panics (exercises abort propagation).
    Panic,
    /// The machine thread panics at a specific point inside the segment.
    PanicAt(PanicPoint),
    /// The machine sleeps for the given duration before executing the
    /// segment (makes one machine a deterministic straggler). The sleep is
    /// sliced so cancellation still lands at batch granularity.
    Delay(Duration),
    /// Each data envelope the machine sends is lost in transit with
    /// probability `ppm` / 1 000 000; the sender's retry path recovers it.
    DropBatch {
        /// Loss probability in parts per million (≤ 1 000 000).
        ppm: u32,
    },
    /// Each data envelope is delivered twice with probability `ppm`
    /// / 1 000 000; the receiver's dedup drops the copy.
    DuplicateBatch {
        /// Duplication probability in parts per million (≤ 1 000 000).
        ppm: u32,
    },
    /// Data envelopes are buffered and released in a seeded shuffle every
    /// `window` sends (out-of-order delivery; sequence numbers restore the
    /// per-link order guarantees the join feed relies on).
    ReorderWindow {
        /// Shuffle window in envelopes (≥ 1; 1 degenerates to in-order).
        window: usize,
    },
    /// Every data envelope from the machine is held back `delay` before the
    /// destination accepts it (a slow NIC / congested link).
    SlowLink {
        /// Added one-way latency.
        delay: Duration,
    },
}

impl Fault {
    /// `true` for the fault kinds that perturb the data transport (and so
    /// require [`ClusterConfig::unreliable_transport`]).
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            Fault::DropBatch { .. }
                | Fault::DuplicateBatch { .. }
                | Fault::ReorderWindow { .. }
                | Fault::SlowLink { .. }
        )
    }
}

/// A chaos-testing hook: inject a fault on one machine, armed by one
/// segment. Used by the test suite and the chaos harness to make failure
/// paths deterministic; the plan is empty in production.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The machine the fault fires on.
    pub machine: usize,
    /// The segment whose start triggers (or arms) it.
    pub segment: usize,
    /// What happens.
    pub fault: Fault,
}

/// Configuration of a [`HugeCluster`](crate::HugeCluster).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of simulated machines `k`.
    pub machines: usize,
    /// Worker threads per machine (the paper uses 4 in the local cluster).
    pub workers_per_machine: usize,
    /// Rows per batch — the minimum data processing unit (§4.2). The paper's
    /// default is 512 K; the default here is smaller because the synthetic
    /// graphs are smaller.
    pub batch_size: usize,
    /// Capacity of each operator's output queue in rows (§5.2). `usize::MAX`
    /// degenerates to pure BFS scheduling, `1` to pure DFS scheduling (the
    /// builder floors the value at 1: a zero-capacity queue would wedge
    /// `SharedQueue`, since even one pushed batch could never drain space).
    pub output_queue_rows: usize,
    /// Capacity of each machine's router inbox in rows. Producers shuffling
    /// join inputs observe backpressure when a destination inbox is full and
    /// cooperate by absorbing their own inbox while they wait.
    pub router_queue_rows: usize,
    /// Cache capacity as a fraction of the data graph's CSR size (the paper
    /// defaults to 30%). Ignored if `cache_capacity_bytes` is set.
    pub cache_capacity_fraction: f64,
    /// Absolute cache capacity in bytes (overrides the fraction when `Some`).
    pub cache_capacity_bytes: Option<u64>,
    /// Which cache design to use (Exp-6).
    pub cache_kind: CacheKind,
    /// Disable the cache entirely (Exp-4 runs with the cache off).
    pub disable_cache: bool,
    /// In-memory buffer per `PUSH-JOIN` side before spilling to disk, bytes.
    pub join_buffer_bytes: u64,
    /// Local vertices whose degree reaches this threshold get a cached
    /// bitmap in the partition's hub index, switching their intersections to
    /// the block-skipping bitmap kernel. `0` disables hub bitmaps.
    pub hub_degree_threshold: usize,
    /// Load-balancing strategy.
    pub load_balance: LoadBalance,
    /// Enable inter-machine work stealing (only meaningful with
    /// [`LoadBalance::WorkStealing`]).
    pub inter_machine_stealing: bool,
    /// Enable cross-machine Grace *partition* stealing: a machine that has
    /// finished probing its own sealed join build requests
    /// sealed-but-unprobed partitions from busy peers through the router's
    /// control plane, so one hot partition no longer serialises the join
    /// phase. Requires inter-machine stealing (the same Exp-8 knob covers
    /// both layers) and a pipelined multi-machine run to have any effect.
    pub partition_stealing: bool,
    /// Enable speculative sealing: producers broadcast per-source-machine
    /// end-of-stream control envelopes when they finish feeding a join, and
    /// a consumer seals (and starts probing) the join as soon as every
    /// source has signalled — ahead of observing the per-segment `remaining`
    /// counter gate. The lead is reported per run
    /// ([`JoinReport::seal_lead`](crate::report::JoinReport)).
    pub speculative_sealing: bool,
    /// Execute segments without barriers (default): each machine thread is
    /// spawned once per run and drives all segments by readiness, so a fast
    /// machine moves on while a straggler finishes. `false` restores the
    /// historic barriered execution (machine threads joined between
    /// segments), the escape hatch the `barrier` experiment quantifies.
    pub pipeline_segments: bool,
    /// Global byte budget for intermediate-result memory across the cluster.
    /// When set, the run instantiates a
    /// [`MemoryGovernor`](crate::governor::MemoryGovernor) that enforces the
    /// per-machine share (`memory_budget / machines`, unless
    /// [`ClusterConfig::memory_budget_per_machine`] overrides it) by
    /// shrinking queue/inbox capacities, tightening the scheduler into
    /// strict DFS and spilling `PUSH-JOIN` buffers under pressure. `None`
    /// (the default) disables governance entirely.
    pub memory_budget: Option<u64>,
    /// Per-machine byte budget override. `None` derives the per-machine
    /// share from `memory_budget`.
    pub memory_budget_per_machine: Option<u64>,
    /// Chaos-testing hooks; see [`FaultSpec`]. Empty in production. Faults
    /// are independent: several may target the same machine/segment.
    pub fault_plan: Vec<FaultSpec>,
    /// Seed for every probabilistic fault decision (drop/duplicate fates,
    /// reorder shuffles). The same plan + seed replays identically.
    pub fault_seed: u64,
    /// Run data envelopes over the lossy-transport path: sequence-numbered,
    /// receiver-deduplicated, sender-retried with bounded backoff. Required
    /// by the transport fault kinds; harmless (but slightly slower) without
    /// them.
    pub unreliable_transport: bool,
    /// Wall-clock budget for a run. When set, the run's
    /// [`CancelToken`](crate::cancel::CancelToken) trips to
    /// `DeadlineExceeded` once the budget elapses and the cluster returns
    /// [`EngineError::DeadlineExceeded`](crate::EngineError) carrying the
    /// partial-stats report. `None` (the default) never expires.
    pub deadline: Option<Duration>,
    /// Network model used to convert recorded traffic into the reported
    /// communication time `T_C`.
    pub network: NetworkModel,
    /// Budget fraction at which the memory governor enters the Yellow
    /// pressure level (queue/inbox capacities shrink).
    pub governor_enter_yellow: f64,
    /// Budget fraction below which Yellow pressure clears (hysteresis: must
    /// be below [`ClusterConfig::governor_enter_yellow`]).
    pub governor_exit_yellow: f64,
    /// Budget fraction at which the governor enters the Red pressure level
    /// (strict DFS, one-row queues, join spill).
    pub governor_enter_red: f64,
    /// Budget fraction below which Red pressure drops back to Yellow
    /// (hysteresis: must be below [`ClusterConfig::governor_enter_red`]).
    pub governor_exit_red: f64,
    /// Flight-recorder configuration: off (default), metrics-only, or full
    /// span recording with timeline export. See
    /// [`RunReport::trace`](crate::report::RunReport) and
    /// [`RunReport::metrics`](crate::report::RunReport) for the outputs.
    pub tracing: TraceConfig,
}

impl ClusterConfig {
    /// A configuration with `machines` machines and sensible defaults.
    pub fn new(machines: usize) -> Self {
        ClusterConfig {
            machines: machines.max(1),
            workers_per_machine: 2,
            batch_size: 8 * 1024,
            output_queue_rows: 128 * 1024,
            router_queue_rows: 256 * 1024,
            cache_capacity_fraction: 0.3,
            cache_capacity_bytes: None,
            cache_kind: CacheKind::Lrbu,
            disable_cache: false,
            join_buffer_bytes: 64 * 1024 * 1024,
            hub_degree_threshold: 256,
            load_balance: LoadBalance::WorkStealing,
            inter_machine_stealing: true,
            partition_stealing: true,
            speculative_sealing: true,
            pipeline_segments: true,
            memory_budget: None,
            memory_budget_per_machine: None,
            fault_plan: Vec::new(),
            fault_seed: 0x9e37_79b9_7f4a_7c15,
            unreliable_transport: false,
            deadline: None,
            network: NetworkModel::ten_gbps(machines.max(1)),
            governor_enter_yellow: 0.60,
            governor_exit_yellow: 0.45,
            governor_enter_red: 0.85,
            governor_exit_red: 0.70,
            tracing: TraceConfig::default(),
        }
    }

    /// Sets the number of worker threads per machine.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers_per_machine = workers.max(1);
        self
    }

    /// Sets the batch size in rows.
    pub fn batch_size(mut self, rows: usize) -> Self {
        self.batch_size = rows.max(1);
        self
    }

    /// Sets the output queue capacity in rows (floored at 1, like
    /// [`ClusterConfig::router_queue_rows`]: a zero-capacity queue can never
    /// drain and wedges the scheduler; capacity 1 is the pure-DFS setting).
    pub fn output_queue_rows(mut self, rows: usize) -> Self {
        self.output_queue_rows = rows.max(1);
        self
    }

    /// Sets the router inbox capacity in rows.
    pub fn router_queue_rows(mut self, rows: usize) -> Self {
        self.router_queue_rows = rows.max(1);
        self
    }

    /// Sets the cache capacity as a fraction of the graph size.
    pub fn cache_fraction(mut self, fraction: f64) -> Self {
        self.cache_capacity_fraction = fraction.clamp(0.0, 10.0);
        self.cache_capacity_bytes = None;
        self
    }

    /// Sets an absolute cache capacity in bytes.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_capacity_bytes = Some(bytes);
        self
    }

    /// Chooses the cache design.
    pub fn cache_kind(mut self, kind: CacheKind) -> Self {
        self.cache_kind = kind;
        self
    }

    /// Disables the pull cache entirely.
    pub fn no_cache(mut self) -> Self {
        self.disable_cache = true;
        self
    }

    /// Chooses the load-balancing strategy.
    pub fn load_balance(mut self, lb: LoadBalance) -> Self {
        self.load_balance = lb;
        if lb != LoadBalance::WorkStealing {
            self.inter_machine_stealing = false;
            self.partition_stealing = false;
        }
        self
    }

    /// Enables or disables cross-machine Grace partition stealing.
    pub fn partition_stealing(mut self, enabled: bool) -> Self {
        self.partition_stealing = enabled;
        self
    }

    /// Enables or disables speculative join sealing via per-source-machine
    /// end-of-stream control envelopes.
    pub fn speculative_sealing(mut self, enabled: bool) -> Self {
        self.speculative_sealing = enabled;
        self
    }

    /// Sets the memory governor's pressure-ladder thresholds as budget
    /// fractions. Each level's enter threshold must stay above its exit
    /// threshold (that gap is the hysteresis band) and the Red thresholds
    /// above their Yellow counterparts; [`ClusterConfig::validate`] enforces
    /// both.
    pub fn governor_thresholds(
        mut self,
        enter_yellow: f64,
        exit_yellow: f64,
        enter_red: f64,
        exit_red: f64,
    ) -> Self {
        self.governor_enter_yellow = enter_yellow;
        self.governor_exit_yellow = exit_yellow;
        self.governor_enter_red = enter_red;
        self.governor_exit_red = exit_red;
        self
    }

    /// Enables or disables barrier-free cross-segment pipelining.
    pub fn pipeline_segments(mut self, pipelined: bool) -> Self {
        self.pipeline_segments = pipelined;
        self
    }

    /// Appends a chaos-testing fault to the plan (see [`FaultSpec`]).
    /// Transport faults also switch on [`ClusterConfig::unreliable_transport`]
    /// — they are meaningless (and rejected) without the retry/ack path.
    pub fn inject_fault(mut self, machine: usize, segment: usize, fault: Fault) -> Self {
        if fault.is_transport() {
            self.unreliable_transport = true;
        }
        self.fault_plan.push(FaultSpec {
            machine,
            segment,
            fault,
        });
        self
    }

    /// Replaces the whole fault plan at once (the chaos harness's entry
    /// point). Transport faults switch on
    /// [`ClusterConfig::unreliable_transport`], as with
    /// [`ClusterConfig::inject_fault`].
    pub fn fault_plan(mut self, plan: Vec<FaultSpec>) -> Self {
        if plan.iter().any(|s| s.fault.is_transport()) {
            self.unreliable_transport = true;
        }
        self.fault_plan = plan;
        self
    }

    /// Sets the seed behind every probabilistic fault decision.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Enables (or disables) the lossy-transport path independently of any
    /// injected fault — useful to measure its overhead on a clean network.
    pub fn unreliable_transport(mut self, enabled: bool) -> Self {
        self.unreliable_transport = enabled;
        self
    }

    /// Selects the flight-recorder capture level for each run (off by
    /// default; see [`huge_trace::TraceMode`]).
    pub fn tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// Sets the wall-clock deadline for each run.
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Sets the per-side `PUSH-JOIN` buffer threshold before disk spill.
    pub fn join_buffer_bytes(mut self, bytes: u64) -> Self {
        self.join_buffer_bytes = bytes.max(1024);
        self
    }

    /// Sets the hub-bitmap degree threshold (`0` disables hub bitmaps).
    pub fn hub_degree_threshold(mut self, degree: usize) -> Self {
        self.hub_degree_threshold = degree;
        self
    }

    /// Sets the global intermediate-result memory budget in bytes and
    /// enables the [`MemoryGovernor`](crate::governor::MemoryGovernor).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes.max(1));
        self
    }

    /// Overrides the per-machine byte budget (otherwise derived as
    /// `memory_budget / machines`).
    pub fn memory_budget_per_machine(mut self, bytes: u64) -> Self {
        self.memory_budget_per_machine = Some(bytes.max(1));
        self
    }

    /// The per-machine byte budget the governor enforces, if any: the
    /// explicit per-machine override, else an even share of the global
    /// budget.
    pub fn machine_memory_budget(&self) -> Option<u64> {
        self.memory_budget_per_machine.or_else(|| {
            self.memory_budget
                .map(|b| (b / self.machines.max(1) as u64).max(1))
        })
    }

    /// Overrides the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// The effective cache capacity for a graph of `graph_bytes` CSR bytes.
    pub fn effective_cache_bytes(&self, graph_bytes: u64) -> u64 {
        self.cache_capacity_bytes
            .unwrap_or(((graph_bytes as f64) * self.cache_capacity_fraction) as u64)
            .max(1024)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("at least one machine is required".into());
        }
        if self.workers_per_machine == 0 {
            return Err("at least one worker per machine is required".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        let ladder = [
            (
                "yellow",
                self.governor_enter_yellow,
                self.governor_exit_yellow,
            ),
            ("red", self.governor_enter_red, self.governor_exit_red),
        ];
        for (level, enter, exit) in ladder {
            if !(enter.is_finite() && exit.is_finite()) || enter <= 0.0 || exit < 0.0 {
                return Err(format!(
                    "governor {level} thresholds must be positive and finite"
                ));
            }
            if enter <= exit {
                return Err(format!(
                    "governor {level} enter threshold ({enter}) must exceed its exit \
                     threshold ({exit}) — the gap is the hysteresis band"
                ));
            }
        }
        if self.governor_enter_red <= self.governor_enter_yellow {
            return Err(format!(
                "governor red enter threshold ({}) must exceed the yellow enter threshold ({})",
                self.governor_enter_red, self.governor_enter_yellow
            ));
        }
        for (i, spec) in self.fault_plan.iter().enumerate() {
            if spec.machine >= self.machines {
                return Err(format!(
                    "fault_plan[{i}] targets machine {} but the cluster has {} machines \
                     (the fault would silently never fire)",
                    spec.machine, self.machines
                ));
            }
            match spec.fault {
                Fault::DropBatch { ppm } | Fault::DuplicateBatch { ppm } if ppm > 1_000_000 => {
                    return Err(format!(
                        "fault_plan[{i}]: probability {ppm} ppm exceeds 1_000_000"
                    ));
                }
                Fault::ReorderWindow { window: 0 } => {
                    return Err(format!(
                        "fault_plan[{i}]: reorder window must be at least 1"
                    ));
                }
                _ => {}
            }
            if spec.fault.is_transport() && !self.unreliable_transport {
                return Err(format!(
                    "fault_plan[{i}] injects a transport fault but unreliable_transport is \
                     off — without the retry/ack path the fault would corrupt results"
                ));
            }
        }
        Ok(())
    }

    /// Validates the fault plan against the translated dataflow's segment
    /// count (only known at run time, so this complements
    /// [`ClusterConfig::validate`]). A spec naming a segment that does not
    /// exist would silently never fire — reject it instead.
    pub fn validate_fault_segments(&self, num_segments: usize) -> Result<(), String> {
        for (i, spec) in self.fault_plan.iter().enumerate() {
            if spec.segment >= num_segments {
                return Err(format!(
                    "fault_plan[{i}] targets segment {} but the plan has {num_segments} \
                     segments (the fault would silently never fire)",
                    spec.segment
                ));
            }
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(ClusterConfig::default().validate().is_ok());
        assert!(ClusterConfig::new(10).validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let cfg = ClusterConfig::new(3)
            .workers(5)
            .batch_size(100)
            .output_queue_rows(1000)
            .cache_fraction(0.5)
            .cache_kind(CacheKind::ConcurrentLru)
            .load_balance(LoadBalance::None)
            .join_buffer_bytes(2048);
        assert_eq!(cfg.machines, 3);
        assert_eq!(cfg.workers_per_machine, 5);
        assert_eq!(cfg.batch_size, 100);
        assert_eq!(cfg.output_queue_rows, 1000);
        assert!(!cfg.inter_machine_stealing);
        assert_eq!(cfg.join_buffer_bytes, 2048);
    }

    #[test]
    fn cache_capacity_resolution() {
        let cfg = ClusterConfig::new(2).cache_fraction(0.5);
        assert_eq!(cfg.effective_cache_bytes(10_000), 5_000);
        let cfg = ClusterConfig::new(2).cache_bytes(12345);
        assert_eq!(cfg.effective_cache_bytes(1000), 12345);
        // Tiny fractions are clamped to a sane minimum.
        let cfg = ClusterConfig::new(2).cache_fraction(0.0);
        assert_eq!(cfg.effective_cache_bytes(1000), 1024);
    }

    #[test]
    fn pipelining_defaults_on_and_toggles() {
        let cfg = ClusterConfig::new(2);
        assert!(cfg.pipeline_segments);
        assert!(cfg.fault_plan.is_empty());
        // `inject_fault` appends to the plan (each call adds one spec).
        let cfg = cfg
            .pipeline_segments(false)
            .inject_fault(1, 0, Fault::Delay(Duration::from_millis(5)))
            .inject_fault(0, 1, Fault::Panic);
        assert!(!cfg.pipeline_segments);
        assert_eq!(
            cfg.fault_plan,
            vec![
                FaultSpec {
                    machine: 1,
                    segment: 0,
                    fault: Fault::Delay(Duration::from_millis(5)),
                },
                FaultSpec {
                    machine: 0,
                    segment: 1,
                    fault: Fault::Panic,
                },
            ]
        );
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn fault_plan_validation_rejects_out_of_range_and_degenerate_specs() {
        // Machine index beyond the cluster: the fault would never fire.
        let cfg = ClusterConfig::new(2).inject_fault(2, 0, Fault::Panic);
        assert!(cfg.validate().is_err());
        // Probabilities are parts-per-million, capped at 1.0.
        let cfg = ClusterConfig::new(2).inject_fault(0, 0, Fault::DropBatch { ppm: 1_000_001 });
        assert!(cfg.validate().is_err());
        // A zero reorder window is meaningless.
        let cfg = ClusterConfig::new(2).inject_fault(0, 0, Fault::ReorderWindow { window: 0 });
        assert!(cfg.validate().is_err());
        // Segment bounds are checked against the translated plan.
        let cfg = ClusterConfig::new(2).inject_fault(0, 3, Fault::Panic);
        assert!(cfg.validate().is_ok());
        assert!(cfg.validate_fault_segments(4).is_ok());
        assert!(cfg.validate_fault_segments(3).is_err());
    }

    #[test]
    fn transport_faults_arm_the_lossy_transport() {
        let cfg = ClusterConfig::new(2);
        assert!(!cfg.unreliable_transport);
        let cfg = cfg.inject_fault(0, 0, Fault::DropBatch { ppm: 1000 });
        assert!(cfg.unreliable_transport);
        assert!(cfg.validate().is_ok());
        // Same through the whole-plan setter.
        let cfg = ClusterConfig::new(2).fault_plan(vec![FaultSpec {
            machine: 1,
            segment: 0,
            fault: Fault::ReorderWindow { window: 4 },
        }]);
        assert!(cfg.unreliable_transport);
        // Forcing the transport off under a transport fault is rejected.
        let cfg = cfg.unreliable_transport(false);
        assert!(cfg.validate().is_err());
        // Non-transport faults leave the transport alone.
        let cfg = ClusterConfig::new(2).inject_fault(0, 0, Fault::PanicAt(PanicPoint::Probe));
        assert!(!cfg.unreliable_transport);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn deadline_and_seed_builders_apply() {
        let cfg = ClusterConfig::new(2);
        assert!(cfg.deadline.is_none());
        let cfg = cfg.deadline(Duration::from_millis(250)).fault_seed(42);
        assert_eq!(cfg.deadline, Some(Duration::from_millis(250)));
        assert_eq!(cfg.fault_seed, 42);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_machines_is_clamped() {
        let cfg = ClusterConfig::new(0);
        assert_eq!(cfg.machines, 1);
    }

    #[test]
    fn zero_output_queue_rows_is_floored_like_router_queue_rows() {
        // Regression: `output_queue_rows(0)` used to be accepted verbatim
        // and wedged `SharedQueue` (a zero-capacity queue is always full).
        let cfg = ClusterConfig::new(2)
            .output_queue_rows(0)
            .router_queue_rows(0);
        assert_eq!(cfg.output_queue_rows, 1);
        assert_eq!(cfg.router_queue_rows, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn skew_knobs_default_on_and_follow_load_balance() {
        let cfg = ClusterConfig::new(4);
        assert!(cfg.partition_stealing);
        assert!(cfg.speculative_sealing);
        // Static load balancing turns both stealing layers off.
        let cfg = ClusterConfig::new(4).load_balance(LoadBalance::None);
        assert!(!cfg.inter_machine_stealing);
        assert!(!cfg.partition_stealing);
        let cfg = ClusterConfig::new(4)
            .partition_stealing(false)
            .speculative_sealing(false);
        assert!(!cfg.partition_stealing);
        assert!(!cfg.speculative_sealing);
    }

    #[test]
    fn governor_thresholds_default_to_the_historic_ladder_and_validate() {
        let cfg = ClusterConfig::new(2);
        assert_eq!(
            (
                cfg.governor_enter_yellow,
                cfg.governor_exit_yellow,
                cfg.governor_enter_red,
                cfg.governor_exit_red
            ),
            (0.60, 0.45, 0.85, 0.70)
        );
        assert!(cfg.validate().is_ok());
        let cfg = ClusterConfig::new(2).governor_thresholds(0.5, 0.3, 0.9, 0.8);
        assert!(cfg.validate().is_ok());
        // Enter must exceed exit (no hysteresis band = flapping).
        let cfg = ClusterConfig::new(2).governor_thresholds(0.45, 0.60, 0.85, 0.70);
        assert!(cfg.validate().is_err());
        let cfg = ClusterConfig::new(2).governor_thresholds(0.60, 0.45, 0.70, 0.70);
        assert!(cfg.validate().is_err());
        // Red must sit above yellow.
        let cfg = ClusterConfig::new(2).governor_thresholds(0.80, 0.45, 0.60, 0.50);
        assert!(cfg.validate().is_err());
        // Degenerate values are rejected.
        let cfg = ClusterConfig::new(2).governor_thresholds(f64::NAN, 0.45, 0.85, 0.70);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn memory_budget_knobs_and_per_machine_share() {
        let cfg = ClusterConfig::new(4);
        assert_eq!(cfg.memory_budget, None);
        assert_eq!(cfg.machine_memory_budget(), None);
        let cfg = cfg.memory_budget(4096);
        assert_eq!(cfg.memory_budget, Some(4096));
        assert_eq!(cfg.machine_memory_budget(), Some(1024));
        let cfg = cfg.memory_budget_per_machine(9999);
        assert_eq!(cfg.machine_memory_budget(), Some(9999));
        // The budget never collapses to zero, even for huge clusters.
        let cfg = ClusterConfig::new(8).memory_budget(3);
        assert_eq!(cfg.machine_memory_budget(), Some(1));
    }
}
