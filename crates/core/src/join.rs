//! The `PUSH-JOIN` operator: a buffered, partitioned (Grace-style) hash join
//! with disk spill (§4.3).
//!
//! Each side of the join is hash-partitioned by join key into a fixed number
//! of partitions. A partition buffers rows in memory until the configured
//! threshold, after which further rows are appended to a temporary file on
//! disk. When both inputs are complete, the joiner converts into a
//! [`JoinStream`] that drives the partitions *lazily*: each
//! [`JoinStream::next_batch`] call loads at most one partition, builds an
//! in-memory hash table over the right rows, and probes with the left rows
//! until one output batch is filled. Memory is therefore bounded by the
//! largest single partition plus one output batch — matching the paper's
//! "memory consumption is bounded to the buffer size" claim — on *every*
//! consumption path, including incremental `poll`-driven execution.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use huge_comm::{ColBatch, RowBatch};
use huge_graph::VertexId;
use huge_plan::translate::JoinOp;

use crate::memory::MemoryTracker;
use crate::operators::passes_filters;
use crate::Result;

/// Number of Grace partitions per side.
pub const NUM_PARTITIONS: usize = 16;

/// Lifecycle of one Grace partition inside a sealed join.
///
/// `Sealed` partitions are first-class work items: they can be probed
/// locally or shipped whole to an idle peer (partition stealing). The
/// transitions are `Sealed → Probing → Done` locally and `Sealed → Shipped`
/// when a steal request claims the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionState {
    /// Sealed but not yet probed — eligible for shipping to a peer.
    Sealed,
    /// Loaded and currently being probed on this machine.
    Probing,
    /// Handed to a thief machine; no longer this machine's work.
    Shipped,
    /// Probed to completion (or discarded as unmatchable).
    Done,
}

/// A sealed Grace partition claimed for shipping: `(partition index, left
/// rows, right rows)`, with both sides flat in the spill row encoding.
pub type TakenPartition = (usize, Vec<VertexId>, Vec<VertexId>);

/// Which input of the join a batch belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinSide {
    /// The left input (its rows form the prefix of output rows).
    Left,
    /// The right input (only its non-key payload columns are appended).
    Right,
}

/// Encodes rows in the spill encoding: every value as a little-endian
/// `u32`, flat. This is byte-identical to the on-disk spill format, so a
/// shipped partition round-trips bit-for-bit through [`decode_rows`]
/// whether it came from memory or from a spill file.
pub fn encode_rows(rows: &[VertexId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(std::mem::size_of_val(rows));
    for v in rows {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a spill-encoded byte buffer back into rows.
pub fn decode_rows(bytes: &[u8]) -> Vec<VertexId> {
    bytes
        .chunks_exact(std::mem::size_of::<VertexId>())
        .map(|c| VertexId::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Hashes the join-key columns of a row.
pub fn key_hash(row: &[VertexId], key_positions: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &pos in key_positions {
        h ^= row[pos] as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Widest join key (in columns) that packs exactly into a `u128`.
const PACK_MAX_KEY: usize = 4;

/// Packs the join-key columns of a row into a single `u128` table key. Up to
/// [`PACK_MAX_KEY`] columns pack positionally (collision-free); wider keys
/// fall back to the FNV hash, and the probe re-checks column equality on
/// each candidate match.
fn pack_key(row: &[VertexId], key_positions: &[usize]) -> u128 {
    if key_positions.len() <= PACK_MAX_KEY {
        let mut k = 0u128;
        for &pos in key_positions {
            k = (k << 32) | row[pos] as u128;
        }
        k
    } else {
        key_hash(row, key_positions) as u128
    }
}

struct SidePartition {
    rows_in_memory: Vec<VertexId>,
    memory_bytes: u64,
    spill_file: Option<PathBuf>,
    spilled_values: u64,
}

impl SidePartition {
    fn new() -> Self {
        SidePartition {
            rows_in_memory: Vec::new(),
            memory_bytes: 0,
            spill_file: None,
            spilled_values: 0,
        }
    }
}

impl Drop for SidePartition {
    fn drop(&mut self) {
        if let Some(path) = self.spill_file.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

struct SideBuffer {
    arity: usize,
    key_positions: Vec<usize>,
    partitions: Vec<SidePartition>,
    buffered_bytes: u64,
}

impl SideBuffer {
    fn new(arity: usize, key_positions: Vec<usize>) -> Self {
        SideBuffer {
            arity,
            key_positions,
            partitions: (0..NUM_PARTITIONS).map(|_| SidePartition::new()).collect(),
            buffered_bytes: 0,
        }
    }
}

/// The buffered hash join of one machine.
pub struct HashJoiner {
    op: JoinOp,
    left: SideBuffer,
    right: SideBuffer,
    spill_threshold_bytes: u64,
    spill_dir: PathBuf,
    spill_counter: usize,
    memory: MemoryTrackerHandle,
    /// Partitions already shipped to a thief before sealing.
    shipped: Vec<bool>,
}

/// A thin optional handle so the joiner can be used without a tracker in
/// unit tests.
#[derive(Clone)]
pub enum MemoryTrackerHandle {
    /// Track allocations against a machine's tracker.
    Tracked(std::sync::Arc<MemoryTracker>),
    /// Do not track.
    Untracked,
}

impl MemoryTrackerHandle {
    fn allocate(&self, bytes: u64) {
        if let MemoryTrackerHandle::Tracked(t) = self {
            t.allocate(bytes);
        }
    }
    fn release(&self, bytes: u64) {
        if let MemoryTrackerHandle::Tracked(t) = self {
            t.release(bytes);
        }
    }
}

impl HashJoiner {
    /// Creates a joiner for `op` whose inputs have the given arities.
    pub fn new(
        op: JoinOp,
        left_arity: usize,
        right_arity: usize,
        spill_threshold_bytes: u64,
        spill_dir: PathBuf,
        memory: MemoryTrackerHandle,
    ) -> Self {
        let left = SideBuffer::new(left_arity, op.key_left.clone());
        let right = SideBuffer::new(right_arity, op.key_right.clone());
        HashJoiner {
            op,
            left,
            right,
            spill_threshold_bytes: spill_threshold_bytes.max(1024),
            spill_dir,
            spill_counter: 0,
            memory,
            shipped: vec![false; NUM_PARTITIONS],
        }
    }

    /// Ships one not-yet-shipped partition out of a pending (unsealed)
    /// joiner, highest index first. Only sound once no further input can
    /// arrive for this join — the thief's steal request implies global
    /// end-of-stream for both producers. Partitions empty on either side are
    /// skipped (they produce nothing and are cheaper discarded locally).
    ///
    /// The returned rows *keep* their memory-tracker charge: in-memory bytes
    /// stay charged and spilled bytes are newly charged as they are read
    /// back, so the charge travels with the partition and is only released
    /// when the thief acknowledges adoption (allocate-before-release, as in
    /// `SharedQueue::steal_into`).
    pub fn take_unprobed_partition(&mut self) -> Result<Option<TakenPartition>> {
        for p in (0..NUM_PARTITIONS).rev() {
            if self.shipped[p] || !side_has_rows(&self.left, p) || !side_has_rows(&self.right, p) {
                continue;
            }
            let left = take_side_rows(&mut self.left, p, &self.memory)?;
            let right = take_side_rows(&mut self.right, p, &self.memory)?;
            self.shipped[p] = true;
            return Ok(Some((p, left, right)));
        }
        Ok(None)
    }

    /// Arity of the joined output rows.
    pub fn output_arity(&self) -> usize {
        self.left.arity + self.op.right_payload.len()
    }

    /// Adds an input batch to one side.
    pub fn add(&mut self, side: JoinSide, batch: &RowBatch) -> Result<()> {
        let spill_dir = self.spill_dir.clone();
        let threshold = self.spill_threshold_bytes;
        let (buffer, tag) = match side {
            JoinSide::Left => (&mut self.left, "l"),
            JoinSide::Right => (&mut self.right, "r"),
        };
        debug_assert_eq!(batch.arity(), buffer.arity);
        for row in batch.rows() {
            let p = (key_hash(row, &buffer.key_positions) as usize) % NUM_PARTITIONS;
            let part = &mut buffer.partitions[p];
            part.rows_in_memory.extend_from_slice(row);
            let bytes = std::mem::size_of_val(row) as u64;
            part.memory_bytes += bytes;
            buffer.buffered_bytes += bytes;
            self.memory.allocate(bytes);
        }
        // Spill the largest partitions while the buffer exceeds the threshold.
        while buffer.buffered_bytes > threshold {
            let victim = buffer
                .partitions
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.memory_bytes)
                .map(|(i, _)| i)
                .expect("partitions exist");
            let part = &mut buffer.partitions[victim];
            if part.rows_in_memory.is_empty() {
                break;
            }
            let bytes = spill_partition(part, &spill_dir, tag, victim, &mut self.spill_counter)?;
            buffer.buffered_bytes -= bytes;
            self.memory.release(bytes);
        }
        Ok(())
    }

    /// Flushes every in-memory partition of both sides to disk — the memory
    /// governor's spill actuator. Rows are appended to the partitions' spill
    /// files and re-loaded lazily when the join is streamed, so results are
    /// unchanged; only the tracked resident bytes drop. Returns the bytes
    /// released.
    pub fn spill_to_disk(&mut self) -> Result<u64> {
        let dir = self.spill_dir.clone();
        let mut total = spill_side(&mut self.left, &dir, "l", &mut self.spill_counter)?;
        total += spill_side(&mut self.right, &dir, "r", &mut self.spill_counter)?;
        self.memory.release(total);
        Ok(total)
    }

    /// Total bytes currently buffered in memory (both sides).
    pub fn buffered_bytes(&self) -> u64 {
        self.left.buffered_bytes + self.right.buffered_bytes
    }

    /// `true` if any partition spilled to disk.
    pub fn spilled(&self) -> bool {
        self.left
            .partitions
            .iter()
            .chain(self.right.partitions.iter())
            .any(|p| p.spill_file.is_some())
    }

    /// Seals both inputs and converts the joiner into a lazily-driven
    /// [`JoinStream`]. Partitions are loaded one at a time as the stream is
    /// polled, so the consumer controls the pace (and the memory).
    pub fn into_stream(mut self, batch_rows: usize) -> JoinStream {
        let op = std::mem::replace(
            &mut self.op,
            JoinOp {
                left: 0,
                right: 0,
                key_left: Vec::new(),
                key_right: Vec::new(),
                right_payload: Vec::new(),
                filters: Vec::new(),
            },
        );
        let left = std::mem::replace(&mut self.left, SideBuffer::new(0, Vec::new()));
        let right = std::mem::replace(&mut self.right, SideBuffer::new(0, Vec::new()));
        let memory = self.memory.clone();
        let out_arity = left.arity + op.right_payload.len();
        let states = self
            .shipped
            .iter()
            .map(|&s| {
                if s {
                    PartitionState::Shipped
                } else {
                    PartitionState::Sealed
                }
            })
            .collect();
        JoinStream {
            op,
            left,
            right,
            memory,
            batch_rows: batch_rows.max(1),
            out_arity,
            partition: 0,
            current: None,
            produced: 0,
            spill_dir: self.spill_dir.clone(),
            spill_counter: self.spill_counter,
            states,
            adopted: std::collections::VecDeque::new(),
            cancel: None,
        }
    }

    /// Finishes the join eagerly: processes every partition and invokes
    /// `emit` with output batches of at most `batch_rows` rows. Returns the
    /// number of joined rows. (A convenience wrapper over
    /// [`HashJoiner::into_stream`].)
    pub fn finish(self, batch_rows: usize, mut emit: impl FnMut(ColBatch)) -> Result<u64> {
        let mut stream = self.into_stream(batch_rows);
        while let Some(batch) = stream.next_batch()? {
            emit(batch);
        }
        Ok(stream.produced())
    }
}

impl Drop for HashJoiner {
    fn drop(&mut self) {
        // Balance the tracker if the joiner is dropped before streaming
        // (spill files are removed by the partitions' own `Drop`).
        self.memory
            .release(self.left.buffered_bytes + self.right.buffered_bytes);
        self.left.buffered_bytes = 0;
        self.right.buffered_bytes = 0;
    }
}

/// Probe state of the one partition currently loaded in memory.
///
/// The right-side table maps each packed join key to a `(start, end)` range
/// of `order` (a CSR layout grouping right-row indices by key), so the probe
/// loop performs no per-row heap allocation — keys pack into a `u128` and
/// candidate lists are slices of one shared index vector. This matters
/// beyond single-probe speed: stolen partitions are probed *concurrently* by
/// several machine threads, and per-row allocation serialises them on the
/// global allocator.
struct PartitionProbe {
    left_rows: Vec<VertexId>,
    right_rows: Vec<VertexId>,
    /// Packed join key -> `(start, end)` range into `order`.
    table: std::collections::HashMap<u128, (u32, u32)>,
    /// Right-row indices grouped by join key (CSR payload for `table`).
    order: Vec<u32>,
    /// Keys wider than [`PACK_MAX_KEY`] columns are FNV-hashed into the
    /// `u128` instead of packed exactly; candidates then re-check key
    /// equality column-by-column during the probe.
    verify_keys: bool,
    /// Index of the left row being probed.
    probe: usize,
    /// Cursor into the current left row's candidate range of `order`.
    match_pos: u32,
    /// End of the current left row's candidate range of `order`.
    match_end: u32,
    /// Bytes of the loaded rows, charged to the tracker while resident.
    loaded_bytes: u64,
    /// Local partition index (`None` for partitions adopted from a peer).
    index: Option<usize>,
}

/// A partition shipped from a peer, queued for probing. Its `bytes` were
/// charged to this machine's tracker on receipt; the stream releases them
/// when the probe completes (or on `Drop`).
struct AdoptedPartition {
    left_rows: Vec<VertexId>,
    right_rows: Vec<VertexId>,
    bytes: u64,
}

/// The sealed join, driven lazily one output batch at a time.
///
/// At any moment at most one Grace partition is resident in memory; spill
/// files are deleted as their partitions are consumed (and by `Drop` if the
/// stream is abandoned early).
pub struct JoinStream {
    op: JoinOp,
    left: SideBuffer,
    right: SideBuffer,
    memory: MemoryTrackerHandle,
    batch_rows: usize,
    out_arity: usize,
    partition: usize,
    current: Option<PartitionProbe>,
    produced: u64,
    spill_dir: PathBuf,
    spill_counter: usize,
    /// Lifecycle of each local Grace partition.
    states: Vec<PartitionState>,
    /// Partitions adopted from peers, probed after the local ones.
    adopted: std::collections::VecDeque<AdoptedPartition>,
    /// The run's cancellation token, polled per output batch so a cancel
    /// lands mid-probe instead of after the whole join drains.
    cancel: Option<crate::cancel::CancelToken>,
}

impl JoinStream {
    /// Arity of the joined output rows.
    pub fn output_arity(&self) -> usize {
        self.out_arity
    }

    /// Joined rows emitted so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// `true` once every local partition and every adopted partition has
    /// been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.current.is_none() && self.partition >= NUM_PARTITIONS && self.adopted.is_empty()
    }

    /// Lifecycle states of the local Grace partitions.
    pub fn partition_states(&self) -> &[PartitionState] {
        &self.states
    }

    /// Ships one sealed-but-unprobed partition, highest index first (the
    /// probe cursor walks upward, so the highest sealed partition is the
    /// farthest from being reached — the same take-from-the-back policy as
    /// `SharedQueue::steal_into`). Partitions empty on either side are
    /// skipped. The rows keep their tracker charge; see
    /// [`HashJoiner::take_unprobed_partition`] for the hand-off discipline.
    pub fn take_unprobed_partition(&mut self) -> Result<Option<TakenPartition>> {
        for p in (self.partition..NUM_PARTITIONS).rev() {
            if self.states[p] != PartitionState::Sealed
                || !side_has_rows(&self.left, p)
                || !side_has_rows(&self.right, p)
            {
                continue;
            }
            let left = take_side_rows(&mut self.left, p, &self.memory)?;
            let right = take_side_rows(&mut self.right, p, &self.memory)?;
            self.states[p] = PartitionState::Shipped;
            return Ok(Some((p, left, right)));
        }
        Ok(None)
    }

    /// Adopts a partition shipped from a peer. The caller has already
    /// charged the partition's bytes to this machine's tracker (on receipt,
    /// before the shipper releases its side — allocate-before-release); the
    /// stream releases the charge when the adopted probe completes.
    pub fn adopt_partition(&mut self, left_rows: Vec<VertexId>, right_rows: Vec<VertexId>) {
        let bytes = ((left_rows.len() + right_rows.len()) * std::mem::size_of::<VertexId>()) as u64;
        self.adopted.push_back(AdoptedPartition {
            left_rows,
            right_rows,
            bytes,
        });
    }

    /// Bytes of not-yet-loaded partitions still resident in memory.
    pub fn buffered_bytes(&self) -> u64 {
        self.left.buffered_bytes + self.right.buffered_bytes
    }

    /// Flushes every not-yet-loaded in-memory partition to disk — the memory
    /// governor's spill actuator on a *sealed* join. The partition currently
    /// being probed stays resident (it is the working set);
    /// [`JoinStream::next_batch`] lazily re-loads spilled partitions exactly
    /// as it loads naturally-spilled ones. Returns the bytes released.
    pub fn spill_to_disk(&mut self) -> Result<u64> {
        let dir = self.spill_dir.clone();
        let mut total = spill_side(&mut self.left, &dir, "l", &mut self.spill_counter)?;
        total += spill_side(&mut self.right, &dir, "r", &mut self.spill_counter)?;
        self.memory.release(total);
        Ok(total)
    }

    /// Installs the run's cancellation token: every
    /// [`JoinStream::next_batch`] call polls it first, so a cancel unwinds
    /// mid-probe (the stream's `Drop` balances charges and spill files).
    pub fn set_cancel(&mut self, cancel: crate::cancel::CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Produces the next output batch (at most `batch_rows` rows), or `None`
    /// when the join is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<ColBatch>> {
        if let Some(cancel) = &self.cancel {
            cancel.check()?;
        }
        loop {
            if self.current.is_none() {
                if self.partition >= NUM_PARTITIONS {
                    // Local partitions done: probe adopted (stolen) ones.
                    // Their bytes were charged on receipt, not here.
                    match self.adopted.pop_front() {
                        Some(a) => {
                            self.current =
                                Some(self.build_probe(a.left_rows, a.right_rows, a.bytes, None));
                        }
                        None => return Ok(None),
                    }
                } else {
                    let p = self.partition;
                    self.partition += 1;
                    if self.states[p] == PartitionState::Shipped {
                        // A thief owns this partition now.
                        continue;
                    }
                    let left_rows = load_partition(&mut self.left, p, &self.memory)?;
                    if left_rows.is_empty() {
                        // Nothing to probe with: unlink the right side's
                        // buffer and spill file without reading it back.
                        discard_partition(&mut self.right, p, &self.memory);
                        self.states[p] = PartitionState::Done;
                        continue;
                    }
                    let right_rows = load_partition(&mut self.right, p, &self.memory)?;
                    if right_rows.is_empty() {
                        self.states[p] = PartitionState::Done;
                        continue;
                    }
                    let loaded_bytes = ((left_rows.len() + right_rows.len())
                        * std::mem::size_of::<VertexId>())
                        as u64;
                    self.memory.allocate(loaded_bytes);
                    self.states[p] = PartitionState::Probing;
                    self.current =
                        Some(self.build_probe(left_rows, right_rows, loaded_bytes, Some(p)));
                }
            }

            let mut out = ColBatch::with_capacity(self.out_arity, self.batch_rows.min(64 * 1024));
            let exhausted = self.fill_from_current(&mut out);
            if exhausted {
                let probe = self.current.take().expect("current probe exists");
                self.memory.release(probe.loaded_bytes);
                if let Some(p) = probe.index {
                    self.states[p] = PartitionState::Done;
                }
            }
            if !out.is_empty() {
                self.produced += out.len() as u64;
                return Ok(Some(out));
            }
            // The partition produced nothing (no key overlap): move on.
        }
    }

    /// Builds the probe state for one partition: a hash table over the
    /// right rows (the build side), probed by the left rows. The left's
    /// columns form the output prefix either way. The table is built in two
    /// counting passes into a CSR layout — no per-key index vectors.
    fn build_probe(
        &self,
        left_rows: Vec<VertexId>,
        right_rows: Vec<VertexId>,
        loaded_bytes: u64,
        index: Option<usize>,
    ) -> PartitionProbe {
        let arity = self.right.arity.max(1);
        let n_rows = right_rows.len() / arity;
        let mut table: std::collections::HashMap<u128, (u32, u32)> =
            std::collections::HashMap::new();
        for row in right_rows.chunks_exact(arity) {
            let key = pack_key(row, &self.op.key_right);
            table.entry(key).or_insert((0, 0)).1 += 1;
        }
        // Turn per-key counts into `order` offsets: each entry becomes
        // (start, cursor); the placement pass advances the cursor to the
        // range's end.
        let mut offset = 0u32;
        for range in table.values_mut() {
            let count = range.1;
            *range = (offset, offset);
            offset += count;
        }
        let mut order = vec![0u32; n_rows];
        for (idx, row) in right_rows.chunks_exact(arity).enumerate() {
            let key = pack_key(row, &self.op.key_right);
            let range = table.get_mut(&key).expect("key counted in first pass");
            order[range.1 as usize] = idx as u32;
            range.1 += 1;
        }
        PartitionProbe {
            left_rows,
            right_rows,
            table,
            order,
            verify_keys: self.op.key_right.len() > PACK_MAX_KEY,
            probe: 0,
            match_pos: 0,
            match_end: 0,
            loaded_bytes,
            index,
        }
    }

    /// Probes the current partition until `out` is full or the partition is
    /// exhausted. Returns `true` when the partition is exhausted.
    fn fill_from_current(&mut self, out: &mut ColBatch) -> bool {
        let probe = self.current.as_mut().expect("current probe exists");
        let left_arity = self.left.arity;
        let right_arity = self.right.arity;
        let left_len = probe.left_rows.len() / left_arity.max(1);
        let mut joined: Vec<VertexId> = Vec::with_capacity(self.out_arity);
        while out.len() < self.batch_rows {
            if probe.match_pos == probe.match_end {
                // Advance to the next left row with candidate matches.
                loop {
                    if probe.probe >= left_len {
                        return true;
                    }
                    let lrow =
                        &probe.left_rows[probe.probe * left_arity..(probe.probe + 1) * left_arity];
                    let key = pack_key(lrow, &self.op.key_left);
                    if let Some(&(start, end)) = probe.table.get(&key) {
                        probe.match_pos = start;
                        probe.match_end = end;
                        break;
                    }
                    probe.probe += 1;
                }
            }
            let lrow = &probe.left_rows[probe.probe * left_arity..(probe.probe + 1) * left_arity];
            while probe.match_pos < probe.match_end && out.len() < self.batch_rows {
                let ridx = probe.order[probe.match_pos as usize] as usize;
                probe.match_pos += 1;
                let rrow = &probe.right_rows[ridx * right_arity..(ridx + 1) * right_arity];
                // Hash-packed (wide) keys can collide: re-check equality.
                if probe.verify_keys {
                    let keys_equal = self
                        .op
                        .key_left
                        .iter()
                        .zip(&self.op.key_right)
                        .all(|(&lpos, &rpos)| lrow[lpos] == rrow[rpos]);
                    if !keys_equal {
                        continue;
                    }
                }
                // Cross-side injectivity: appended payload vertices must not
                // collide with any left-bound vertex.
                let payload_ok = self
                    .op
                    .right_payload
                    .iter()
                    .all(|&pos| !lrow.contains(&rrow[pos]));
                if !payload_ok {
                    continue;
                }
                joined.clear();
                joined.extend_from_slice(lrow);
                for &pos in &self.op.right_payload {
                    joined.push(rrow[pos]);
                }
                if passes_filters(&joined, &self.op.filters) {
                    out.push_row(&joined);
                }
            }
            if probe.match_pos == probe.match_end {
                probe.probe += 1;
            }
        }
        false
    }
}

impl Drop for JoinStream {
    fn drop(&mut self) {
        // Balance the tracker for anything still buffered or loaded (spill
        // files are removed by the partitions' own `Drop`).
        self.memory
            .release(self.left.buffered_bytes + self.right.buffered_bytes);
        self.left.buffered_bytes = 0;
        self.right.buffered_bytes = 0;
        if let Some(probe) = self.current.take() {
            self.memory.release(probe.loaded_bytes);
        }
        for adopted in self.adopted.drain(..) {
            self.memory.release(adopted.bytes);
        }
    }
}

/// Appends one partition's in-memory rows to its spill file (creating the
/// file on first spill). Returns the in-memory bytes flushed; the caller is
/// responsible for adjusting the side's `buffered_bytes` and the memory
/// tracker (so the helper composes with both the threshold spill in
/// [`HashJoiner::add`] and the governor-driven full spills).
fn spill_partition(
    part: &mut SidePartition,
    spill_dir: &Path,
    tag: &str,
    index: usize,
    counter: &mut usize,
) -> Result<u64> {
    if part.rows_in_memory.is_empty() {
        return Ok(0);
    }
    let path = match part.spill_file.clone() {
        Some(path) => path,
        None => {
            *counter += 1;
            let path = spill_dir.join(format!("join-{tag}-{index}-{counter}.spill"));
            part.spill_file = Some(path.clone());
            path
        }
    };
    std::fs::create_dir_all(spill_dir)?;
    let file = OpenOptions::new().create(true).append(true).open(&path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&encode_rows(&part.rows_in_memory))?;
    w.flush()?;
    part.spilled_values += part.rows_in_memory.len() as u64;
    let bytes = part.memory_bytes;
    part.memory_bytes = 0;
    // Drop the allocation too (not just the length): a spill exists to make
    // the resident footprint actually shrink.
    part.rows_in_memory = Vec::new();
    Ok(bytes)
}

/// Spills every in-memory partition of one side, adjusting the side's
/// buffered-byte count. Returns the total bytes flushed (the caller releases
/// them from the memory tracker).
fn spill_side(
    side: &mut SideBuffer,
    spill_dir: &Path,
    tag: &str,
    counter: &mut usize,
) -> Result<u64> {
    let mut total = 0u64;
    for index in 0..side.partitions.len() {
        let bytes = spill_partition(&mut side.partitions[index], spill_dir, tag, index, counter)?;
        side.buffered_bytes -= bytes;
        total += bytes;
    }
    Ok(total)
}

/// Drops one partition of one side without reading it back: releases its
/// in-memory rows and unlinks its spill file (used when the opposite side's
/// partition is empty, so the join cannot produce anything from it).
fn discard_partition(side: &mut SideBuffer, p: usize, memory: &MemoryTrackerHandle) {
    let part = &mut side.partitions[p];
    part.rows_in_memory = Vec::new();
    side.buffered_bytes -= part.memory_bytes;
    memory.release(part.memory_bytes);
    part.memory_bytes = 0;
    if let Some(path) = part.spill_file.take() {
        let _ = std::fs::remove_file(path);
    }
}

/// Loads one partition of one side back into memory (in-memory rows plus any
/// spilled rows); the spill file, if any, is deleted afterwards.
fn load_partition(
    side: &mut SideBuffer,
    p: usize,
    memory: &MemoryTrackerHandle,
) -> Result<Vec<VertexId>> {
    let part = &mut side.partitions[p];
    let mut rows = std::mem::take(&mut part.rows_in_memory);
    side.buffered_bytes -= part.memory_bytes;
    memory.release(part.memory_bytes);
    part.memory_bytes = 0;
    if let Some(path) = part.spill_file.take() {
        rows.extend(decode_rows(&std::fs::read(&path)?));
        let _ = std::fs::remove_file(&path);
    }
    Ok(rows)
}

/// `true` when one partition of one side holds any rows (in memory or
/// spilled) — i.e. shipping it would move real work.
fn side_has_rows(side: &SideBuffer, p: usize) -> bool {
    let part = &side.partitions[p];
    !part.rows_in_memory.is_empty() || part.spill_file.is_some()
}

/// Extracts one partition of one side for shipping, *keeping* its memory
/// charge: in-memory rows stay charged to the tracker (ownership of the
/// charge moves to the shipper's pending-ship ledger) and spilled rows are
/// newly charged as they come back from disk. Combined with the thief
/// charging on receipt before the shipper releases on ack, the cluster-wide
/// tracked sum can transiently over-count but never under-count during a
/// hand-off — the same discipline as `SharedQueue::steal_into`.
fn take_side_rows(
    side: &mut SideBuffer,
    p: usize,
    memory: &MemoryTrackerHandle,
) -> Result<Vec<VertexId>> {
    let part = &mut side.partitions[p];
    let mut rows = std::mem::take(&mut part.rows_in_memory);
    side.buffered_bytes -= part.memory_bytes;
    part.memory_bytes = 0;
    if let Some(path) = part.spill_file.take() {
        let from_disk = decode_rows(&std::fs::read(&path)?);
        memory.allocate((from_disk.len() * std::mem::size_of::<VertexId>()) as u64);
        rows.extend(from_disk);
        let _ = std::fs::remove_file(&path);
        part.spilled_values = 0;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_plan::translate::OrderFilter;

    fn spill_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("huge-join-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    fn simple_op() -> JoinOp {
        // Left schema: [a, b]; right schema: [a, c]; join on column 0 = a,
        // output [a, b, c].
        JoinOp {
            left: 0,
            right: 1,
            key_left: vec![0],
            key_right: vec![0],
            right_payload: vec![1],
            filters: vec![],
        }
    }

    fn batch2(rows: &[[u32; 2]]) -> RowBatch {
        let mut b = RowBatch::new(2);
        for r in rows {
            b.push_row(r);
        }
        b
    }

    #[test]
    fn joins_matching_keys() {
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Untracked,
        );
        joiner
            .add(JoinSide::Left, &batch2(&[[1, 10], [2, 20], [3, 30]]))
            .unwrap();
        joiner
            .add(
                JoinSide::Right,
                &batch2(&[[1, 100], [1, 101], [3, 300], [4, 400]]),
            )
            .unwrap();
        let mut rows: Vec<Vec<u32>> = Vec::new();
        let produced = joiner
            .finish(1024, |b| {
                rows.extend(b.to_rows().rows().map(|r| r.to_vec()))
            })
            .unwrap();
        assert_eq!(produced, 3);
        rows.sort();
        assert_eq!(
            rows,
            vec![vec![1, 10, 100], vec![1, 10, 101], vec![3, 30, 300]]
        );
    }

    #[test]
    fn cross_side_injectivity_is_enforced() {
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Untracked,
        );
        // Right payload value 10 collides with the left's bound vertex 10.
        joiner.add(JoinSide::Left, &batch2(&[[1, 10]])).unwrap();
        joiner
            .add(JoinSide::Right, &batch2(&[[1, 10], [1, 11]]))
            .unwrap();
        let mut count = 0;
        joiner.finish(16, |b| count += b.len()).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn order_filters_apply_to_joined_rows() {
        let mut op = simple_op();
        // Require output[1] < output[2], i.e. b < c.
        op.filters = vec![OrderFilter {
            smaller: 1,
            larger: 2,
        }];
        let mut joiner = HashJoiner::new(
            op,
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Untracked,
        );
        joiner.add(JoinSide::Left, &batch2(&[[1, 50]])).unwrap();
        joiner
            .add(JoinSide::Right, &batch2(&[[1, 10], [1, 90]]))
            .unwrap();
        let mut rows = Vec::new();
        joiner
            .finish(16, |b| rows.extend(b.to_rows().rows().map(|r| r.to_vec())))
            .unwrap();
        assert_eq!(rows, vec![vec![1, 50, 90]]);
    }

    #[test]
    fn spilling_preserves_results() {
        // A tiny threshold forces every partition to spill.
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1024,
            spill_dir(),
            MemoryTrackerHandle::Untracked,
        );
        let n = 2000u32;
        let left: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 10_000]).collect();
        let right: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 20_000]).collect();
        for chunk in left.chunks(100) {
            joiner.add(JoinSide::Left, &batch2(chunk)).unwrap();
        }
        for chunk in right.chunks(100) {
            joiner.add(JoinSide::Right, &batch2(chunk)).unwrap();
        }
        assert!(joiner.spilled());
        assert!(joiner.buffered_bytes() <= 4 * 1024);
        let mut count = 0u64;
        let produced = joiner.finish(256, |b| count += b.len() as u64).unwrap();
        assert_eq!(produced, n as u64);
        assert_eq!(count, n as u64);
    }

    #[test]
    fn multi_column_keys() {
        // Left schema [a, b, x]; right schema [a, b, y]; join on (a, b).
        let op = JoinOp {
            left: 0,
            right: 1,
            key_left: vec![0, 1],
            key_right: vec![0, 1],
            right_payload: vec![2],
            filters: vec![],
        };
        let mut joiner = HashJoiner::new(
            op,
            3,
            3,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Untracked,
        );
        let mut l = RowBatch::new(3);
        l.push_row(&[1, 2, 7]);
        l.push_row(&[1, 3, 8]);
        let mut r = RowBatch::new(3);
        r.push_row(&[1, 2, 9]);
        r.push_row(&[2, 2, 9]);
        joiner.add(JoinSide::Left, &l).unwrap();
        joiner.add(JoinSide::Right, &r).unwrap();
        let mut rows = Vec::new();
        joiner
            .finish(16, |b| rows.extend(b.to_rows().rows().map(|x| x.to_vec())))
            .unwrap();
        assert_eq!(rows, vec![vec![1, 2, 7, 9]]);
    }

    #[test]
    fn governor_spill_hook_preserves_results_and_releases_memory() {
        let tracker = std::sync::Arc::new(MemoryTracker::new());
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Tracked(std::sync::Arc::clone(&tracker)),
        );
        let n = 500u32;
        let left: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 10_000]).collect();
        let right: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 20_000]).collect();
        joiner.add(JoinSide::Left, &batch2(&left)).unwrap();
        joiner.add(JoinSide::Right, &batch2(&right)).unwrap();
        assert!(tracker.current() > 0);
        // Force everything to disk (the buffer is far below the threshold,
        // so nothing spilled naturally).
        let spilled = joiner.spill_to_disk().unwrap();
        assert_eq!(spilled, u64::from(n) * 2 * 2 * 4);
        assert_eq!(joiner.buffered_bytes(), 0);
        assert_eq!(tracker.current(), 0);
        assert!(joiner.spilled());
        // A second spill is a no-op.
        assert_eq!(joiner.spill_to_disk().unwrap(), 0);
        // The spilled rows are lazily re-loaded and joined as usual.
        let mut count = 0u64;
        let produced = joiner.finish(128, |b| count += b.len() as u64).unwrap();
        assert_eq!(produced, u64::from(n));
        assert_eq!(count, u64::from(n));
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn sealed_stream_spill_hook_preserves_results() {
        let tracker = std::sync::Arc::new(MemoryTracker::new());
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Tracked(std::sync::Arc::clone(&tracker)),
        );
        let n = 400u32;
        let left: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 10_000]).collect();
        let right: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 20_000]).collect();
        joiner.add(JoinSide::Left, &batch2(&left)).unwrap();
        joiner.add(JoinSide::Right, &batch2(&right)).unwrap();
        let mut stream = joiner.into_stream(64);
        // Consume one batch so one partition is resident, then spill the
        // sealed remainder mid-stream.
        let first = stream.next_batch().unwrap().unwrap();
        assert!(!first.is_empty());
        let before = stream.buffered_bytes();
        assert!(before > 0);
        let spilled = stream.spill_to_disk().unwrap();
        assert!(spilled > 0);
        assert_eq!(stream.buffered_bytes(), 0);
        let mut count = first.len() as u64;
        while let Some(batch) = stream.next_batch().unwrap() {
            count += batch.len() as u64;
        }
        assert_eq!(count, u64::from(n));
        drop(stream);
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn spill_ship_reload_round_trip_is_bit_for_bit() {
        // The same partition taken from a fully-spilled joiner and from an
        // all-in-memory joiner must encode to identical bytes: the ship
        // encoding *is* the spill encoding.
        let n = 600u32;
        let left: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 10_000]).collect();
        let right: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 20_000]).collect();
        let build = |threshold: u64| {
            let mut joiner = HashJoiner::new(
                simple_op(),
                2,
                2,
                threshold,
                spill_dir(),
                MemoryTrackerHandle::Untracked,
            );
            joiner.add(JoinSide::Left, &batch2(&left)).unwrap();
            joiner.add(JoinSide::Right, &batch2(&right)).unwrap();
            joiner
        };
        let mut spilled = build(1024);
        spilled.spill_to_disk().unwrap();
        assert!(spilled.spilled());
        let mut resident = build(1 << 20);
        assert!(!resident.spilled());
        let (p_spilled, l_spilled, r_spilled) = spilled
            .take_unprobed_partition()
            .unwrap()
            .expect("spilled joiner has a shippable partition");
        let (p_resident, l_resident, r_resident) = resident
            .take_unprobed_partition()
            .unwrap()
            .expect("resident joiner has a shippable partition");
        assert_eq!(p_spilled, p_resident);
        assert_eq!(encode_rows(&l_spilled), encode_rows(&l_resident));
        assert_eq!(encode_rows(&r_spilled), encode_rows(&r_resident));
        // And the encoding round-trips exactly.
        assert_eq!(decode_rows(&encode_rows(&l_spilled)), l_spilled);
        assert_eq!(decode_rows(&encode_rows(&r_spilled)), r_spilled);
    }

    #[test]
    fn shipped_partitions_join_to_the_same_rows_elsewhere() {
        // Splitting a join between a shipper stream and an adopter stream
        // produces exactly the rows of the unsplit join, and the memory
        // charge that travels with the shipped partitions balances out.
        let n = 800u32;
        let left: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 10_000]).collect();
        let right: Vec<[u32; 2]> = (0..n).map(|i| [i, i + 20_000]).collect();
        let tracker = std::sync::Arc::new(MemoryTracker::new());
        let build = |tracked: bool| {
            let mut joiner = HashJoiner::new(
                simple_op(),
                2,
                2,
                1 << 20,
                spill_dir(),
                if tracked {
                    MemoryTrackerHandle::Tracked(std::sync::Arc::clone(&tracker))
                } else {
                    MemoryTrackerHandle::Untracked
                },
            );
            joiner.add(JoinSide::Left, &batch2(&left)).unwrap();
            joiner.add(JoinSide::Right, &batch2(&right)).unwrap();
            joiner
        };
        let mut reference_rows: Vec<Vec<u32>> = Vec::new();
        build(false)
            .finish(128, |b| {
                reference_rows.extend(b.to_rows().rows().map(|r| r.to_vec()))
            })
            .unwrap();

        let mut shipper = build(true).into_stream(128);
        // An "adopter" on the same tracker: an empty build of the same op.
        let adopter_joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Tracked(std::sync::Arc::clone(&tracker)),
        );
        let mut adopter = adopter_joiner.into_stream(128);
        let mut shipped = 0;
        while let Some((p, l, r)) = shipper.take_unprobed_partition().unwrap() {
            assert_eq!(shipper.partition_states()[p], PartitionState::Shipped);
            // Ship through the wire encoding, as the router does.
            let (wire_l, wire_r) = (encode_rows(&l), encode_rows(&r));
            adopter.adopt_partition(decode_rows(&wire_l), decode_rows(&wire_r));
            shipped += 1;
            if shipped == 2 {
                break;
            }
        }
        assert_eq!(shipped, 2);
        let mut split_rows: Vec<Vec<u32>> = Vec::new();
        for stream in [&mut shipper, &mut adopter] {
            while let Some(b) = stream.next_batch().unwrap() {
                split_rows.extend(b.to_rows().rows().map(|r| r.to_vec()));
            }
            assert!(stream.is_exhausted());
        }
        reference_rows.sort();
        split_rows.sort();
        assert_eq!(split_rows, reference_rows);
        drop(shipper);
        drop(adopter);
        // Charges transferred with the partitions and were released by the
        // adopter's probes: the shared tracker balances to zero.
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn memory_tracking_is_released_after_finish() {
        let tracker = std::sync::Arc::new(MemoryTracker::new());
        let mut joiner = HashJoiner::new(
            simple_op(),
            2,
            2,
            1 << 20,
            spill_dir(),
            MemoryTrackerHandle::Tracked(std::sync::Arc::clone(&tracker)),
        );
        joiner
            .add(JoinSide::Left, &batch2(&[[1, 2], [3, 4]]))
            .unwrap();
        joiner.add(JoinSide::Right, &batch2(&[[1, 5]])).unwrap();
        assert!(tracker.current() > 0);
        joiner.finish(16, |_| {}).unwrap();
        assert_eq!(tracker.current(), 0);
        assert!(tracker.peak() > 0);
    }
}
