//! Memory accounting for intermediate results.
//!
//! The paper's Theorem 5.4 bounds the memory a HUGE machine needs for
//! intermediate results to `O(|V_q|² · D_G)`. To make that bound observable
//! (Exp-7 reports memory versus output-queue size), every structure that
//! holds partial results — operator output queues, the pending-input pools,
//! `PUSH-JOIN` buffers — registers its allocations with a per-machine
//! [`MemoryTracker`]; the run report exposes the peak across machines, which
//! is the paper's `M` column.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Tracks current and peak bytes of intermediate results on one machine.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicI64,
    peak: AtomicU64,
}

impl MemoryTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn allocate(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        let now = now.max(0) as u64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a release of `bytes`, saturating at zero.
    ///
    /// Releasing more than is currently held is an accounting bug in the
    /// caller: it used to silently drive `current` negative, which distorted
    /// every later peak (allocations had to climb back through the deficit
    /// before the high-water mark moved). Now the deficit is corrected at
    /// release time and flagged with a `debug_assert!`.
    pub fn release(&self, bytes: u64) {
        // A CAS loop (rather than fetch_sub + compensating fetch_add) keeps
        // the saturation atomic: two racing over-releases must not both
        // "correct" the same deficit and leave `current` inflated.
        let mut prev = self.current.load(Ordering::Relaxed);
        loop {
            let after = prev - bytes as i64;
            debug_assert!(
                after >= 0,
                "MemoryTracker::release({bytes}) underflows current ({prev}): over-release"
            );
            match self.current.compare_exchange_weak(
                prev,
                after.max(0),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => prev = observed,
            }
        }
    }

    /// Current bytes held.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed).max(0) as u64
    }

    /// Peak bytes held since creation.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Router inboxes charge their queued bytes to the owning machine's tracker,
/// so shuffle data in flight counts towards the paper's `M` column.
impl huge_comm::QueueAccounting for MemoryTracker {
    fn allocate(&self, bytes: u64) {
        MemoryTracker::allocate(self, bytes);
    }
    fn release(&self, bytes: u64) {
        MemoryTracker::release(self, bytes);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = MemoryTracker::new();
        t.allocate(100);
        t.allocate(200);
        t.release(250);
        t.allocate(10);
        assert_eq!(t.current(), 60);
        assert_eq!(t.peak(), 300);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_below_zero_saturates_and_keeps_peaks_honest() {
        let t = MemoryTracker::new();
        t.allocate(10);
        t.release(100);
        assert_eq!(t.current(), 0);
        // An over-release must not distort later peaks: the next allocation
        // starts from zero, not from a hidden negative baseline.
        t.allocate(20);
        assert_eq!(t.current(), 20);
        assert_eq!(t.peak(), 20);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-release")]
    fn over_release_is_detected_in_debug() {
        let t = MemoryTracker::new();
        t.allocate(10);
        t.release(100);
    }

    #[test]
    fn concurrent_updates_do_not_lose_peak() {
        let t = Arc::new(MemoryTracker::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.allocate(10);
                        t.release(10);
                    }
                });
            }
        });
        assert!(t.peak() >= 10);
        assert_eq!(t.current(), 0);
    }
}
