//! Memory accounting for intermediate results.
//!
//! The paper's Theorem 5.4 bounds the memory a HUGE machine needs for
//! intermediate results to `O(|V_q|² · D_G)`. To make that bound observable
//! (Exp-7 reports memory versus output-queue size), every structure that
//! holds partial results — operator output queues, the pending-input pools,
//! `PUSH-JOIN` buffers — registers its allocations with a per-machine
//! [`MemoryTracker`]; the run report exposes the peak across machines, which
//! is the paper's `M` column.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Tracks current and peak bytes of intermediate results on one machine.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicI64,
    peak: AtomicU64,
}

impl MemoryTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn allocate(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        let now = now.max(0) as u64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a release of `bytes`.
    pub fn release(&self, bytes: u64) {
        self.current.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Current bytes held.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed).max(0) as u64
    }

    /// Peak bytes held since creation.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Router inboxes charge their queued bytes to the owning machine's tracker,
/// so shuffle data in flight counts towards the paper's `M` column.
impl huge_comm::QueueAccounting for MemoryTracker {
    fn allocate(&self, bytes: u64) {
        MemoryTracker::allocate(self, bytes);
    }
    fn release(&self, bytes: u64) {
        MemoryTracker::release(self, bytes);
    }
}

/// Shared handles to every machine's tracker.
#[derive(Clone, Debug)]
pub struct ClusterMemory {
    machines: Arc<Vec<MemoryTracker>>,
}

impl ClusterMemory {
    /// Creates trackers for `k` machines.
    pub fn new(k: usize) -> Self {
        ClusterMemory {
            machines: Arc::new((0..k).map(|_| MemoryTracker::new()).collect()),
        }
    }

    /// The tracker of machine `m`.
    pub fn machine(&self, m: usize) -> &MemoryTracker {
        &self.machines[m]
    }

    /// Peak bytes over all machines (the paper's `M`).
    pub fn peak(&self) -> u64 {
        self.machines.iter().map(|t| t.peak()).max().unwrap_or(0)
    }

    /// Per-machine peaks.
    pub fn peaks(&self) -> Vec<u64> {
        self.machines.iter().map(|t| t.peak()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = MemoryTracker::new();
        t.allocate(100);
        t.allocate(200);
        t.release(250);
        t.allocate(10);
        assert_eq!(t.current(), 60);
        assert_eq!(t.peak(), 300);
    }

    #[test]
    fn release_below_zero_saturates() {
        let t = MemoryTracker::new();
        t.allocate(10);
        t.release(100);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn cluster_peak_is_max_over_machines() {
        let c = ClusterMemory::new(3);
        c.machine(0).allocate(100);
        c.machine(1).allocate(500);
        c.machine(1).release(400);
        c.machine(2).allocate(50);
        assert_eq!(c.peak(), 500);
        assert_eq!(c.peaks(), vec![100, 500, 50]);
    }

    #[test]
    fn concurrent_updates_do_not_lose_peak() {
        let c = ClusterMemory::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.machine(0).allocate(10);
                        c.machine(0).release(10);
                    }
                });
            }
        });
        assert!(c.peak() >= 10);
        assert_eq!(c.machine(0).current(), 0);
    }
}
