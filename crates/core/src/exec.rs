//! The shared batch-operator substrate.
//!
//! Every engine in this workspace — the HUGE engine itself *and* the
//! baseline systems in `huge-baselines` — executes physical operators over
//! columnar [`ColBatch`]es through this module (row-major [`RowBatch`]es
//! remain the wire format of the shuffle paths):
//!
//! * [`OpContext`] bundles what any operator needs from the machine it runs
//!   on: the graph partition, the pulling fabric, the adjacency cache, the
//!   worker pool and the batch size.
//! * [`BatchOperator`] is the uniform operator interface: inputs are pushed
//!   in as batches, outputs are polled out as batches ([`OpPoll`]).
//! * [`ScanSource`], [`PullExtend`] and [`PushJoin`] are the HUGE operators
//!   (`SCAN`, `PULL-EXTEND`, `PUSH-JOIN`) behind that interface. The
//!   baselines add their own sources (e.g. star scans) in their crate but
//!   reuse [`PushJoin`] and the routing utilities below.
//! * [`partition_by_key`] hash-partitions a batch over machines; callers
//!   move the resulting per-destination batches through the accounted
//!   `huge-comm` fabric (`RouterEndpoint::push` / `RpcFabric::get_nbrs`), so
//!   every engine's traffic is charged to [`huge_comm::ClusterStats`] by the
//!   same code path and the reported `C`/`T_C` columns are comparable.
//! * [`run_pipeline`] is a simple breadth-first driver (poll a stage to
//!   exhaustion, feed the next) used by the BFS-style baselines and by
//!   tests; the HUGE engine drives the same operators with its own
//!   BFS/DFS-adaptive scheduler in [`crate::machine`].

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use huge_cache::PullCache;
use huge_comm::{ColBatch, MachineId, RowBatch, RpcFabric};
use huge_graph::GraphPartition;
use huge_plan::translate::{ExtendOp, JoinOp, ScanOp};

use crate::join::{key_hash, HashJoiner, JoinSide, JoinStream, MemoryTrackerHandle};
use crate::operators::{run_extend_cols, run_extend_count_cols, ScanCursor, ScanPool};
use crate::pool::WorkerPool;
use crate::{EngineError, Result};

/// Everything an operator needs from its machine.
pub struct OpContext<'a> {
    /// The machine executing the operator.
    pub machine: MachineId,
    /// The machine's graph partition.
    pub partition: &'a GraphPartition,
    /// The pulling fabric (accounted `GetNbrs`).
    pub rpc: &'a RpcFabric,
    /// The machine's adjacency cache.
    pub cache: &'a dyn PullCache,
    /// `false` disables the cache (every remote list is fetched per batch).
    pub use_cache: bool,
    /// The machine's worker pool.
    pub pool: &'a WorkerPool,
    /// Rows per output batch.
    pub batch_size: usize,
}

/// The result of polling a [`BatchOperator`] for output.
#[derive(Debug)]
pub enum OpPoll {
    /// A batch of output rows was produced.
    Ready(ColBatch),
    /// No output is available now, but more input may still arrive.
    Pending,
    /// The operator has produced everything it ever will.
    Exhausted,
}

/// The uniform physical-operator interface: push input batches in, poll
/// output batches out.
///
/// Sources ignore `push_input`; unary operators take input through it;
/// binary operators (joins) expose side-specific feeds as inherent methods
/// and use [`BatchOperator::finish_input`] to seal both sides.
pub trait BatchOperator {
    /// Operator name for diagnostics.
    fn name(&self) -> &'static str;

    /// Arity of the output rows.
    fn output_arity(&self) -> usize;

    /// Feeds one input batch. The default rejects input (source operators).
    fn push_input(&mut self, input: ColBatch, ctx: &OpContext<'_>) -> Result<()> {
        let _ = (input, ctx);
        Err(EngineError::Config(format!(
            "{} is a source operator and takes no input",
            self.name()
        )))
    }

    /// Signals that no further input will arrive.
    fn finish_input(&mut self, ctx: &OpContext<'_>) -> Result<()> {
        let _ = ctx;
        Ok(())
    }

    /// Polls for the next output batch.
    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll>;
}

// ---------------------------------------------------------------------------
// SCAN
// ---------------------------------------------------------------------------

/// The `SCAN` source behind the [`BatchOperator`] interface.
///
/// Wraps a [`ScanCursor`] over a (stealable) [`ScanPool`]; each poll yields
/// one batch of `[src, dst]` edge rows.
pub struct ScanSource {
    cursor: ScanCursor,
}

impl ScanSource {
    /// Creates a scan over a pool of vertices.
    pub fn new(op: ScanOp, pool: ScanPool) -> Self {
        ScanSource {
            cursor: ScanCursor::new(op, pool),
        }
    }

    /// `true` while the scan may still produce batches (own or stolen work).
    pub fn has_more(&self) -> bool {
        self.cursor.has_more()
    }
}

impl BatchOperator for ScanSource {
    fn name(&self) -> &'static str {
        "SCAN"
    }

    fn output_arity(&self) -> usize {
        2
    }

    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll> {
        match self.cursor.next_batch(ctx) {
            Some(batch) => {
                // The cursor assembles rows; transpose once into the columnar
                // operator currency and charge the column bytes.
                let cols = ColBatch::from_rows(&batch);
                ctx.rpc
                    .stats()
                    .machine(ctx.machine)
                    .record_col_bytes(cols.byte_size());
                Ok(OpPoll::Ready(cols))
            }
            // The pool may be refilled by work stealing, so an empty pool is
            // only `Exhausted` from the caller's termination protocol.
            None => Ok(OpPoll::Exhausted),
        }
    }
}

// ---------------------------------------------------------------------------
// PULL-EXTEND
// ---------------------------------------------------------------------------

/// The `PULL-EXTEND` operator behind the [`BatchOperator`] interface.
///
/// Each queued input batch runs the two-stage fetch/intersect extension
/// (Algorithm 4); fetch time and per-worker busy time accumulate and can be
/// drained with [`PullExtend::take_timings`].
///
/// In *count-only* mode ([`PullExtend::set_count_only`]) the operator never
/// materialises its output rows: it counts the extensions each input batch
/// would produce (accumulated in [`PullExtend::take_count`]) and emits no
/// batches — the fast path for count sinks on chain/path queries, whose
/// final extension column dominates the materialised volume.
pub struct PullExtend {
    op: ExtendOp,
    inputs: VecDeque<ColBatch>,
    input_done: bool,
    out_arity: usize,
    count_only: bool,
    counted: u64,
    fetch_time: Duration,
    worker_busy: Vec<Duration>,
}

impl PullExtend {
    /// Creates the operator.
    pub fn new(op: ExtendOp) -> Self {
        PullExtend {
            op,
            inputs: VecDeque::new(),
            input_done: false,
            out_arity: 0,
            count_only: false,
            counted: 0,
            fetch_time: Duration::ZERO,
            worker_busy: Vec::new(),
        }
    }

    /// The translated operator this executes.
    pub fn op(&self) -> &ExtendOp {
        &self.op
    }

    /// Switches the operator to count-only mode: inputs are counted, not
    /// materialised, and polling never yields output batches.
    pub fn set_count_only(&mut self, count_only: bool) {
        self.count_only = count_only;
    }

    /// Drains the extensions counted in count-only mode.
    pub fn take_count(&mut self) -> u64 {
        std::mem::take(&mut self.counted)
    }

    /// Drains the accumulated (fetch time, per-worker busy time) counters.
    pub fn take_timings(&mut self) -> (Duration, Vec<Duration>) {
        (
            std::mem::take(&mut self.fetch_time),
            std::mem::take(&mut self.worker_busy),
        )
    }

    fn absorb_timings(&mut self, fetch: Duration, busy: &[Duration]) {
        self.fetch_time += fetch;
        if self.worker_busy.len() < busy.len() {
            self.worker_busy.resize(busy.len(), Duration::ZERO);
        }
        for (w, d) in busy.iter().enumerate() {
            self.worker_busy[w] += *d;
        }
    }
}

impl BatchOperator for PullExtend {
    fn name(&self) -> &'static str {
        "PULL-EXTEND"
    }

    fn output_arity(&self) -> usize {
        // Known once the first input batch fixes the input arity.
        self.out_arity
    }

    fn push_input(&mut self, input: ColBatch, _ctx: &OpContext<'_>) -> Result<()> {
        self.out_arity = if self.op.verify_position.is_some() {
            input.arity()
        } else {
            input.arity() + 1
        };
        self.inputs.push_back(input);
        Ok(())
    }

    fn finish_input(&mut self, _ctx: &OpContext<'_>) -> Result<()> {
        self.input_done = true;
        Ok(())
    }

    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll> {
        let Some(input) = self.inputs.pop_front() else {
            return Ok(if self.input_done {
                OpPoll::Exhausted
            } else {
                OpPoll::Pending
            });
        };
        if self.count_only {
            let out = run_extend_count_cols(&self.op, &input, ctx);
            self.counted += out.count;
            self.absorb_timings(out.fetch_time, &out.worker_busy);
            return Ok(if self.input_done && self.inputs.is_empty() {
                OpPoll::Exhausted
            } else {
                OpPoll::Pending
            });
        }
        let out = run_extend_cols(&self.op, input, ctx);
        self.absorb_timings(out.fetch_time, &out.worker_busy);
        Ok(OpPoll::Ready(out.batch))
    }
}

// ---------------------------------------------------------------------------
// PUSH-JOIN
// ---------------------------------------------------------------------------

/// The `PUSH-JOIN` operator behind the [`BatchOperator`] interface.
///
/// A binary operator: feed each side with [`PushJoin::push_side`], then seal
/// with [`BatchOperator::finish_input`] and poll. Sealing converts the
/// buffered joiner into a lazily-driven [`JoinStream`], so *polling* drives
/// the Grace partitions one at a time — memory is bounded by one partition
/// plus one output batch on every consumption path.
pub struct PushJoin {
    joiner: Option<HashJoiner>,
    stream: Option<JoinStream>,
    out_arity: usize,
    batch_rows: usize,
    produced: u64,
    cancel: Option<crate::cancel::CancelToken>,
}

impl PushJoin {
    /// Creates the join over the given producer arities.
    pub fn new(
        op: JoinOp,
        left_arity: usize,
        right_arity: usize,
        spill_threshold_bytes: u64,
        spill_dir: PathBuf,
        memory: MemoryTrackerHandle,
        batch_rows: usize,
    ) -> Self {
        let joiner = HashJoiner::new(
            op,
            left_arity,
            right_arity,
            spill_threshold_bytes,
            spill_dir,
            memory,
        );
        let out_arity = joiner.output_arity();
        PushJoin {
            joiner: Some(joiner),
            stream: None,
            out_arity,
            batch_rows: batch_rows.max(1),
            produced: 0,
            cancel: None,
        }
    }

    /// Threads the run's cancellation token into the join so probing
    /// ([`JoinStream::next_batch`]) polls it at batch granularity.
    pub fn set_cancel(&mut self, cancel: crate::cancel::CancelToken) {
        if let Some(stream) = self.stream.as_mut() {
            stream.set_cancel(cancel.clone());
        }
        self.cancel = Some(cancel);
    }

    /// Feeds one input batch to one side of the join.
    pub fn push_side(&mut self, side: JoinSide, batch: &RowBatch) -> Result<()> {
        match self.joiner.as_mut() {
            Some(j) => j.add(side, batch),
            None => Err(EngineError::Config(
                "PUSH-JOIN received input after finishing".into(),
            )),
        }
    }

    /// Joined rows emitted so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// `true` while the join may still produce output (inputs not sealed, or
    /// the sealed stream has partitions left).
    pub fn has_more(&self) -> bool {
        self.joiner.is_some() || self.stream.as_ref().is_some_and(|s| !s.is_exhausted())
    }

    /// Bytes currently buffered in memory (whichever phase the join is in).
    pub fn buffered_bytes(&self) -> u64 {
        match (&self.joiner, &self.stream) {
            (Some(j), _) => j.buffered_bytes(),
            (_, Some(s)) => s.buffered_bytes(),
            _ => 0,
        }
    }

    /// Flushes the join's in-memory Grace partitions to disk (the memory
    /// governor's spill actuator), whether the join is still building or
    /// already sealed into a stream. Returns the bytes released.
    pub fn spill_to_disk(&mut self) -> Result<u64> {
        match (&mut self.joiner, &mut self.stream) {
            (Some(j), _) => j.spill_to_disk(),
            (_, Some(s)) => s.spill_to_disk(),
            _ => Ok(0),
        }
    }

    /// Extracts one sealed-but-unprobed Grace partition for shipping to a
    /// peer (partition stealing), whichever phase the join is in. Returns
    /// the partition index and both sides' rows, which keep their memory
    /// charge until the thief acks adoption. `None` when nothing is
    /// shippable. Only sound once no further input can arrive for this join.
    pub fn take_unprobed_partition(&mut self) -> Result<Option<crate::join::TakenPartition>> {
        match (&mut self.joiner, &mut self.stream) {
            (Some(j), _) => j.take_unprobed_partition(),
            (_, Some(s)) => s.take_unprobed_partition(),
            _ => Ok(None),
        }
    }

    /// Adopts a partition shipped from a peer into the sealed stream. The
    /// caller must have charged the rows' bytes to this machine's tracker
    /// already (on receipt); the stream releases them after the probe.
    /// Returns `false` (rows untouched, caller keeps the charge) when the
    /// join is not in a phase that can adopt — exhausted streams still can.
    pub fn adopt_partition(
        &mut self,
        left_rows: Vec<huge_graph::VertexId>,
        right_rows: Vec<huge_graph::VertexId>,
    ) -> bool {
        match self.stream.as_mut() {
            Some(s) => {
                s.adopt_partition(left_rows, right_rows);
                true
            }
            None => false,
        }
    }
}

impl BatchOperator for PushJoin {
    fn name(&self) -> &'static str {
        "PUSH-JOIN"
    }

    fn output_arity(&self) -> usize {
        self.out_arity
    }

    fn push_input(&mut self, _input: ColBatch, _ctx: &OpContext<'_>) -> Result<()> {
        Err(EngineError::Config(
            "PUSH-JOIN is a binary operator: feed it through push_side(JoinSide, ..)".into(),
        ))
    }

    fn finish_input(&mut self, _ctx: &OpContext<'_>) -> Result<()> {
        if let Some(joiner) = self.joiner.take() {
            // Sealing is cheap: partitions stay buffered/spilled until the
            // stream is polled.
            let mut stream = joiner.into_stream(self.batch_rows);
            if let Some(cancel) = &self.cancel {
                stream.set_cancel(cancel.clone());
            }
            self.stream = Some(stream);
        }
        Ok(())
    }

    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll> {
        if let Some(stream) = self.stream.as_mut() {
            match stream.next_batch()? {
                Some(batch) => {
                    self.produced += batch.len() as u64;
                    ctx.rpc
                        .stats()
                        .machine(ctx.machine)
                        .record_col_bytes(batch.byte_size());
                    return Ok(OpPoll::Ready(batch));
                }
                None => {
                    // Keep the exhausted stream alive: a partition adopted
                    // from a peer (partition stealing) revives it.
                    return Ok(OpPoll::Exhausted);
                }
            }
        }
        Ok(if self.joiner.is_some() {
            OpPoll::Pending
        } else {
            OpPoll::Exhausted
        })
    }
}

// ---------------------------------------------------------------------------
// Routing utilities
// ---------------------------------------------------------------------------

/// Hash-partitions the rows of `batch` over `k` machines by the given key
/// columns.
///
/// This is the single partitioning function behind every shuffle in the
/// workspace (the HUGE `PUSH-JOIN` feed and the baselines' distributed hash
/// joins); the caller moves the per-destination batches through
/// `RouterEndpoint::push`, which is where the traffic gets charged.
pub fn partition_by_key(batch: &RowBatch, key_positions: &[usize], k: usize) -> Vec<RowBatch> {
    let mut out: Vec<RowBatch> = (0..k).map(|_| RowBatch::new(batch.arity())).collect();
    for row in batch.rows() {
        let dest = (key_hash(row, key_positions) as usize) % k;
        out[dest].push_row(row);
    }
    out
}

/// Hash-partitions the logical rows of a columnar batch over `k` machines by
/// the given key columns, producing the row-major *wire* batches the shuffle
/// paths push through `RouterEndpoint`.
///
/// The gather through the selection vector happens here, exactly once per
/// surviving row, so upstream verify filters never force a compaction.
pub fn partition_cols_by_key(batch: &ColBatch, key_positions: &[usize], k: usize) -> Vec<RowBatch> {
    let mut out: Vec<RowBatch> = (0..k).map(|_| RowBatch::new(batch.arity())).collect();
    let mut row = Vec::with_capacity(batch.arity());
    for i in 0..batch.len() {
        row.clear();
        batch.read_row(i, &mut row);
        let dest = (key_hash(&row, key_positions) as usize) % k;
        out[dest].push_row(&row);
    }
    out
}

/// Partitions the rows of `batch` over `k` machines by the *owner* of the
/// vertex in `column` (used by pushing wco extensions, which route partial
/// results to the owners of the vertices being intersected).
pub fn partition_by_owner(
    batch: &RowBatch,
    column: usize,
    rpc: &RpcFabric,
    k: usize,
) -> Vec<RowBatch> {
    let mut out: Vec<RowBatch> = (0..k).map(|_| RowBatch::new(batch.arity())).collect();
    for row in batch.rows() {
        let dest = rpc.owner(row[column]);
        out[dest].push_row(row);
    }
    out
}

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

/// Drives a chain of operators breadth-first: stage `i` is polled to
/// exhaustion and its batches fed to stage `i + 1`; the final stage's
/// batches go to `sink`.
///
/// This is the materialise-everything execution model of the baseline
/// systems (and of tests). The HUGE engine schedules the same operators
/// adaptively with bounded queues instead (see [`crate::machine`]).
pub fn run_pipeline(
    ops: &mut [&mut dyn BatchOperator],
    ctx: &OpContext<'_>,
    sink: &mut dyn FnMut(ColBatch),
) -> Result<()> {
    let n = ops.len();
    for i in 0..n {
        if i > 0 {
            ops[i].finish_input(ctx)?;
        }
        while let OpPoll::Ready(batch) = ops[i].poll_next(ctx)? {
            if batch.is_empty() {
                continue;
            }
            if i + 1 < n {
                let (_, downstream) = ops.split_at_mut(i + 1);
                downstream[0].push_input(batch, ctx)?;
            } else {
                sink(batch);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_cache::LrbuCache;
    use huge_comm::stats::ClusterStats;
    use huge_graph::{gen, Partitioner};
    use huge_plan::physical::CommMode;
    use huge_plan::translate::OrderFilter;
    use std::sync::Arc;

    fn setup(k: usize) -> (Vec<GraphPartition>, RpcFabric) {
        let g = gen::complete(8);
        let parts = Partitioner::new(k).unwrap().partition(g);
        let stats = ClusterStats::new(k);
        let fabric = RpcFabric::new(Arc::new(parts.clone()), stats);
        (parts, fabric)
    }

    #[test]
    fn scan_extend_pipeline_counts_triangles_on_k8() {
        let (parts, rpc) = setup(2);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let mut total = 0u64;
        for (m, partition) in parts.iter().enumerate() {
            let cache = LrbuCache::new(1 << 20);
            let ctx = OpContext {
                machine: m,
                partition,
                rpc: &rpc,
                cache: &cache,
                use_cache: true,
                pool: &pool,
                batch_size: 64,
            };
            let mut scan = ScanSource::new(
                ScanOp {
                    src: 0,
                    dst: 1,
                    filters: vec![OrderFilter {
                        smaller: 0,
                        larger: 1,
                    }],
                },
                ScanPool::new(partition.local_vertices(), 4),
            );
            let mut extend = PullExtend::new(ExtendOp {
                target: 2,
                ext_positions: vec![0, 1],
                verify_position: None,
                filters: vec![OrderFilter {
                    smaller: 1,
                    larger: 2,
                }],
                comm: CommMode::Pulling,
            });
            let mut ops: [&mut dyn BatchOperator; 2] = [&mut scan, &mut extend];
            run_pipeline(&mut ops, &ctx, &mut |b| total += b.len() as u64).unwrap();
        }
        // K8 has C(8,3) = 56 triangles.
        assert_eq!(total, 56);
    }

    #[test]
    fn push_join_trait_path_buffers_outputs() {
        let (parts, rpc) = setup(1);
        let cache = LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let ctx = OpContext {
            machine: 0,
            partition: &parts[0],
            rpc: &rpc,
            cache: &cache,
            use_cache: true,
            pool: &pool,
            batch_size: 16,
        };
        let op = JoinOp {
            left: 0,
            right: 1,
            key_left: vec![0],
            key_right: vec![0],
            right_payload: vec![1],
            filters: vec![],
        };
        let dir = std::env::temp_dir().join(format!("huge-exec-test-{}", std::process::id()));
        let mut join = PushJoin::new(op, 2, 2, 1 << 20, dir, MemoryTrackerHandle::Untracked, 16);
        let mut left = RowBatch::new(2);
        left.push_row(&[1, 10]);
        left.push_row(&[2, 20]);
        let mut right = RowBatch::new(2);
        right.push_row(&[1, 100]);
        join.push_side(JoinSide::Left, &left).unwrap();
        join.push_side(JoinSide::Right, &right).unwrap();
        join.finish_input(&ctx).unwrap();
        let mut rows = Vec::new();
        while let OpPoll::Ready(b) = join.poll_next(&ctx).unwrap() {
            let rb = b.to_rows();
            rows.extend(rb.rows().map(|r| r.to_vec()));
        }
        assert_eq!(rows, vec![vec![1, 10, 100]]);
        assert_eq!(join.produced(), 1);
        assert!(matches!(join.poll_next(&ctx).unwrap(), OpPoll::Exhausted));
    }

    #[test]
    fn partition_by_key_is_total_and_deterministic() {
        let batch = RowBatch::from_flat(2, (0..40).collect());
        let parts = partition_by_key(&batch, &[0], 4);
        let total: usize = parts.iter().map(|b| b.len()).sum();
        assert_eq!(total, batch.len());
        let again = partition_by_key(&batch, &[0], 4);
        for (a, b) in parts.iter().zip(&again) {
            assert_eq!(a.as_flat(), b.as_flat());
        }
    }

    #[test]
    fn partition_by_owner_routes_to_owners() {
        let (parts, rpc) = setup(3);
        let mut batch = RowBatch::new(1);
        for v in 0..8u32 {
            batch.push_row(&[v]);
        }
        let routed = partition_by_owner(&batch, 0, &rpc, 3);
        for (m, b) in routed.iter().enumerate() {
            for row in b.rows() {
                assert_eq!(rpc.owner(row[0]), m);
            }
        }
        let _ = parts;
    }
}
