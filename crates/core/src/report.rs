//! Run reports: the measurements every experiment consumes.

use std::time::Duration;

use huge_cache::CacheStats;
use huge_comm::stats::CommSnapshot;
use huge_trace::TraceSummary;

/// Per-machine measurements.
#[derive(Clone, Debug, Default)]
pub struct MachineReport {
    /// Machine id.
    pub machine: usize,
    /// Matches counted by this machine's sink.
    pub matches: u64,
    /// Wall-clock computation time of the machine thread.
    pub compute_time: Duration,
    /// Busy time of each worker on this machine (used for the Exp-8 load
    /// balance standard deviation).
    pub worker_busy: Vec<Duration>,
    /// Peak intermediate-result memory on this machine.
    pub peak_memory_bytes: u64,
    /// Traffic counters of this machine.
    pub comm: CommSnapshot,
    /// Number of batches this machine stole from other machines.
    pub batches_stolen: u64,
    /// Active execution time per segment on this machine (indexed by
    /// segment id).
    pub segment_busy: Vec<Duration>,
    /// First-activity and completion offsets of each segment relative to the
    /// run's start (`None` when the machine never reached the segment, e.g.
    /// on an aborted run). Under barriered execution no segment's start can
    /// precede another segment's end on any machine; under the pipelined
    /// scheduler the spans of different segments overlap.
    pub segment_spans: Vec<Option<(Duration, Duration)>>,
    /// What this machine's joins did under skew (partition stealing and
    /// speculative sealing).
    pub join: JoinReport,
}

/// What the skew-handling join machinery did during a run: cross-machine
/// Grace partition stealing (ship/ack protocol over the router's control
/// plane) and speculative sealing (per-source EOS envelopes letting a
/// consumer start probing before the segment counters report readiness).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinReport {
    /// Sealed partitions this machine shipped to thieves.
    pub partitions_shipped: u64,
    /// Partitions this machine adopted from victims and probed locally.
    pub partitions_stolen: u64,
    /// Row payload bytes that crossed the wire in `PartitionShip` envelopes.
    pub shipped_bytes: u64,
    /// Join segments this machine started on EOS evidence before the
    /// dependency counters reported ready.
    pub speculative_seals: u64,
    /// Largest lead a speculative seal gained over counter readiness.
    pub seal_lead: Duration,
}

impl JoinReport {
    /// Folds another machine's join counters into this one (sums the
    /// counters, keeps the largest seal lead).
    pub fn merge(&mut self, other: &JoinReport) {
        self.partitions_shipped += other.partitions_shipped;
        self.partitions_stolen += other.partitions_stolen;
        self.shipped_bytes += other.shipped_bytes;
        self.speculative_seals += other.speculative_seals;
        self.seal_lead = self.seal_lead.max(other.seal_lead);
    }
}

/// What the memory governor did during a governed run (present only when
/// [`ClusterConfig::memory_budget`](crate::config::ClusterConfig) was set).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GovernorReport {
    /// The configured global budget in bytes.
    pub budget_bytes: u64,
    /// The per-machine share the governor enforced.
    pub machine_budget_bytes: u64,
    /// Transitions into Yellow pressure, summed over machines.
    pub transitions_to_yellow: u64,
    /// Transitions into Red pressure, summed over machines.
    pub transitions_to_red: u64,
    /// Batches deferred by governed backpressure (shrunken queue or inbox
    /// capacities observed while under pressure).
    pub throttled_batches: u64,
    /// `PUSH-JOIN` buffer bytes flushed to disk by the spill actuator.
    pub spilled_bytes: u64,
    /// Sealed Grace partition bytes shipped to thieves while governed (the
    /// victim's charge is held until the thief's ack, so shipping moves
    /// pressure rather than hiding it).
    pub shipped_bytes: u64,
    /// The run's peak tracked bytes (max over machines) — the number the
    /// budget is judged against.
    pub peak_bytes: u64,
}

impl GovernorReport {
    /// Total pressure transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions_to_yellow + self.transitions_to_red
    }

    /// `true` when the observed peak exceeded the per-machine budget (the
    /// governor allows bounded overshoot: one batch per flow-control point,
    /// the paper's overflow-by-at-most-one-batch slack).
    pub fn over_budget(&self) -> bool {
        self.peak_bytes > self.machine_budget_bytes
    }

    /// Headroom left under the per-machine budget (negative = overshoot).
    pub fn headroom_bytes(&self) -> i64 {
        self.machine_budget_bytes as i64 - self.peak_bytes as i64
    }
}

/// How a run ended. [`RunOutcome::Completed`] is the only outcome whose
/// `matches` is the query's answer; the early-exit outcomes ride inside the
/// matching [`EngineError`](crate::EngineError) variant and carry whatever
/// partial stats the machines had accumulated when they unwound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run finished normally.
    #[default]
    Completed,
    /// The run was cancelled through its
    /// [`CancelToken`](crate::cancel::CancelToken).
    Cancelled,
    /// The run outlived
    /// [`ClusterConfig::deadline`](crate::config::ClusterConfig).
    DeadlineExceeded,
}

/// The result of running one query on the cluster.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Name of the query (if any).
    pub query: String,
    /// Total number of matches (summed over machines).
    pub matches: u64,
    /// A sample of complete matches when the sink was configured to collect.
    pub sample_matches: Vec<Vec<u32>>,
    /// Wall-clock time of the parallel run (the paper's computation time
    /// `T_R`; the simulation transfers no real network bytes, so wall clock
    /// is computation).
    pub compute_time: Duration,
    /// Modelled communication time `T_C` derived from the recorded traffic
    /// and the configured network model.
    pub comm_time: Duration,
    /// Total bytes that crossed the simulated network (the paper's `C`).
    pub comm_bytes: u64,
    /// Aggregated traffic counters.
    pub comm: CommSnapshot,
    /// Peak intermediate-result memory over all machines (the paper's `M`).
    pub peak_memory_bytes: u64,
    /// Aggregated cache statistics over all machines.
    pub cache: CacheStats,
    /// Time spent in the fetch stage of `PULL-EXTEND` (the `t_f` reported in
    /// Table 5 to bound the two-stage synchronisation overhead).
    pub fetch_time: Duration,
    /// `true` when segments executed without barriers (the per-machine
    /// dataflow scheduler); `false` under the barriered escape hatch.
    pub pipelined: bool,
    /// Machine threads spawned for this run: `k` when pipelined, `k ×
    /// segments` under barriers — the regression handle for "machine threads
    /// are spawned once per run".
    pub machine_threads_spawned: usize,
    /// What the memory governor did (`None` for ungoverned runs).
    pub governor: Option<GovernorReport>,
    /// Aggregated skew-handling join counters (sums over machines; the seal
    /// lead is the max).
    pub join: JoinReport,
    /// Per-machine breakdowns.
    pub machines: Vec<MachineReport>,
    /// How the run ended ([`RunOutcome::Completed`] unless the report rides
    /// inside a `Cancelled`/`DeadlineExceeded` error).
    pub outcome: RunOutcome,
    /// Tracked intermediate-result bytes still allocated after the
    /// teardown sweep (queues drained, inboxes drained, joins dropped).
    /// Non-zero means an accounting leak — the chaos harness asserts zero.
    pub leaked_bytes: u64,
    /// Spill files left under the run's spill directory after teardown,
    /// counted just before the directory is removed. Non-zero means a
    /// `Drop` path missed a file — the chaos harness asserts zero.
    pub orphaned_spill_files: u64,
    /// Flight-recorder summary: span/instant counts, exact ring-overflow
    /// drops, the per-segment busy/wait breakdown, and (in full-span mode)
    /// the Chrome trace-event JSON export. `None` unless the run was
    /// configured with [`TraceMode::Full`](huge_trace::TraceMode).
    pub trace: Option<TraceSummary>,
    /// Prometheus-text snapshot of the run's metrics registry. `None` when
    /// tracing is off entirely.
    pub metrics: Option<String>,
}

impl RunReport {
    /// The paper's total time `T = T_R + T_C`.
    pub fn total_time(&self) -> Duration {
        self.compute_time + self.comm_time
    }

    /// Standard deviation of per-worker busy time in seconds (Exp-8's load
    /// balance metric).
    pub fn worker_time_stddev(&self) -> f64 {
        let times: Vec<f64> = self
            .machines
            .iter()
            .flat_map(|m| m.worker_busy.iter().map(|d| d.as_secs_f64()))
            .collect();
        if times.len() < 2 {
            return 0.0;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
        var.sqrt()
    }

    /// Aggregated CPU time across all workers (the paper's `T_total` used to
    /// bound work-stealing overhead in Exp-8).
    pub fn total_worker_time(&self) -> Duration {
        self.machines
            .iter()
            .flat_map(|m| m.worker_busy.iter())
            .sum()
    }

    /// A lower bound on the wall-clock a *barriered* execution of the same
    /// per-machine work would need: the sum over segments of the slowest
    /// machine's busy time on that segment (under barriers every machine
    /// must clear a segment before any machine may start the next).
    pub fn barrier_bound(&self) -> Duration {
        let segments = self
            .machines
            .iter()
            .map(|m| m.segment_busy.len())
            .max()
            .unwrap_or(0);
        (0..segments)
            .map(|s| {
                self.machines
                    .iter()
                    .map(|m| m.segment_busy.get(s).copied().unwrap_or_default())
                    .max()
                    .unwrap_or_default()
            })
            .sum()
    }

    /// Wall-clock the pipelined scheduler saved versus the barriered lower
    /// bound (zero for single-segment plans or barriered runs).
    pub fn overlap_saved(&self) -> Duration {
        self.barrier_bound().saturating_sub(self.compute_time)
    }

    /// Throughput in matches per second of total time (Exp-3, Table 4).
    pub fn throughput(&self) -> f64 {
        let t = self.total_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.matches as f64 / t
        }
    }

    /// A one-line summary used by the experiment harness.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} matches={:<14} T={:>9.3}s  T_R={:>9.3}s  T_C={:>9.3}s  C={:>10} bytes  M={:>10} bytes",
            self.query,
            self.matches,
            self.total_time().as_secs_f64(),
            self.compute_time.as_secs_f64(),
            self.comm_time.as_secs_f64(),
            self.comm_bytes,
            self.peak_memory_bytes
        )
    }
}

/// Merges cache statistics from several machines.
pub(crate) fn merge_cache_stats(stats: impl IntoIterator<Item = CacheStats>) -> CacheStats {
    stats
        .into_iter()
        .fold(CacheStats::default(), |a, b| CacheStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
            inserts: a.inserts + b.inserts,
            evictions: a.evictions + b.evictions,
            overflow_inserts: a.overflow_inserts + b.overflow_inserts,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_and_throughput() {
        let report = RunReport {
            matches: 1000,
            compute_time: Duration::from_secs(2),
            comm_time: Duration::from_secs(3),
            ..Default::default()
        };
        assert_eq!(report.total_time(), Duration::from_secs(5));
        assert!((report.throughput() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_balanced_workers_is_zero() {
        let report = RunReport {
            machines: vec![MachineReport {
                worker_busy: vec![Duration::from_secs(1); 4],
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(report.worker_time_stddev() < 1e-12);
    }

    #[test]
    fn stddev_detects_skew() {
        let report = RunReport {
            machines: vec![MachineReport {
                worker_busy: vec![
                    Duration::from_secs(0),
                    Duration::from_secs(0),
                    Duration::from_secs(0),
                    Duration::from_secs(8),
                ],
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(report.worker_time_stddev() > 3.0);
        assert_eq!(report.total_worker_time(), Duration::from_secs(8));
    }

    #[test]
    fn barrier_bound_sums_per_segment_maxima() {
        let report = RunReport {
            compute_time: Duration::from_secs(4),
            machines: vec![
                MachineReport {
                    segment_busy: vec![Duration::from_secs(3), Duration::from_secs(1)],
                    ..Default::default()
                },
                MachineReport {
                    segment_busy: vec![Duration::from_secs(1), Duration::from_secs(2)],
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        // Barriered: max(3, 1) + max(1, 2) = 5s; the 4s pipelined wall clock
        // saved 1s of barrier idle time.
        assert_eq!(report.barrier_bound(), Duration::from_secs(5));
        assert_eq!(report.overlap_saved(), Duration::from_secs(1));
    }

    #[test]
    fn governor_report_budget_accounting() {
        let report = GovernorReport {
            budget_bytes: 4_000,
            machine_budget_bytes: 1_000,
            transitions_to_yellow: 3,
            transitions_to_red: 2,
            throttled_batches: 10,
            spilled_bytes: 512,
            shipped_bytes: 256,
            peak_bytes: 900,
        };
        assert_eq!(report.transitions(), 5);
        assert!(!report.over_budget());
        assert_eq!(report.headroom_bytes(), 100);
        let over = GovernorReport {
            peak_bytes: 1_200,
            ..report
        };
        assert!(over.over_budget());
        assert_eq!(over.headroom_bytes(), -200);
    }

    #[test]
    fn join_report_merge_sums_counters_and_keeps_max_lead() {
        let mut total = JoinReport {
            partitions_shipped: 1,
            partitions_stolen: 0,
            shipped_bytes: 100,
            speculative_seals: 1,
            seal_lead: Duration::from_millis(3),
        };
        total.merge(&JoinReport {
            partitions_shipped: 0,
            partitions_stolen: 2,
            shipped_bytes: 50,
            speculative_seals: 1,
            seal_lead: Duration::from_millis(8),
        });
        assert_eq!(total.partitions_shipped, 1);
        assert_eq!(total.partitions_stolen, 2);
        assert_eq!(total.shipped_bytes, 150);
        assert_eq!(total.speculative_seals, 2);
        assert_eq!(total.seal_lead, Duration::from_millis(8));
    }

    #[test]
    fn merge_cache_stats_adds_fields() {
        let merged = merge_cache_stats([
            CacheStats {
                hits: 1,
                misses: 2,
                inserts: 3,
                evictions: 4,
                overflow_inserts: 5,
            },
            CacheStats {
                hits: 10,
                misses: 20,
                inserts: 30,
                evictions: 40,
                overflow_inserts: 50,
            },
        ]);
        assert_eq!(merged.hits, 11);
        assert_eq!(merged.overflow_inserts, 55);
    }

    #[test]
    fn summary_contains_key_fields() {
        let report = RunReport {
            query: "q1".into(),
            matches: 7,
            ..Default::default()
        };
        let s = report.summary();
        assert!(s.contains("q1"));
        assert!(s.contains("matches=7"));
    }
}
