//! The memory governor: a bounded-memory adaptive scheduling subsystem.
//!
//! The paper's Exp-7 measures the time/memory trade-off *offline* by
//! sweeping the static output-queue capacity. This module turns that
//! experiment into an *online controller*: every run with
//! [`ClusterConfig::memory_budget`](crate::config::ClusterConfig) set gets a
//! per-run [`MemoryGovernor`] that watches each machine's
//! [`MemoryTracker`] (which already accounts operator queues, router
//! inboxes and `PUSH-JOIN` buffers) and enforces the per-machine byte
//! budget through a **pressure ladder** with hysteresis:
//!
//! * **Green** — below the budget with headroom: the configured capacities
//!   apply untouched.
//! * **Yellow** — approaching the budget: the effective capacities of the
//!   operator output queues ([`SharedQueue`](crate::scheduler::SharedQueue))
//!   and the router's per-destination inboxes shrink to an eighth of their
//!   configured values (floored at one full batch, so Yellow is a no-op for
//!   capacities already below 8× the batch size — Red is the rung that
//!   collapses those), so producers observe backpressure early and the
//!   BFS/DFS-adaptive scheduler (Algorithm 5) leans towards DFS.
//! * **Red** — at the budget: queue capacities collapse to a single row
//!   (strict DFS: every operator drains downstream after each batch), the
//!   scan batch size is capped, inboxes hold one batch, and the machine
//!   flushes its `PUSH-JOIN` Grace partitions to disk
//!   ([`PushJoin::spill_to_disk`](crate::exec::PushJoin::spill_to_disk)).
//!
//! Hysteresis (separate enter/exit thresholds) keeps the ladder from
//! flapping around a threshold. The governor is **passive**: machines call
//! [`MemoryGovernor::tick`] from their scheduling loops, so control
//! decisions are deterministic per machine and need no extra thread. All
//! actuators only *tighten or relax existing flow-control paths*
//! (`is_full`, `try_push`/`wait_space`, the spill threshold), so a governed
//! run can throttle but never deadlock — the same overflow-by-one-batch and
//! cooperative-drain arguments as the ungoverned runtime apply.
//!
//! Everything the governor did is surfaced in
//! [`RunReport::governor`](crate::report::RunReport): pressure transitions,
//! throttled batches, spilled bytes, and peak-versus-budget.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use huge_comm::RouterEndpoint;
use huge_trace::{Counter, Registry};

use crate::config::ClusterConfig;
use crate::memory::MemoryTracker;
use crate::report::GovernorReport;

/// Capacity divisor applied under Yellow pressure.
const YELLOW_SHRINK: usize = 8;
/// Scan-batch divisor applied under Red pressure.
const RED_BATCH_SHRINK: usize = 8;
/// Floor for the Red scan-batch cap (rows).
const RED_BATCH_FLOOR: usize = 64;

/// Where a machine stands on the pressure ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Comfortably below the budget; configured capacities apply.
    Green,
    /// Approaching the budget; capacities shrink, scheduling leans DFS.
    Yellow,
    /// At the budget; strict DFS, minimal capacities, joins spill to disk.
    Red,
}

impl PressureLevel {
    fn from_u8(v: u8) -> Self {
        match v {
            2 => PressureLevel::Red,
            1 => PressureLevel::Yellow,
            _ => PressureLevel::Green,
        }
    }
}

/// Per-machine controller state.
struct MachineControl {
    tracker: Arc<MemoryTracker>,
    level: AtomicU8,
    /// Effective row capacity shared by every `SharedQueue` of this machine.
    queue_capacity: Arc<AtomicUsize>,
    throttled_batches: AtomicU64,
    spilled_bytes: AtomicU64,
    shipped_bytes: AtomicU64,
}

/// The per-run bounded-memory controller. One instance is shared by every
/// machine of a run; see the [module docs](self) for the control loop.
pub struct MemoryGovernor {
    machines: Vec<MachineControl>,
    /// The enforced per-machine budget (`None` disables the governor).
    machine_budget: Option<u64>,
    /// The configured global budget (reporting only).
    global_budget: Option<u64>,
    output_queue_rows: usize,
    router_queue_rows: usize,
    batch_size: usize,
    /// Ladder thresholds as budget fractions, from
    /// [`ClusterConfig::governor_thresholds`](crate::config::ClusterConfig::governor_thresholds):
    /// `(enter_yellow, exit_yellow, enter_red, exit_red)`.
    enter_yellow: f64,
    exit_yellow: f64,
    enter_red: f64,
    exit_red: f64,
    router: RouterEndpoint,
    /// Ladder transitions, sourced from the run's flight-recorder registry
    /// (one clock, one collection path — these also feed the Prometheus
    /// snapshot and [`GovernorReport`]). Cluster-wide totals.
    transitions_yellow: Arc<Counter>,
    transitions_red: Arc<Counter>,
}

impl MemoryGovernor {
    /// Builds the governor for one run over the machines' trackers. The
    /// router endpoint (any machine's) is the handle through which inbox
    /// capacities are adjusted; `registry` is the run's flight-recorder
    /// metrics registry, on which the ladder-transition counters live.
    pub fn new(
        config: &ClusterConfig,
        trackers: &[Arc<MemoryTracker>],
        router: RouterEndpoint,
        registry: &Registry,
    ) -> Arc<Self> {
        let output_queue_rows = config.output_queue_rows.max(1);
        let machines = trackers
            .iter()
            .map(|tracker| MachineControl {
                tracker: Arc::clone(tracker),
                level: AtomicU8::new(0),
                queue_capacity: Arc::new(AtomicUsize::new(output_queue_rows)),
                throttled_batches: AtomicU64::new(0),
                spilled_bytes: AtomicU64::new(0),
                shipped_bytes: AtomicU64::new(0),
            })
            .collect();
        Arc::new(MemoryGovernor {
            machines,
            machine_budget: config.machine_memory_budget(),
            global_budget: config.memory_budget,
            output_queue_rows,
            router_queue_rows: config.router_queue_rows.max(1),
            batch_size: config.batch_size.max(1),
            enter_yellow: config.governor_enter_yellow,
            exit_yellow: config.governor_exit_yellow,
            enter_red: config.governor_enter_red,
            exit_red: config.governor_exit_red,
            router,
            transitions_yellow: registry.counter(
                "huge_governor_transitions_yellow_total",
                "Pressure-ladder transitions into Yellow, cluster-wide",
            ),
            transitions_red: registry.counter(
                "huge_governor_transitions_red_total",
                "Pressure-ladder transitions into Red, cluster-wide",
            ),
        })
    }

    /// `true` when a budget is configured (otherwise every hook is a no-op
    /// and the level is pinned to Green).
    pub fn enabled(&self) -> bool {
        self.machine_budget.is_some()
    }

    /// The enforced per-machine budget, if any.
    pub fn machine_budget(&self) -> Option<u64> {
        self.machine_budget
    }

    /// The capacity handle every `SharedQueue` of machine `m` should read
    /// its effective capacity from.
    pub fn queue_capacity_handle(&self, m: usize) -> Arc<AtomicUsize> {
        Arc::clone(&self.machines[m].queue_capacity)
    }

    /// Machine `m`'s current pressure level.
    pub fn level(&self, m: usize) -> PressureLevel {
        PressureLevel::from_u8(self.machines[m].level.load(Ordering::Relaxed))
    }

    /// `true` while machine `m` is under (any) pressure — the gate for the
    /// throttled-batch accounting.
    pub fn is_throttling(&self, m: usize) -> bool {
        self.level(m) != PressureLevel::Green
    }

    /// Re-evaluates machine `m`'s pressure from its tracker and applies the
    /// capacity actuators on a transition. Called by machine `m`'s own
    /// thread from its scheduling loops (cheap: one atomic read and a
    /// comparison on the non-transition path). Returns the current level so
    /// the caller can fire the machine-local actuators (join spills, strict
    /// segment choice).
    pub fn tick(&self, m: usize) -> PressureLevel {
        let Some(budget) = self.machine_budget else {
            return PressureLevel::Green;
        };
        let ctl = &self.machines[m];
        let current = ctl.tracker.current() as f64;
        let budget = budget as f64;
        let old = PressureLevel::from_u8(ctl.level.load(Ordering::Relaxed));
        let new = match old {
            PressureLevel::Green => {
                if current >= budget * self.enter_red {
                    PressureLevel::Red
                } else if current >= budget * self.enter_yellow {
                    PressureLevel::Yellow
                } else {
                    PressureLevel::Green
                }
            }
            PressureLevel::Yellow => {
                if current >= budget * self.enter_red {
                    PressureLevel::Red
                } else if current < budget * self.exit_yellow {
                    PressureLevel::Green
                } else {
                    PressureLevel::Yellow
                }
            }
            PressureLevel::Red => {
                if current < budget * self.exit_yellow {
                    PressureLevel::Green
                } else if current < budget * self.exit_red {
                    PressureLevel::Yellow
                } else {
                    PressureLevel::Red
                }
            }
        };
        if new != old {
            ctl.level.store(new as u8, Ordering::Relaxed);
            match new {
                PressureLevel::Yellow => self.transitions_yellow.inc(),
                PressureLevel::Red => self.transitions_red.inc(),
                PressureLevel::Green => {}
            }
            self.apply_capacities(m, new);
        }
        new
    }

    /// Sets the effective queue and inbox capacities of machine `m` for a
    /// pressure level.
    fn apply_capacities(&self, m: usize, level: PressureLevel) {
        let (queue_rows, inbox_rows) = match level {
            PressureLevel::Green => (self.output_queue_rows, self.router_queue_rows),
            PressureLevel::Yellow => (
                shrink(self.output_queue_rows, YELLOW_SHRINK, self.batch_size),
                shrink(self.router_queue_rows, YELLOW_SHRINK, self.batch_size),
            ),
            // Strict DFS: a one-row queue is "full" after any push, so every
            // operator hands each batch straight downstream; the inbox holds
            // one batch in flight.
            PressureLevel::Red => (1, self.batch_size.min(self.router_queue_rows)),
        };
        self.machines[m]
            .queue_capacity
            .store(queue_rows.max(1), Ordering::Relaxed);
        self.router.set_inbox_capacity(m, inbox_rows.max(1));
    }

    /// The scan batch size machine `m` should use: the configured size,
    /// capped under Red pressure so a single source poll cannot blow the
    /// budget.
    pub fn effective_batch_size(&self, m: usize, configured: usize) -> usize {
        if self.level(m) == PressureLevel::Red {
            (configured / RED_BATCH_SHRINK)
                .max(RED_BATCH_FLOOR)
                .min(configured.max(1))
        } else {
            configured
        }
    }

    /// Records one batch deferred by governed backpressure on machine `m`.
    pub fn record_throttled(&self, m: usize) {
        self.machines[m]
            .throttled_batches
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` of join buffers machine `m` spilled under pressure.
    pub fn record_spill(&self, m: usize, bytes: u64) {
        self.machines[m]
            .spilled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of sealed Grace partitions machine `m` shipped to a
    /// thief (partition stealing); the victim's accounting keeps the charge
    /// until the thief's `ShipAck` arrives, at which point this counter is
    /// bumped and the bytes are released.
    pub fn record_shipped(&self, m: usize, bytes: u64) {
        self.machines[m]
            .shipped_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Summarises the run for [`RunReport`](crate::report::RunReport):
    /// `None` when no budget was configured. `peak_bytes` is the run's
    /// observed peak (max over machines), compared against the per-machine
    /// budget.
    pub fn report(&self, peak_bytes: u64) -> Option<GovernorReport> {
        let machine_budget = self.machine_budget?;
        let sum = |f: fn(&MachineControl) -> &AtomicU64| -> u64 {
            self.machines
                .iter()
                .map(|c| f(c).load(Ordering::Relaxed))
                .sum()
        };
        Some(GovernorReport {
            budget_bytes: self
                .global_budget
                .unwrap_or(machine_budget * self.machines.len() as u64),
            machine_budget_bytes: machine_budget,
            transitions_to_yellow: self.transitions_yellow.get(),
            transitions_to_red: self.transitions_red.get(),
            throttled_batches: sum(|c| &c.throttled_batches),
            spilled_bytes: sum(|c| &c.spilled_bytes),
            shipped_bytes: sum(|c| &c.shipped_bytes),
            peak_bytes,
        })
    }
}

/// `configured / divisor`, floored at one batch and capped at the
/// configured value.
fn shrink(configured: usize, divisor: usize, batch: usize) -> usize {
    (configured / divisor).max(batch).min(configured).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_comm::stats::ClusterStats;
    use huge_comm::Router;

    fn setup(config: &ClusterConfig) -> (Arc<MemoryGovernor>, Vec<Arc<MemoryTracker>>, Router) {
        let k = config.machines;
        let stats = ClusterStats::new(k);
        let router = Router::with_capacity(k, stats, config.router_queue_rows);
        let trackers: Vec<Arc<MemoryTracker>> =
            (0..k).map(|_| Arc::new(MemoryTracker::new())).collect();
        let registry = Registry::new();
        let governor = MemoryGovernor::new(config, &trackers, router.endpoint(0), &registry);
        (governor, trackers, router)
    }

    #[test]
    fn disabled_governor_is_a_no_op() {
        let config = ClusterConfig::new(2)
            .output_queue_rows(1000)
            .router_queue_rows(1000);
        let (gov, trackers, router) = setup(&config);
        assert!(!gov.enabled());
        trackers[0].allocate(1 << 40);
        assert_eq!(gov.tick(0), PressureLevel::Green);
        assert_eq!(gov.level(0), PressureLevel::Green);
        assert_eq!(gov.queue_capacity_handle(0).load(Ordering::Relaxed), 1000);
        assert_eq!(router.endpoint(0).inbox_capacity(0), 1000);
        assert_eq!(gov.effective_batch_size(0, 512), 512);
        assert!(gov.report(123).is_none());
        trackers[0].release(1 << 40);
    }

    #[test]
    fn ladder_climbs_and_descends_with_hysteresis() {
        let config = ClusterConfig::new(1)
            .batch_size(16)
            .output_queue_rows(8_000)
            .router_queue_rows(8_000)
            .memory_budget(1_000);
        let (gov, trackers, router) = setup(&config);
        assert!(gov.enabled());
        assert_eq!(gov.machine_budget(), Some(1_000));
        let t = &trackers[0];
        let ep = router.endpoint(0);

        // Green until 60% of the budget.
        t.allocate(590);
        assert_eq!(gov.tick(0), PressureLevel::Green);
        // Yellow at 60%: capacities shrink to an eighth.
        t.allocate(20);
        assert_eq!(gov.tick(0), PressureLevel::Yellow);
        assert_eq!(gov.queue_capacity_handle(0).load(Ordering::Relaxed), 1_000);
        assert_eq!(ep.inbox_capacity(0), 1_000);
        // Hysteresis: dipping just below the enter threshold stays Yellow.
        t.release(100);
        assert_eq!(gov.tick(0), PressureLevel::Yellow);
        // Red at 85%: strict DFS (one-row queues, one-batch inbox).
        t.allocate(400);
        assert_eq!(gov.tick(0), PressureLevel::Red);
        assert_eq!(gov.queue_capacity_handle(0).load(Ordering::Relaxed), 1);
        assert_eq!(ep.inbox_capacity(0), 16);
        assert_eq!(gov.effective_batch_size(0, 1024), 128);
        assert_eq!(gov.effective_batch_size(0, 100), 64);
        // Leaving Red needs < 70%.
        t.release(150);
        assert_eq!(gov.tick(0), PressureLevel::Red);
        t.release(110);
        assert_eq!(gov.tick(0), PressureLevel::Yellow);
        // Leaving Yellow needs < 45%; then everything is restored.
        t.release(210);
        assert_eq!(gov.tick(0), PressureLevel::Green);
        assert_eq!(gov.queue_capacity_handle(0).load(Ordering::Relaxed), 8_000);
        assert_eq!(ep.inbox_capacity(0), 8_000);

        let report = gov.report(900).unwrap();
        assert_eq!(report.budget_bytes, 1_000);
        assert_eq!(report.machine_budget_bytes, 1_000);
        assert_eq!(report.transitions_to_yellow, 2);
        assert_eq!(report.transitions_to_red, 1);
        assert!(!report.over_budget());
    }

    #[test]
    fn counters_aggregate_across_machines() {
        let config = ClusterConfig::new(2).memory_budget(1_000);
        let (gov, _trackers, _router) = setup(&config);
        gov.record_throttled(0);
        gov.record_throttled(1);
        gov.record_throttled(1);
        gov.record_spill(0, 100);
        gov.record_spill(1, 11);
        gov.record_shipped(0, 40);
        gov.record_shipped(1, 2);
        let report = gov.report(2_000).unwrap();
        assert_eq!(report.machine_budget_bytes, 500);
        assert_eq!(report.throttled_batches, 3);
        assert_eq!(report.spilled_bytes, 111);
        assert_eq!(report.shipped_bytes, 42);
        assert!(report.over_budget());
    }

    #[test]
    fn ladder_thresholds_come_from_the_config() {
        // A much earlier ladder: Yellow at 20%, Red at 50%.
        let config = ClusterConfig::new(1)
            .batch_size(16)
            .output_queue_rows(8_000)
            .router_queue_rows(8_000)
            .governor_thresholds(0.20, 0.10, 0.50, 0.30)
            .memory_budget(1_000);
        config.validate().unwrap();
        let (gov, trackers, _router) = setup(&config);
        let t = &trackers[0];
        t.allocate(190);
        assert_eq!(gov.tick(0), PressureLevel::Green);
        t.allocate(10);
        assert_eq!(gov.tick(0), PressureLevel::Yellow);
        t.allocate(300);
        assert_eq!(gov.tick(0), PressureLevel::Red);
        // Hysteresis bands follow the configured exits, not the defaults.
        t.release(150);
        assert_eq!(gov.tick(0), PressureLevel::Red);
        t.release(60);
        assert_eq!(gov.tick(0), PressureLevel::Yellow);
        t.release(200);
        assert_eq!(gov.tick(0), PressureLevel::Green);
    }
}
