//! Operator implementations: `SCAN` and `PULL-EXTEND`.
//!
//! (`PUSH-JOIN` lives in [`crate::join`]; the `SINK` is part of the segment
//! terminal in [`crate::machine`].)

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use huge_comm::RowBatch;
use huge_graph::VertexId;
use huge_plan::translate::{ExtendOp, OrderFilter, ScanOp};
use parking_lot::Mutex;

pub use crate::exec::OpContext;

/// Applies the symmetry-breaking filters of an operator to a row.
#[inline]
pub fn passes_filters(row: &[VertexId], filters: &[OrderFilter]) -> bool {
    filters.iter().all(|f| row[f.smaller] < row[f.larger])
}

// ---------------------------------------------------------------------------
// SCAN
// ---------------------------------------------------------------------------

/// The stealable pool of unscanned vertices of one machine.
///
/// The machine's own scan cursor pops chunks from the front; idle machines
/// steal chunks from the back (the inter-machine half of work stealing).
#[derive(Clone)]
pub struct ScanPool {
    chunks: Arc<Mutex<std::collections::VecDeque<Vec<VertexId>>>>,
}

impl ScanPool {
    /// Splits a vertex list into chunks of `chunk_size` and builds the pool.
    pub fn new(vertices: &[VertexId], chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        let chunks = vertices
            .chunks(chunk_size)
            .map(|c| c.to_vec())
            .collect::<std::collections::VecDeque<_>>();
        ScanPool {
            chunks: Arc::new(Mutex::new(chunks)),
        }
    }

    /// An empty pool (used for non-scan segments).
    pub fn empty() -> Self {
        ScanPool {
            chunks: Arc::new(Mutex::new(std::collections::VecDeque::new())),
        }
    }

    /// Pops the next chunk for the owning machine.
    pub fn pop(&self) -> Option<Vec<VertexId>> {
        self.chunks.lock().pop_front()
    }

    /// Steals up to half of the remaining chunks (taken from the back).
    pub fn steal_half(&self) -> Vec<Vec<VertexId>> {
        let mut guard = self.chunks.lock();
        let take = guard.len() / 2;
        let mut stolen = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(chunk) = guard.pop_back() {
                stolen.push(chunk);
            }
        }
        stolen
    }

    /// Adds chunks (stolen from elsewhere) to this pool.
    pub fn add_chunks(&self, chunks: Vec<Vec<VertexId>>) {
        let mut guard = self.chunks.lock();
        for c in chunks {
            guard.push_back(c);
        }
    }

    /// `true` when no chunks remain.
    pub fn is_empty(&self) -> bool {
        self.chunks.lock().is_empty()
    }

    /// Number of vertices remaining (diagnostic).
    pub fn remaining_vertices(&self) -> usize {
        self.chunks.lock().iter().map(|c| c.len()).sum()
    }
}

/// The `SCAN` cursor: produces batches of `[f(src), f(dst)]` rows from the
/// machine's (possibly stolen) vertex chunks.
pub struct ScanCursor {
    op: ScanOp,
    pool: ScanPool,
    /// Pending rows carried over when a vertex's edges overflow a batch.
    pending: Vec<VertexId>,
}

impl ScanCursor {
    /// Creates a cursor over a scan pool.
    pub fn new(op: ScanOp, pool: ScanPool) -> Self {
        ScanCursor {
            op,
            pool,
            pending: Vec::new(),
        }
    }

    /// The underlying stealable pool.
    pub fn pool(&self) -> &ScanPool {
        &self.pool
    }

    /// `true` if more batches may be produced.
    pub fn has_more(&self) -> bool {
        !self.pending.is_empty() || !self.pool.is_empty()
    }

    /// Produces the next batch of at most `ctx.batch_size` rows, or `None`
    /// when the scan is exhausted.
    ///
    /// The expansion of a chunk's vertices into edge rows runs on the
    /// machine's persistent worker pool (split into per-worker ranges), so
    /// the scan path exercises the same `submit`/`join_epoch` substrate as
    /// `PULL-EXTEND`.
    pub fn next_batch(&mut self, ctx: &OpContext<'_>) -> Option<RowBatch> {
        let target_rows = ctx.batch_size;
        let mut batch = RowBatch::with_capacity(2, target_rows.min(64 * 1024));
        // First drain carried-over rows.
        while batch.len() < target_rows && self.pending.len() >= 2 {
            let v = self.pending.pop().expect("pair");
            let u = self.pending.pop().expect("pair");
            batch.push_row(&[u, v]);
        }
        while batch.len() < target_rows {
            let Some(chunk) = self.pool.pop() else { break };
            // Fetch adjacency lists: local vertices read the partition
            // directly; stolen remote vertices are pulled (and accounted).
            let remote: Vec<VertexId> = chunk
                .iter()
                .copied()
                .filter(|&v| !ctx.partition.is_local(v))
                .collect();
            let remote_lists: HashMap<VertexId, Vec<VertexId>> = if remote.is_empty() {
                HashMap::new()
            } else {
                ctx.rpc.get_nbrs(ctx.machine, &remote).into_iter().collect()
            };
            let per = (chunk.len() / (ctx.pool.workers() * 2).max(1)).max(64);
            let slices: Vec<&[VertexId]> = chunk.chunks(per).collect();
            let filters = &self.op.filters;
            let remote_lists = &remote_lists;
            let run = ctx.pool.run(slices, |vertices, out: &mut Vec<VertexId>| {
                for &u in vertices {
                    let neighbours: &[VertexId] = if ctx.partition.is_local(u) {
                        ctx.partition.local_neighbours(u)
                    } else {
                        remote_lists.get(&u).map(|v| v.as_slice()).unwrap_or(&[])
                    };
                    for &v in neighbours {
                        if passes_filters(&[u, v], filters) {
                            out.push(u);
                            out.push(v);
                        }
                    }
                }
            });
            for flat in run.outputs {
                for pair in flat.chunks_exact(2) {
                    if batch.len() < target_rows {
                        batch.push_row(pair);
                    } else {
                        self.pending.push(pair[0]);
                        self.pending.push(pair[1]);
                    }
                }
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

// ---------------------------------------------------------------------------
// PULL-EXTEND
// ---------------------------------------------------------------------------

/// The result of running a `PULL-EXTEND` over one input batch.
pub struct ExtendOutput {
    /// The extended (or verified) rows.
    pub batch: RowBatch,
    /// Busy time of each intra-machine worker during the intersect stage.
    pub worker_busy: Vec<Duration>,
    /// Time spent in the fetch stage (RPCs + cache writes + sealing).
    pub fetch_time: Duration,
}

/// The result of counting a `PULL-EXTEND` over one input batch without
/// materialising the extended rows.
pub struct ExtendCountOutput {
    /// Number of rows the extension would have produced.
    pub count: u64,
    /// Busy time of each intra-machine worker during the intersect stage.
    pub worker_busy: Vec<Duration>,
    /// Time spent in the fetch stage (RPCs + cache writes + sealing).
    pub fetch_time: Duration,
}

/// The fetch stage of Algorithm 4: pulls (or seals in the cache) every
/// remote adjacency list the batch's extend positions reference. Returns the
/// per-batch side table (used when the cache is disabled) and the stage
/// duration.
fn fetch_stage(
    op: &ExtendOp,
    input: &RowBatch,
    ctx: &OpContext<'_>,
) -> (HashMap<VertexId, Vec<VertexId>>, Duration) {
    let fetch_start = Instant::now();
    // Collect the distinct remote vertices referenced by the extend index.
    let mut remote: Vec<VertexId> = Vec::new();
    for row in input.rows() {
        for &pos in &op.ext_positions {
            let v = row[pos];
            if !ctx.partition.is_local(v) {
                remote.push(v);
            }
        }
    }
    remote.sort_unstable();
    remote.dedup();

    // Per-batch side table used when the cache is disabled.
    let mut batch_table: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    if ctx.use_cache {
        let mut to_fetch: Vec<VertexId> = Vec::new();
        for &v in &remote {
            if ctx.cache.contains(v) {
                ctx.cache.seal(v);
            } else {
                to_fetch.push(v);
            }
        }
        if !to_fetch.is_empty() {
            for (v, nbrs) in ctx.rpc.get_nbrs(ctx.machine, &to_fetch) {
                ctx.cache.insert(v, nbrs);
                ctx.cache.seal(v);
            }
        }
    } else if !remote.is_empty() {
        batch_table = ctx.rpc.get_nbrs(ctx.machine, &remote).into_iter().collect();
    }
    (batch_table, fetch_start.elapsed())
}

/// Splits `rows` into row-range work items for the worker pool.
fn intersect_ranges(rows: usize, ctx: &OpContext<'_>) -> Vec<(usize, usize)> {
    let chunk_rows = (rows / (ctx.pool.workers() * 4).max(1)).max(256);
    (0..rows)
        .step_by(chunk_rows)
        .map(|start| (start, (start + chunk_rows).min(rows)))
        .collect()
}

/// Runs the two-stage `PULL-EXTEND` (Algorithm 4) over one input batch.
pub fn run_extend(op: &ExtendOp, input: &RowBatch, ctx: &OpContext<'_>) -> ExtendOutput {
    let out_arity = if op.verify_position.is_some() {
        input.arity()
    } else {
        input.arity() + 1
    };
    let (batch_table, fetch_time) = fetch_stage(op, input, ctx);

    // ---------------- intersect stage ----------------
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let run = ctx
        .pool
        .run(ranges, |(start, end), out: &mut Vec<VertexId>| {
            let mut scratch: Vec<VertexId> = Vec::new();
            for i in start..end {
                let row = input.row(i);
                extend_one_row(
                    op,
                    row,
                    ctx,
                    batch_table,
                    &mut scratch,
                    &mut ExtendSink::Materialise(out),
                );
            }
        });

    let mut batch = RowBatch::new(out_arity);
    let worker_busy = run.busy.clone();
    for flat in run.outputs {
        let mut piece = RowBatch::from_flat(out_arity, flat);
        batch.append(&mut piece);
    }

    if ctx.use_cache {
        ctx.cache.release();
    }

    ExtendOutput {
        batch,
        worker_busy,
        fetch_time,
    }
}

/// Runs the two-stage `PULL-EXTEND` over one input batch, *counting* the
/// extensions instead of materialising them — the count-only sink fast path:
/// the final output column (and the batch allocation behind it) is skipped
/// entirely.
pub fn run_extend_count(op: &ExtendOp, input: &RowBatch, ctx: &OpContext<'_>) -> ExtendCountOutput {
    let (batch_table, fetch_time) = fetch_stage(op, input, ctx);
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let run = ctx.pool.run(ranges, |(start, end), out: &mut Vec<u64>| {
        let mut scratch: Vec<VertexId> = Vec::new();
        let mut count = 0u64;
        for i in start..end {
            let row = input.row(i);
            extend_one_row(
                op,
                row,
                ctx,
                batch_table,
                &mut scratch,
                &mut ExtendSink::Count(&mut count),
            );
        }
        out.push(count);
    });
    if ctx.use_cache {
        ctx.cache.release();
    }
    ExtendCountOutput {
        count: run.outputs.iter().flatten().sum(),
        worker_busy: run.busy,
        fetch_time,
    }
}

/// Where an extension's results go: materialised flat rows, or a counter.
enum ExtendSink<'a> {
    Materialise(&'a mut Vec<VertexId>),
    Count(&'a mut u64),
}

impl ExtendSink<'_> {
    #[inline]
    fn emit_verified(&mut self, row: &[VertexId]) {
        match self {
            ExtendSink::Materialise(out) => out.extend_from_slice(row),
            ExtendSink::Count(count) => **count += 1,
        }
    }

    #[inline]
    fn emit_extended(&mut self, row: &[VertexId], candidate: VertexId) {
        match self {
            ExtendSink::Materialise(out) => {
                out.extend_from_slice(row);
                out.push(candidate);
            }
            ExtendSink::Count(count) => **count += 1,
        }
    }
}

/// Extends (or verifies) a single row, feeding the results to `sink`.
fn extend_one_row(
    op: &ExtendOp,
    row: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    scratch: &mut Vec<VertexId>,
    sink: &mut ExtendSink<'_>,
) {
    // Verify mode: check that the already-bound vertex is adjacent to every
    // extend position (no intersection needs materialising).
    if let Some(vpos) = op.verify_position {
        let target = row[vpos];
        let ok = op.ext_positions.iter().all(|&pos| {
            let v = row[pos];
            with_neighbours(ctx, batch_table, v, |nbrs| {
                nbrs.binary_search(&target).is_ok()
            })
            .unwrap_or(false)
        });
        if ok && passes_filters(row, &op.filters) {
            sink.emit_verified(row);
        }
        return;
    }

    // Match mode: multiway intersection of the neighbourhoods (Equation 2).
    scratch.clear();
    let mut first = true;
    for &pos in &op.ext_positions {
        let v = row[pos];
        let found = with_neighbours(ctx, batch_table, v, |nbrs| {
            if first {
                scratch.extend_from_slice(nbrs);
            } else {
                intersect_in_place(scratch, nbrs);
            }
        });
        if found.is_none() {
            // Missing adjacency list (can only happen for an empty stolen
            // list): no candidates.
            scratch.clear();
        }
        first = false;
        if scratch.is_empty() && !first {
            break;
        }
    }
    for &candidate in scratch.iter() {
        // Injectivity: the new vertex must differ from every bound vertex.
        if row.contains(&candidate) {
            continue;
        }
        // Order filters refer to the *output* row layout (row ++ candidate).
        let ok = op.filters.iter().all(|f| {
            let smaller = if f.smaller == row.len() {
                candidate
            } else {
                row[f.smaller]
            };
            let larger = if f.larger == row.len() {
                candidate
            } else {
                row[f.larger]
            };
            smaller < larger
        });
        if ok {
            sink.emit_extended(row, candidate);
        }
    }
}

/// Looks up the adjacency list of `v` (local partition, cache, or the
/// per-batch table) and applies `f` to it. Returns `None` when the list is
/// unavailable.
fn with_neighbours<R>(
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    v: VertexId,
    mut f: impl FnMut(&[VertexId]) -> R,
) -> Option<R> {
    if ctx.partition.is_local(v) {
        return Some(f(ctx.partition.local_neighbours(v)));
    }
    if ctx.use_cache {
        let mut result = None;
        let found = ctx.cache.read(v, &mut |nbrs| result = Some(f(nbrs)));
        if found {
            return result;
        }
        // Cache designs without seal/release (the Exp-6 LRU variants) may
        // have evicted the entry between the fetch and intersect stages;
        // correctness requires falling back to an extra (accounted) pull.
        let fetched = ctx.rpc.get_nbrs(ctx.machine, &[v]);
        return fetched.first().map(|(_, nbrs)| f(nbrs));
    }
    batch_table.get(&v).map(|nbrs| f(nbrs))
}

/// In-place intersection of a sorted accumulator with a sorted list.
fn intersect_in_place(acc: &mut Vec<VertexId>, other: &[VertexId]) {
    let mut write = 0;
    let mut j = 0;
    for read in 0..acc.len() {
        let x = acc[read];
        while j < other.len() && other[j] < x {
            j += 1;
        }
        if j < other.len() && other[j] == x {
            acc[write] = x;
            write += 1;
        }
    }
    acc.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use huge_cache::PullCache;
    use huge_comm::stats::ClusterStats;
    use huge_comm::RpcFabric;
    use huge_graph::{gen, GraphPartition, Partitioner};
    use huge_plan::physical::CommMode;

    fn setup(k: usize) -> (Vec<GraphPartition>, RpcFabric) {
        let g = gen::complete(8);
        let parts = Partitioner::new(k).unwrap().partition(g);
        let stats = ClusterStats::new(k);
        let fabric = RpcFabric::new(Arc::new(parts.clone()), stats);
        (parts, fabric)
    }

    fn ctx<'a>(
        machine: usize,
        parts: &'a [GraphPartition],
        rpc: &'a RpcFabric,
        cache: &'a dyn PullCache,
        pool: &'a WorkerPool,
    ) -> OpContext<'a> {
        OpContext {
            machine,
            partition: &parts[machine],
            rpc,
            cache,
            use_cache: true,
            pool,
            batch_size: 1024,
        }
    }

    #[test]
    fn scan_produces_all_directed_edges() {
        let (parts, rpc) = setup(2);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let mut total = 0;
        for m in 0..2 {
            let c = ctx(m, &parts, &rpc, &cache, &pool);
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![],
            };
            let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[m].local_vertices(), 4));
            while let Some(batch) = cursor.next_batch(&c) {
                total += batch.len();
            }
        }
        // K8 has 28 undirected edges -> 56 directed pairs across machines.
        assert_eq!(total, 56);
    }

    #[test]
    fn scan_respects_order_filters() {
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let scan = ScanOp {
            src: 0,
            dst: 1,
            filters: vec![OrderFilter {
                smaller: 0,
                larger: 1,
            }],
        };
        let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[0].local_vertices(), 4));
        let mut total = 0;
        while let Some(batch) = cursor.next_batch(&c) {
            for row in batch.rows() {
                assert!(row[0] < row[1]);
            }
            total += batch.len();
        }
        assert_eq!(total, 28);
    }

    #[test]
    fn extend_counts_triangles_on_k8() {
        let (parts, rpc) = setup(2);
        let pool = WorkerPool::new(2, crate::config::LoadBalance::WorkStealing);
        let mut total = 0;
        for m in 0..2 {
            let cache = huge_cache::LrbuCache::new(1 << 20);
            let c = ctx(m, &parts, &rpc, &cache, &pool);
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![OrderFilter {
                    smaller: 0,
                    larger: 1,
                }],
            };
            let ext = ExtendOp {
                target: 2,
                ext_positions: vec![0, 1],
                verify_position: None,
                filters: vec![OrderFilter {
                    smaller: 1,
                    larger: 2,
                }],
                comm: CommMode::Pulling,
            };
            let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[m].local_vertices(), 2));
            while let Some(batch) = cursor.next_batch(&c) {
                let out = run_extend(&ext, &batch, &c);
                total += out.batch.len();
            }
        }
        // K8 has C(8,3) = 56 triangles.
        assert_eq!(total, 56);
    }

    #[test]
    fn verify_extend_checks_membership() {
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        // Rows over K8 vertices: verify that column 0 is adjacent to column 1.
        let mut input = RowBatch::new(2);
        input.push_row(&[0, 1]);
        input.push_row(&[2, 2]); // self pair: 2 is not its own neighbour
        let op = ExtendOp {
            target: 0,
            ext_positions: vec![1],
            verify_position: Some(0),
            filters: vec![],
            comm: CommMode::Pulling,
        };
        let out = run_extend(&op, &input, &c);
        assert_eq!(out.batch.len(), 1);
        assert_eq!(out.batch.row(0), &[0, 1]);
    }

    #[test]
    fn extend_without_cache_uses_batch_table() {
        let (parts, rpc) = setup(2);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let mut c = ctx(0, &parts, &rpc, &cache, &pool);
        c.use_cache = false;
        let mut input = RowBatch::new(2);
        input.push_row(&[0, 1]);
        let op = ExtendOp {
            target: 2,
            ext_positions: vec![0, 1],
            verify_position: None,
            filters: vec![],
            comm: CommMode::Pulling,
        };
        let out = run_extend(&op, &input, &c);
        // All other 6 vertices of K8 complete the triangle.
        assert_eq!(out.batch.len(), 6);
        assert_eq!(cache.len(), 0, "cache must stay untouched when disabled");
    }

    #[test]
    fn scan_pool_stealing() {
        let pool = ScanPool::new(&(0..100u32).collect::<Vec<_>>(), 10);
        let stolen = pool.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(pool.remaining_vertices(), 50);
        let other = ScanPool::empty();
        other.add_chunks(stolen);
        assert_eq!(other.remaining_vertices(), 50);
        assert!(!other.is_empty());
    }

    #[test]
    fn intersect_in_place_is_correct() {
        let mut acc = vec![1, 3, 5, 7, 9];
        intersect_in_place(&mut acc, &[3, 4, 5, 9, 11]);
        assert_eq!(acc, vec![3, 5, 9]);
        let mut empty: Vec<u32> = vec![];
        intersect_in_place(&mut empty, &[1, 2]);
        assert!(empty.is_empty());
    }
}
