//! Operator implementations: `SCAN` and `PULL-EXTEND`.
//!
//! (`PUSH-JOIN` lives in [`crate::join`]; the `SINK` is part of the segment
//! terminal in [`crate::machine`].)

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use huge_comm::{ColBatch, RowBatch};
use huge_graph::kernels::{self, KernelKind, KernelTally};
use huge_graph::VertexId;
use huge_plan::translate::{ExtendOp, OrderFilter, ScanOp};
use parking_lot::Mutex;

pub use crate::exec::OpContext;

/// Applies the symmetry-breaking filters of an operator to a row.
#[inline]
pub fn passes_filters(row: &[VertexId], filters: &[OrderFilter]) -> bool {
    filters.iter().all(|f| row[f.smaller] < row[f.larger])
}

// ---------------------------------------------------------------------------
// SCAN
// ---------------------------------------------------------------------------

/// The stealable pool of unscanned vertices of one machine.
///
/// The machine's own scan cursor pops chunks from the front; idle machines
/// steal chunks from the back (the inter-machine half of work stealing).
#[derive(Clone)]
pub struct ScanPool {
    chunks: Arc<Mutex<std::collections::VecDeque<Vec<VertexId>>>>,
}

impl ScanPool {
    /// Splits a vertex list into chunks of `chunk_size` and builds the pool.
    pub fn new(vertices: &[VertexId], chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        let chunks = vertices
            .chunks(chunk_size)
            .map(|c| c.to_vec())
            .collect::<std::collections::VecDeque<_>>();
        ScanPool {
            chunks: Arc::new(Mutex::new(chunks)),
        }
    }

    /// An empty pool (used for non-scan segments).
    pub fn empty() -> Self {
        ScanPool {
            chunks: Arc::new(Mutex::new(std::collections::VecDeque::new())),
        }
    }

    /// Pops the next chunk for the owning machine.
    pub fn pop(&self) -> Option<Vec<VertexId>> {
        self.chunks.lock().pop_front()
    }

    /// Steals up to half of the remaining chunks (taken from the back).
    pub fn steal_half(&self) -> Vec<Vec<VertexId>> {
        let mut guard = self.chunks.lock();
        let take = guard.len() / 2;
        let mut stolen = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(chunk) = guard.pop_back() {
                stolen.push(chunk);
            }
        }
        stolen
    }

    /// Adds chunks (stolen from elsewhere) to this pool.
    pub fn add_chunks(&self, chunks: Vec<Vec<VertexId>>) {
        let mut guard = self.chunks.lock();
        for c in chunks {
            guard.push_back(c);
        }
    }

    /// `true` when no chunks remain.
    pub fn is_empty(&self) -> bool {
        self.chunks.lock().is_empty()
    }

    /// Number of vertices remaining (diagnostic).
    pub fn remaining_vertices(&self) -> usize {
        self.chunks.lock().iter().map(|c| c.len()).sum()
    }
}

/// The `SCAN` cursor: produces batches of `[f(src), f(dst)]` rows from the
/// machine's (possibly stolen) vertex chunks.
pub struct ScanCursor {
    op: ScanOp,
    pool: ScanPool,
    /// Pending rows carried over when a vertex's edges overflow a batch.
    pending: Vec<VertexId>,
}

impl ScanCursor {
    /// Creates a cursor over a scan pool.
    pub fn new(op: ScanOp, pool: ScanPool) -> Self {
        ScanCursor {
            op,
            pool,
            pending: Vec::new(),
        }
    }

    /// The underlying stealable pool.
    pub fn pool(&self) -> &ScanPool {
        &self.pool
    }

    /// `true` if more batches may be produced.
    pub fn has_more(&self) -> bool {
        !self.pending.is_empty() || !self.pool.is_empty()
    }

    /// Produces the next batch of at most `ctx.batch_size` rows, or `None`
    /// when the scan is exhausted.
    ///
    /// The expansion of a chunk's vertices into edge rows runs on the
    /// machine's persistent worker pool (split into per-worker ranges), so
    /// the scan path exercises the same `submit`/`join_epoch` substrate as
    /// `PULL-EXTEND`.
    pub fn next_batch(&mut self, ctx: &OpContext<'_>) -> Option<RowBatch> {
        let target_rows = ctx.batch_size;
        let mut batch = RowBatch::with_capacity(2, target_rows.min(64 * 1024));
        // First drain carried-over rows.
        while batch.len() < target_rows && self.pending.len() >= 2 {
            let v = self.pending.pop().expect("pair");
            let u = self.pending.pop().expect("pair");
            batch.push_row(&[u, v]);
        }
        while batch.len() < target_rows {
            let Some(chunk) = self.pool.pop() else { break };
            // Fetch adjacency lists: local vertices read the partition
            // directly; stolen remote vertices are pulled (and accounted).
            let remote: Vec<VertexId> = chunk
                .iter()
                .copied()
                .filter(|&v| !ctx.partition.is_local(v))
                .collect();
            let remote_lists: HashMap<VertexId, Vec<VertexId>> = if remote.is_empty() {
                HashMap::new()
            } else {
                ctx.rpc.get_nbrs(ctx.machine, &remote).into_iter().collect()
            };
            let per = (chunk.len() / (ctx.pool.workers() * 2).max(1)).max(64);
            let slices: Vec<&[VertexId]> = chunk.chunks(per).collect();
            let filters = &self.op.filters;
            let remote_lists = &remote_lists;
            let run = ctx.pool.run(slices, |vertices, out: &mut Vec<VertexId>| {
                for &u in vertices {
                    let neighbours: &[VertexId] = if ctx.partition.is_local(u) {
                        ctx.partition.local_neighbours(u)
                    } else {
                        remote_lists.get(&u).map(|v| v.as_slice()).unwrap_or(&[])
                    };
                    for &v in neighbours {
                        if passes_filters(&[u, v], filters) {
                            out.push(u);
                            out.push(v);
                        }
                    }
                }
            });
            for flat in run.outputs {
                for pair in flat.chunks_exact(2) {
                    if batch.len() < target_rows {
                        batch.push_row(pair);
                    } else {
                        self.pending.push(pair[0]);
                        self.pending.push(pair[1]);
                    }
                }
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

// ---------------------------------------------------------------------------
// PULL-EXTEND
// ---------------------------------------------------------------------------

/// The result of running a `PULL-EXTEND` over one input batch.
pub struct ExtendOutput {
    /// The extended (or verified) rows.
    pub batch: RowBatch,
    /// Busy time of each intra-machine worker during the intersect stage.
    pub worker_busy: Vec<Duration>,
    /// Time spent in the fetch stage (RPCs + cache writes + sealing).
    pub fetch_time: Duration,
}

/// The result of counting a `PULL-EXTEND` over one input batch without
/// materialising the extended rows.
pub struct ExtendCountOutput {
    /// Number of rows the extension would have produced.
    pub count: u64,
    /// Busy time of each intra-machine worker during the intersect stage.
    pub worker_busy: Vec<Duration>,
    /// Time spent in the fetch stage (RPCs + cache writes + sealing).
    pub fetch_time: Duration,
}

/// Resolves a collected list of remote vertices: seals them in the cache
/// (fetching misses) or builds the per-batch side table used when the cache
/// is disabled. Shared tail of both fetch-stage layouts.
fn resolve_remote(
    mut remote: Vec<VertexId>,
    ctx: &OpContext<'_>,
) -> HashMap<VertexId, Vec<VertexId>> {
    remote.sort_unstable();
    remote.dedup();
    let mut batch_table: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    if ctx.use_cache {
        let mut to_fetch: Vec<VertexId> = Vec::new();
        for &v in &remote {
            if ctx.cache.contains(v) {
                ctx.cache.seal(v);
            } else {
                to_fetch.push(v);
            }
        }
        if !to_fetch.is_empty() {
            for (v, nbrs) in ctx.rpc.get_nbrs(ctx.machine, &to_fetch) {
                ctx.cache.insert(v, nbrs);
                ctx.cache.seal(v);
            }
        }
    } else if !remote.is_empty() {
        batch_table = ctx.rpc.get_nbrs(ctx.machine, &remote).into_iter().collect();
    }
    batch_table
}

/// The fetch stage of Algorithm 4: pulls (or seals in the cache) every
/// remote adjacency list the batch's extend positions reference. Returns the
/// per-batch side table (used when the cache is disabled) and the stage
/// duration.
fn fetch_stage(
    op: &ExtendOp,
    input: &RowBatch,
    ctx: &OpContext<'_>,
) -> (HashMap<VertexId, Vec<VertexId>>, Duration) {
    let fetch_start = Instant::now();
    let mut remote: Vec<VertexId> = Vec::new();
    for row in input.rows() {
        for &pos in &op.ext_positions {
            let v = row[pos];
            if !ctx.partition.is_local(v) {
                remote.push(v);
            }
        }
    }
    let batch_table = resolve_remote(remote, ctx);
    (batch_table, fetch_start.elapsed())
}

/// Columnar fetch stage: identical to [`fetch_stage`] but reads the extend
/// positions column-at-a-time (one dense column scan per position instead
/// of a strided walk over rows).
fn fetch_stage_cols(
    op: &ExtendOp,
    input: &ColBatch,
    ctx: &OpContext<'_>,
) -> (HashMap<VertexId, Vec<VertexId>>, Duration) {
    let fetch_start = Instant::now();
    let mut remote: Vec<VertexId> = Vec::new();
    for &pos in &op.ext_positions {
        match input.selection() {
            None => {
                remote.extend(
                    input
                        .column(pos)
                        .iter()
                        .copied()
                        .filter(|&v| !ctx.partition.is_local(v)),
                );
            }
            Some(sel) => {
                let col = input.column(pos);
                remote.extend(
                    sel.iter()
                        .map(|&i| col[i as usize])
                        .filter(|&v| !ctx.partition.is_local(v)),
                );
            }
        }
    }
    let batch_table = resolve_remote(remote, ctx);
    (batch_table, fetch_start.elapsed())
}

/// Splits `rows` into row-range work items for the worker pool.
fn intersect_ranges(rows: usize, ctx: &OpContext<'_>) -> Vec<(usize, usize)> {
    let chunk_rows = (rows / (ctx.pool.workers() * 4).max(1)).max(256);
    (0..rows)
        .step_by(chunk_rows)
        .map(|start| (start, (start + chunk_rows).min(rows)))
        .collect()
}

/// Runs the two-stage `PULL-EXTEND` (Algorithm 4) over one input batch.
pub fn run_extend(op: &ExtendOp, input: &RowBatch, ctx: &OpContext<'_>) -> ExtendOutput {
    let out_arity = if op.verify_position.is_some() {
        input.arity()
    } else {
        input.arity() + 1
    };
    let (batch_table, fetch_time) = fetch_stage(op, input, ctx);

    // ---------------- intersect stage ----------------
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let run = ctx
        .pool
        .run(ranges, |(start, end), out: &mut Vec<VertexId>| {
            let mut exts: Vec<VertexId> = Vec::new();
            let mut scratch: Vec<VertexId> = Vec::new();
            let mut tally = KernelTally::default();
            for i in start..end {
                let row = input.row(i);
                extend_one_row(
                    op,
                    row,
                    ctx,
                    batch_table,
                    &mut exts,
                    &mut scratch,
                    &mut tally,
                    &mut ExtendSink::Materialise(out),
                );
            }
            flush_tally(ctx, &tally);
        });

    let mut batch = RowBatch::new(out_arity);
    let worker_busy = run.busy.clone();
    for flat in run.outputs {
        let mut piece = RowBatch::from_flat(out_arity, flat);
        batch.append(&mut piece);
    }

    if ctx.use_cache {
        ctx.cache.release();
    }

    ExtendOutput {
        batch,
        worker_busy,
        fetch_time,
    }
}

/// Runs the two-stage `PULL-EXTEND` over one input batch, *counting* the
/// extensions instead of materialising them — the count-only sink fast path:
/// the final output column (and the batch allocation behind it) is skipped
/// entirely.
pub fn run_extend_count(op: &ExtendOp, input: &RowBatch, ctx: &OpContext<'_>) -> ExtendCountOutput {
    let (batch_table, fetch_time) = fetch_stage(op, input, ctx);
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let run = ctx.pool.run(ranges, |(start, end), out: &mut Vec<u64>| {
        let mut exts: Vec<VertexId> = Vec::new();
        let mut scratch: Vec<VertexId> = Vec::new();
        let mut tally = KernelTally::default();
        let mut count = 0u64;
        for i in start..end {
            let row = input.row(i);
            extend_one_row(
                op,
                row,
                ctx,
                batch_table,
                &mut exts,
                &mut scratch,
                &mut tally,
                &mut ExtendSink::Count(&mut count),
            );
        }
        flush_tally(ctx, &tally);
        out.push(count);
    });
    if ctx.use_cache {
        ctx.cache.release();
    }
    ExtendCountOutput {
        count: run.outputs.iter().flatten().sum(),
        worker_busy: run.busy,
        fetch_time,
    }
}

/// Where an extension's results go: materialised flat rows, or a counter.
enum ExtendSink<'a> {
    Materialise(&'a mut Vec<VertexId>),
    Count(&'a mut u64),
}

impl ExtendSink<'_> {
    #[inline]
    fn emit_verified(&mut self, row: &[VertexId]) {
        match self {
            ExtendSink::Materialise(out) => out.extend_from_slice(row),
            ExtendSink::Count(count) => **count += 1,
        }
    }

    #[inline]
    fn emit_extended(&mut self, row: &[VertexId], candidate: VertexId) {
        match self {
            ExtendSink::Materialise(out) => {
                out.extend_from_slice(row);
                out.push(candidate);
            }
            ExtendSink::Count(count) => **count += 1,
        }
    }
}

/// Flushes a work item's kernel tally to the machine's shared counters
/// (one set of atomic adds per work item, not per intersection).
#[inline]
fn flush_tally(ctx: &OpContext<'_>, tally: &KernelTally) {
    if tally.total() > 0 {
        ctx.rpc.stats().machine(ctx.machine).record_kernels(
            tally.merge,
            tally.gallop,
            tally.bitmap,
        );
    }
}

/// How the non-hub half of the kernel dispatch is resolved.
///
/// The hub class needs no choice — an indexed hub always dispatches to the
/// bitmap kernel. The list class either re-runs [`kernels::select_kernel`]
/// per intersection call (the row-major paths) or uses one kernel picked up
/// front for the whole batch (the columnar paths, via
/// [`plan_batch_kernel`]), hoisting the dispatch out of the per-candidate
/// loop.
#[derive(Clone, Copy)]
enum ListKernel {
    /// Cardinality comparison per intersection call.
    Adaptive,
    /// One pre-selected kernel for every non-hub step of the batch.
    Fixed(KernelKind),
}

/// Picks the list kernel once per batch for the columnar paths.
///
/// Samples the degree spread of the extend columns (smallest vs. largest
/// degree per row — the shape every intersection step of that row sees) and
/// runs the per-call selection rule on the sampled means. Hub vertices are
/// excluded: they dispatch to the bitmap kernel regardless of what is
/// chosen here. Any outcome is correct on any row; the pick only decides
/// which kernel the batch's non-hub steps run without re-deriving it per
/// candidate.
fn plan_batch_kernel(op: &ExtendOp, input: &ColBatch, ctx: &OpContext<'_>) -> KernelKind {
    const SAMPLE: usize = 128;
    let rows = input.len();
    if rows == 0 || op.ext_positions.len() < 2 {
        // Single-list extensions never intersect; nothing to pick.
        return KernelKind::Merge;
    }
    let step = rows.div_ceil(SAMPLE).max(1);
    let (mut small_sum, mut large_sum, mut sampled) = (0usize, 0usize, 0usize);
    for i in (0..rows).step_by(step) {
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &pos in &op.ext_positions {
            let v = input.value(pos, i);
            if ctx.partition.hub_bitmap(v).is_some() {
                continue;
            }
            let d = ctx.partition.degree(v);
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo != usize::MAX {
            small_sum += lo;
            large_sum += hi;
            sampled += 1;
        }
    }
    if sampled == 0 {
        // Every sampled vertex is an indexed hub; the list kernel is moot.
        return KernelKind::Merge;
    }
    kernels::select_kernel(small_sum / sampled, large_sum / sampled, false)
}

/// Intersects the adjacency lists of `exts` (already sorted smallest-degree
/// first) into `scratch`, dispatching every step through the adaptive
/// kernel family: hub bitmaps for indexed high-degree vertices, galloping
/// under cardinality skew, branch-light merge otherwise. A missing list
/// (an evicted steal) clears the accumulator — no candidates.
fn intersect_ext_lists(
    exts: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    scratch: &mut Vec<VertexId>,
    tally: &mut KernelTally,
    list: ListKernel,
) {
    scratch.clear();
    let mut first = true;
    for &v in exts {
        if first {
            if with_neighbours(ctx, batch_table, v, |nbrs| scratch.extend_from_slice(nbrs))
                .is_none()
            {
                scratch.clear();
            }
            first = false;
            continue;
        }
        if scratch.is_empty() {
            break;
        }
        if let Some(bm) = ctx.partition.hub_bitmap(v) {
            kernels::intersect_bitmap_in_place(scratch, bm);
            tally.bump(KernelKind::Bitmap);
            continue;
        }
        let used = match list {
            ListKernel::Adaptive => with_neighbours(ctx, batch_table, v, |nbrs| {
                kernels::intersect_in_place(scratch, nbrs)
            }),
            ListKernel::Fixed(kind) => with_neighbours(ctx, batch_table, v, |nbrs| {
                kernels::intersect_in_place_with(scratch, nbrs, kind);
                kind
            }),
        };
        match used {
            Some(kind) => tally.bump(kind),
            None => scratch.clear(),
        }
    }
}

/// Computes the raw multiway candidate set of one row (Equation 2) into
/// `scratch` (before injectivity and order filters). The extend lists are
/// ordered smallest-degree first — degree is metadata every machine reads
/// for free — so the accumulator starts minimal and skew is maximal, which
/// is what lets the galloping and bitmap branches win.
#[allow(clippy::too_many_arguments)]
fn gather_candidates(
    op: &ExtendOp,
    row: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    exts: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    tally: &mut KernelTally,
    list: ListKernel,
) {
    exts.clear();
    exts.extend(op.ext_positions.iter().map(|&p| row[p]));
    exts.sort_unstable_by_key(|&v| ctx.partition.degree(v));
    intersect_ext_lists(exts, ctx, batch_table, scratch, tally, list);
}

/// Injectivity plus order filters for one candidate against the *output*
/// row layout (`row ++ candidate`).
#[inline]
fn candidate_passes(op: &ExtendOp, row: &[VertexId], candidate: VertexId) -> bool {
    // Injectivity: the new vertex must differ from every bound vertex.
    if row.contains(&candidate) {
        return false;
    }
    op.filters.iter().all(|f| {
        let smaller = if f.smaller == row.len() {
            candidate
        } else {
            row[f.smaller]
        };
        let larger = if f.larger == row.len() {
            candidate
        } else {
            row[f.larger]
        };
        smaller < larger
    })
}

/// Verify mode for one row: the already-bound vertex must be adjacent to
/// every extend position (no intersection needs materialising).
#[inline]
fn verify_one_row(
    op: &ExtendOp,
    vpos: usize,
    row: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
) -> bool {
    let target = row[vpos];
    op.ext_positions.iter().all(|&pos| {
        let v = row[pos];
        with_neighbours(ctx, batch_table, v, |nbrs| {
            nbrs.binary_search(&target).is_ok()
        })
        .unwrap_or(false)
    }) && passes_filters(row, &op.filters)
}

/// Extends (or verifies) a single row, feeding the results to `sink`.
#[allow(clippy::too_many_arguments)]
fn extend_one_row(
    op: &ExtendOp,
    row: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    exts: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    tally: &mut KernelTally,
    sink: &mut ExtendSink<'_>,
) {
    if let Some(vpos) = op.verify_position {
        if verify_one_row(op, vpos, row, ctx, batch_table) {
            sink.emit_verified(row);
        }
        return;
    }

    // Match mode: multiway intersection of the neighbourhoods (Equation 2).
    gather_candidates(
        op,
        row,
        ctx,
        batch_table,
        exts,
        scratch,
        tally,
        ListKernel::Adaptive,
    );
    for &candidate in scratch.iter() {
        if candidate_passes(op, row, candidate) {
            sink.emit_extended(row, candidate);
        }
    }
}

/// Looks up the adjacency list of `v` (local partition, cache, or the
/// per-batch table) and applies `f` to it. Returns `None` when the list is
/// unavailable.
fn with_neighbours<R>(
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    v: VertexId,
    mut f: impl FnMut(&[VertexId]) -> R,
) -> Option<R> {
    if ctx.partition.is_local(v) {
        return Some(f(ctx.partition.local_neighbours(v)));
    }
    if ctx.use_cache {
        let mut result = None;
        let found = ctx.cache.read(v, &mut |nbrs| result = Some(f(nbrs)));
        if found {
            return result;
        }
        // Cache designs without seal/release (the Exp-6 LRU variants) may
        // have evicted the entry between the fetch and intersect stages;
        // correctness requires falling back to an extra (accounted) pull.
        let fetched = ctx.rpc.get_nbrs(ctx.machine, &[v]);
        return fetched.first().map(|(_, nbrs)| f(nbrs));
    }
    batch_table.get(&v).map(|nbrs| f(nbrs))
}

// ---------------------------------------------------------------------------
// Columnar PULL-EXTEND
// ---------------------------------------------------------------------------

/// The result of running a columnar `PULL-EXTEND` over one input batch.
pub struct ExtendColsOutput {
    /// The extended (or selection-narrowed) columnar batch.
    pub batch: ColBatch,
    /// Busy time of each intra-machine worker during the intersect stage.
    pub worker_busy: Vec<Duration>,
    /// Time spent in the fetch stage (RPCs + cache writes + sealing).
    pub fetch_time: Duration,
}

/// Runs the two-stage `PULL-EXTEND` (Algorithm 4) over one columnar batch.
///
/// *Verify* mode never moves data: the surviving rows become a narrowed
/// selection vector over the input's columns. *Match* mode gathers the
/// prefix columns once per output column (dense sequential writes) and
/// appends exactly one new candidate column — no `arity + 1`-wide row
/// rewrites.
pub fn run_extend_cols(op: &ExtendOp, input: ColBatch, ctx: &OpContext<'_>) -> ExtendColsOutput {
    let (batch_table, fetch_time) = fetch_stage_cols(op, &input, ctx);
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let input_ref = &input;

    if let Some(vpos) = op.verify_position {
        // Survivors as physical indices; the pool returns work items in
        // arbitrary order, so sort before installing the selection.
        let run = ctx.pool.run(ranges, |(start, end), out: &mut Vec<u32>| {
            let mut row: Vec<VertexId> = Vec::new();
            for i in start..end {
                row.clear();
                input_ref.read_row(i, &mut row);
                if verify_one_row(op, vpos, &row, ctx, batch_table) {
                    out.push(input_ref.physical_index(i) as u32);
                }
            }
        });
        let worker_busy = run.busy.clone();
        let mut sel: Vec<u32> = run.outputs.into_iter().flatten().collect();
        sel.sort_unstable();
        let mut batch = input;
        batch.set_selection(sel);
        if ctx.use_cache {
            ctx.cache.release();
        }
        ctx.rpc
            .stats()
            .machine(ctx.machine)
            .record_col_bytes(batch.byte_size());
        return ExtendColsOutput {
            batch,
            worker_busy,
            fetch_time,
        };
    }

    // Match mode: workers emit (logical row, candidate) pairs; the output
    // columns are then assembled column-at-a-time. The list kernel is
    // picked once for the whole batch — the per-candidate loop below runs
    // dispatch-free.
    let list = ListKernel::Fixed(plan_batch_kernel(op, input_ref, ctx));
    let run = ctx
        .pool
        .run(ranges, |(start, end), out: &mut Vec<VertexId>| {
            let mut row: Vec<VertexId> = Vec::new();
            let mut exts: Vec<VertexId> = Vec::new();
            let mut scratch: Vec<VertexId> = Vec::new();
            let mut tally = KernelTally::default();
            for i in start..end {
                row.clear();
                input_ref.read_row(i, &mut row);
                gather_candidates(
                    op,
                    &row,
                    ctx,
                    batch_table,
                    &mut exts,
                    &mut scratch,
                    &mut tally,
                    list,
                );
                for &candidate in scratch.iter() {
                    if candidate_passes(op, &row, candidate) {
                        out.push(i as u32);
                        out.push(candidate);
                    }
                }
            }
            flush_tally(ctx, &tally);
        });
    let worker_busy = run.busy.clone();
    let arity = input.arity();
    let total: usize = run.outputs.iter().map(|o| o.len() / 2).sum();
    let mut cols: Vec<Vec<VertexId>> = (0..=arity).map(|_| Vec::with_capacity(total)).collect();
    for flat in &run.outputs {
        for (c, col) in cols.iter_mut().enumerate().take(arity) {
            col.extend(flat.chunks_exact(2).map(|p| input.value(c, p[0] as usize)));
        }
        cols[arity].extend(flat.chunks_exact(2).map(|p| p[1]));
    }
    let batch = ColBatch::from_columns(cols);
    if ctx.use_cache {
        ctx.cache.release();
    }
    ctx.rpc
        .stats()
        .machine(ctx.machine)
        .record_col_bytes(batch.byte_size());
    ExtendColsOutput {
        batch,
        worker_busy,
        fetch_time,
    }
}

/// Counts the extensions of one columnar batch without materialising
/// anything the kernels can avoid.
///
/// The candidate-position order filters are turned into a `(lo, hi)` value
/// range and the *largest* extend list is never written: with one extend
/// list the count is two `partition_point`s; with several, all but the
/// largest are intersected into a scratch accumulator and the final step
/// runs an `intersect_count_*` twin (bitmap twin for indexed hubs).
/// Injectivity is restored by subtracting the bound row values that would
/// have been counted.
pub fn run_extend_count_cols(
    op: &ExtendOp,
    input: &ColBatch,
    ctx: &OpContext<'_>,
) -> ExtendCountOutput {
    let (batch_table, fetch_time) = fetch_stage_cols(op, input, ctx);
    let ranges = intersect_ranges(input.len(), ctx);
    let batch_table = &batch_table;
    let list = ListKernel::Fixed(plan_batch_kernel(op, input, ctx));
    let run = ctx.pool.run(ranges, |(start, end), out: &mut Vec<u64>| {
        let mut row: Vec<VertexId> = Vec::new();
        let mut exts: Vec<VertexId> = Vec::new();
        let mut scratch: Vec<VertexId> = Vec::new();
        let mut tally = KernelTally::default();
        let mut count = 0u64;
        for i in start..end {
            row.clear();
            input.read_row(i, &mut row);
            count += count_one_row(
                op,
                &row,
                ctx,
                batch_table,
                &mut exts,
                &mut scratch,
                &mut tally,
                list,
            );
        }
        flush_tally(ctx, &tally);
        out.push(count);
    });
    if ctx.use_cache {
        ctx.cache.release();
    }
    ExtendCountOutput {
        count: run.outputs.iter().flatten().sum(),
        worker_busy: run.busy,
        fetch_time,
    }
}

/// Counts the extensions of one row via the kernel count twins.
#[allow(clippy::too_many_arguments)]
fn count_one_row(
    op: &ExtendOp,
    row: &[VertexId],
    ctx: &OpContext<'_>,
    batch_table: &HashMap<VertexId, Vec<VertexId>>,
    exts: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    tally: &mut KernelTally,
    list: ListKernel,
) -> u64 {
    if let Some(vpos) = op.verify_position {
        return verify_one_row(op, vpos, row, ctx, batch_table) as u64;
    }

    // Split the order filters: filters among bound positions gate the whole
    // row; filters against the candidate position become a value range.
    let n = row.len();
    let mut lo: Option<VertexId> = None;
    let mut hi: Option<VertexId> = None;
    for f in &op.filters {
        if f.larger == n {
            let b = row[f.smaller];
            lo = Some(lo.map_or(b, |x| x.max(b)));
        } else if f.smaller == n {
            let b = row[f.larger];
            hi = Some(hi.map_or(b, |x| x.min(b)));
        } else if row[f.smaller] >= row[f.larger] {
            return 0;
        }
    }
    let in_range = |x: VertexId| lo.is_none_or(|l| x > l) && hi.is_none_or(|h| x < h);
    fn range_slice(s: &[VertexId], lo: Option<VertexId>, hi: Option<VertexId>) -> &[VertexId] {
        let a = match lo {
            Some(l) => s.partition_point(|&x| x <= l),
            None => 0,
        };
        let b = match hi {
            Some(h) => s.partition_point(|&x| x < h),
            None => s.len(),
        };
        &s[a..b.max(a)]
    }
    // Distinct bound values that an unconstrained count would wrongly
    // include (injectivity corrections).
    let distinct = |idx: usize| !row[..idx].contains(&row[idx]);

    exts.clear();
    exts.extend(op.ext_positions.iter().map(|&p| row[p]));
    exts.sort_unstable_by_key(|&v| ctx.partition.degree(v));
    let (&last, rest) = exts.split_last().expect("extend needs positions");

    // Materialise every list except the largest.
    intersect_ext_lists(rest, ctx, batch_table, scratch, tally, list);
    let single = rest.is_empty();
    if !single && scratch.is_empty() {
        return 0;
    }

    if !single {
        if let Some(bm) = ctx.partition.hub_bitmap(last) {
            let s = range_slice(scratch, lo, hi);
            let mut count = kernels::intersect_count_bitmap(s, bm);
            tally.bump(KernelKind::Bitmap);
            for (idx, &r) in row.iter().enumerate() {
                if distinct(idx) && in_range(r) && bm.contains(r) && s.binary_search(&r).is_ok() {
                    count -= 1;
                }
            }
            return count;
        }
    }

    with_neighbours(ctx, batch_table, last, |nbrs| {
        let nb = range_slice(nbrs, lo, hi);
        if single {
            let mut count = nb.len() as u64;
            for (idx, &r) in row.iter().enumerate() {
                if distinct(idx) && in_range(r) && nb.binary_search(&r).is_ok() {
                    count -= 1;
                }
            }
            count
        } else {
            let s = range_slice(scratch, lo, hi);
            let (mut count, kind) = match list {
                ListKernel::Adaptive => kernels::intersect_count_adaptive(s, nb),
                ListKernel::Fixed(kind) => (kernels::intersect_count_with(s, nb, kind), kind),
            };
            tally.bump(kind);
            for (idx, &r) in row.iter().enumerate() {
                if distinct(idx)
                    && in_range(r)
                    && nb.binary_search(&r).is_ok()
                    && s.binary_search(&r).is_ok()
                {
                    count -= 1;
                }
            }
            count
        }
    })
    .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use huge_cache::PullCache;
    use huge_comm::stats::ClusterStats;
    use huge_comm::RpcFabric;
    use huge_graph::{gen, GraphPartition, Partitioner};
    use huge_plan::physical::CommMode;

    fn setup(k: usize) -> (Vec<GraphPartition>, RpcFabric) {
        let g = gen::complete(8);
        let parts = Partitioner::new(k).unwrap().partition(g);
        let stats = ClusterStats::new(k);
        let fabric = RpcFabric::new(Arc::new(parts.clone()), stats);
        (parts, fabric)
    }

    fn ctx<'a>(
        machine: usize,
        parts: &'a [GraphPartition],
        rpc: &'a RpcFabric,
        cache: &'a dyn PullCache,
        pool: &'a WorkerPool,
    ) -> OpContext<'a> {
        OpContext {
            machine,
            partition: &parts[machine],
            rpc,
            cache,
            use_cache: true,
            pool,
            batch_size: 1024,
        }
    }

    #[test]
    fn scan_produces_all_directed_edges() {
        let (parts, rpc) = setup(2);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let mut total = 0;
        for m in 0..2 {
            let c = ctx(m, &parts, &rpc, &cache, &pool);
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![],
            };
            let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[m].local_vertices(), 4));
            while let Some(batch) = cursor.next_batch(&c) {
                total += batch.len();
            }
        }
        // K8 has 28 undirected edges -> 56 directed pairs across machines.
        assert_eq!(total, 56);
    }

    #[test]
    fn scan_respects_order_filters() {
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let scan = ScanOp {
            src: 0,
            dst: 1,
            filters: vec![OrderFilter {
                smaller: 0,
                larger: 1,
            }],
        };
        let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[0].local_vertices(), 4));
        let mut total = 0;
        while let Some(batch) = cursor.next_batch(&c) {
            for row in batch.rows() {
                assert!(row[0] < row[1]);
            }
            total += batch.len();
        }
        assert_eq!(total, 28);
    }

    #[test]
    fn extend_counts_triangles_on_k8() {
        let (parts, rpc) = setup(2);
        let pool = WorkerPool::new(2, crate::config::LoadBalance::WorkStealing);
        let mut total = 0;
        for m in 0..2 {
            let cache = huge_cache::LrbuCache::new(1 << 20);
            let c = ctx(m, &parts, &rpc, &cache, &pool);
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![OrderFilter {
                    smaller: 0,
                    larger: 1,
                }],
            };
            let ext = ExtendOp {
                target: 2,
                ext_positions: vec![0, 1],
                verify_position: None,
                filters: vec![OrderFilter {
                    smaller: 1,
                    larger: 2,
                }],
                comm: CommMode::Pulling,
            };
            let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[m].local_vertices(), 2));
            while let Some(batch) = cursor.next_batch(&c) {
                let out = run_extend(&ext, &batch, &c);
                total += out.batch.len();
            }
        }
        // K8 has C(8,3) = 56 triangles.
        assert_eq!(total, 56);
    }

    #[test]
    fn verify_extend_checks_membership() {
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        // Rows over K8 vertices: verify that column 0 is adjacent to column 1.
        let mut input = RowBatch::new(2);
        input.push_row(&[0, 1]);
        input.push_row(&[2, 2]); // self pair: 2 is not its own neighbour
        let op = ExtendOp {
            target: 0,
            ext_positions: vec![1],
            verify_position: Some(0),
            filters: vec![],
            comm: CommMode::Pulling,
        };
        let out = run_extend(&op, &input, &c);
        assert_eq!(out.batch.len(), 1);
        assert_eq!(out.batch.row(0), &[0, 1]);
    }

    #[test]
    fn extend_without_cache_uses_batch_table() {
        let (parts, rpc) = setup(2);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let mut c = ctx(0, &parts, &rpc, &cache, &pool);
        c.use_cache = false;
        let mut input = RowBatch::new(2);
        input.push_row(&[0, 1]);
        let op = ExtendOp {
            target: 2,
            ext_positions: vec![0, 1],
            verify_position: None,
            filters: vec![],
            comm: CommMode::Pulling,
        };
        let out = run_extend(&op, &input, &c);
        // All other 6 vertices of K8 complete the triangle.
        assert_eq!(out.batch.len(), 6);
        assert_eq!(cache.len(), 0, "cache must stay untouched when disabled");
    }

    #[test]
    fn scan_pool_stealing() {
        let pool = ScanPool::new(&(0..100u32).collect::<Vec<_>>(), 10);
        let stolen = pool.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(pool.remaining_vertices(), 50);
        let other = ScanPool::empty();
        other.add_chunks(stolen);
        assert_eq!(other.remaining_vertices(), 50);
        assert!(!other.is_empty());
    }

    #[test]
    fn columnar_extend_matches_row_major_on_k8() {
        let (parts, rpc) = setup(2);
        let pool = WorkerPool::new(2, crate::config::LoadBalance::WorkStealing);
        let mut row_total = 0;
        let mut col_total = 0;
        let mut count_total = 0;
        for m in 0..2 {
            let cache = huge_cache::LrbuCache::new(1 << 20);
            let c = ctx(m, &parts, &rpc, &cache, &pool);
            let scan = ScanOp {
                src: 0,
                dst: 1,
                filters: vec![OrderFilter {
                    smaller: 0,
                    larger: 1,
                }],
            };
            let ext = ExtendOp {
                target: 2,
                ext_positions: vec![0, 1],
                verify_position: None,
                filters: vec![OrderFilter {
                    smaller: 1,
                    larger: 2,
                }],
                comm: CommMode::Pulling,
            };
            let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[m].local_vertices(), 2));
            while let Some(batch) = cursor.next_batch(&c) {
                row_total += run_extend(&ext, &batch, &c).batch.len();
                let cols = ColBatch::from_rows(&batch);
                count_total += run_extend_count_cols(&ext, &cols, &c).count;
                let out = run_extend_cols(&ext, cols, &c);
                assert_eq!(out.batch.arity(), 3);
                col_total += out.batch.len();
            }
        }
        // K8 has C(8,3) = 56 triangles; all three paths must agree.
        assert_eq!(row_total, 56);
        assert_eq!(col_total, 56);
        assert_eq!(count_total, 56);
        // The columnar paths dispatched kernels and charged column bytes.
        let total = rpc.stats().total();
        assert!(total.kernel_invocations() > 0);
        assert!(total.col_bytes > 0);
    }

    #[test]
    fn columnar_verify_narrows_selection_without_copying() {
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let mut input = ColBatch::new(2);
        input.push_row(&[0, 1]);
        input.push_row(&[2, 2]); // self pair: 2 is not its own neighbour
        input.push_row(&[3, 5]);
        let op = ExtendOp {
            target: 0,
            ext_positions: vec![1],
            verify_position: Some(0),
            filters: vec![],
            comm: CommMode::Pulling,
        };
        let out = run_extend_cols(&op, input, &c);
        assert_eq!(out.batch.len(), 2);
        assert_eq!(out.batch.physical_rows(), 3, "verify must not compact");
        assert_eq!(out.batch.selection(), Some(&[0, 2][..]));
        assert_eq!(out.batch.value(0, 1), 3);
        assert_eq!(out.batch.to_rows().row(0), &[0, 1]);
    }

    #[test]
    fn batch_kernel_plan_reflects_degree_spread() {
        let ext = ExtendOp {
            target: 2,
            ext_positions: vec![0, 1],
            verify_position: None,
            filters: vec![],
            comm: CommMode::Pulling,
        };

        // Balanced degrees (K8: every vertex has degree 7) → merge.
        let (parts, rpc) = setup(1);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let mut balanced = ColBatch::new(2);
        balanced.push_row(&[0, 1]);
        assert_eq!(plan_batch_kernel(&ext, &balanced, &c), KernelKind::Merge);

        // Empty batches and single-list extensions have nothing to pick.
        let empty = ColBatch::new(2);
        assert_eq!(plan_batch_kernel(&ext, &empty, &c), KernelKind::Merge);

        // ≥ GALLOP_RATIO× degree spread between the extend columns → gallop.
        let mut edges: Vec<(VertexId, VertexId)> = (1..=512u32).map(|v| (0, v)).collect();
        edges.push((1, 2));
        edges.push((1, 3));
        let g = huge_graph::Graph::from_edges(edges);
        let parts = Partitioner::new(1).unwrap().partition(g);
        let stats = ClusterStats::new(1);
        let rpc = RpcFabric::new(Arc::new(parts.clone()), stats);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let mut skewed = ColBatch::new(2);
        skewed.push_row(&[1, 0]); // degree 3 vs. degree 512
        assert_eq!(plan_batch_kernel(&ext, &skewed, &c), KernelKind::Gallop);
    }

    #[test]
    fn columnar_count_uses_hub_bitmaps() {
        let g = gen::barabasi_albert(400, 6, 3);
        let mut parts = Partitioner::new(1).unwrap().partition(g);
        parts[0].build_hub_index(8); // low threshold: plenty of hubs
        let stats = ClusterStats::new(1);
        let rpc = RpcFabric::new(Arc::new(parts.clone()), stats);
        let cache = huge_cache::LrbuCache::new(1 << 20);
        let pool = WorkerPool::new(1, crate::config::LoadBalance::WorkStealing);
        let c = ctx(0, &parts, &rpc, &cache, &pool);
        let scan = ScanOp {
            src: 0,
            dst: 1,
            filters: vec![OrderFilter {
                smaller: 0,
                larger: 1,
            }],
        };
        let ext = ExtendOp {
            target: 2,
            ext_positions: vec![0, 1],
            verify_position: None,
            filters: vec![OrderFilter {
                smaller: 1,
                larger: 2,
            }],
            comm: CommMode::Pulling,
        };
        let mut row_total = 0u64;
        let mut count_total = 0u64;
        let mut cursor = ScanCursor::new(scan, ScanPool::new(parts[0].local_vertices(), 64));
        while let Some(batch) = cursor.next_batch(&c) {
            row_total += run_extend(&ext, &batch, &c).batch.len() as u64;
            let cols = ColBatch::from_rows(&batch);
            count_total += run_extend_count_cols(&ext, &cols, &c).count;
        }
        assert_eq!(count_total, row_total);
        let snap = rpc.stats().total();
        assert!(
            snap.kernel_bitmap > 0,
            "hub bitmaps must be dispatched on a BA graph: {snap:?}"
        );
    }
}
