//! The public entry point: [`HugeCluster`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use huge_comm::stats::ClusterStats;
use huge_comm::{LinkFault, LinkFaultKind, Router, RouterTrace, RpcFabric, TransportConfig};
use huge_graph::{Graph, GraphStats, Partitioner};
use huge_plan::baselines::{plug_into_huge, BaselineSystem};
use huge_plan::cost::{CostModel, HybridEstimator};
use huge_plan::logical::ExecutionPlan;
use huge_plan::optimizer::{Optimizer, OptimizerOptions};
use huge_plan::translate::{translate, Dataflow, SegmentSource};
use huge_query::QueryGraph;
use huge_trace::{kv, Recorder, TraceMode};

use crate::cancel::{CancelCause, CancelToken};
use crate::config::{ClusterConfig, Fault, SinkMode};
use crate::governor::MemoryGovernor;
use crate::machine::{MachineState, SegmentPlan, Terminal};
use crate::memory::MemoryTracker;
use crate::operators::ScanPool;
use crate::report::{merge_cache_stats, JoinReport, RunOutcome, RunReport};
use crate::scheduler::{RunShared, SegmentQueues, SegmentShared};
use crate::{EngineError, Result};

/// Size (in vertices) of the stealable scan chunks.
const SCAN_CHUNK_VERTICES: usize = 1024;

/// A simulated HUGE cluster bound to one data graph.
///
/// Build it once per graph; every call to [`HugeCluster::run`] (or its
/// variants) executes one query and returns a [`RunReport`] with the
/// measurements the paper reports (T, T_R, T_C, C, M, cache statistics,
/// per-machine break-downs).
pub struct HugeCluster {
    config: ClusterConfig,
    partitions: Arc<Vec<huge_graph::GraphPartition>>,
    stats: GraphStats,
    estimator: HybridEstimator,
}

impl HugeCluster {
    /// Partitions `graph` over the configured number of machines and
    /// prepares the cluster.
    pub fn build(graph: Graph, config: ClusterConfig) -> Result<Self> {
        config.validate().map_err(EngineError::Config)?;
        let stats = GraphStats::of_cheap(&graph);
        let estimator = HybridEstimator::from_graph(&graph);
        let mut partitions = Partitioner::new(config.machines)?.partition(graph);
        // Hub bitmaps are built once per partition and shared by every run on
        // this cluster (the intersection kernels dispatch on them).
        for p in &mut partitions {
            p.build_hub_index(config.hub_degree_threshold);
        }
        Ok(HugeCluster {
            config,
            partitions: Arc::new(partitions),
            stats,
            estimator,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Summary statistics of the data graph.
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The cost model used by the optimiser for this cluster.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.config.machines, self.stats.num_edges)
            .with_avg_degree(self.stats.avg_degree)
    }

    /// Computes HUGE's optimal execution plan (Algorithm 1) for `query`.
    pub fn plan(&self, query: &QueryGraph) -> Result<ExecutionPlan> {
        Ok(Optimizer::new(&self.estimator, self.cost_model()).optimize(query)?)
    }

    /// Computes a plan with custom optimiser options (used by ablations).
    pub fn plan_with_options(
        &self,
        query: &QueryGraph,
        options: OptimizerOptions,
    ) -> Result<ExecutionPlan> {
        Ok(Optimizer::new(&self.estimator, self.cost_model())
            .with_options(options)
            .optimize(query)?)
    }

    /// Plans and runs `query`, counting (and optionally collecting) matches.
    pub fn run(&self, query: &QueryGraph, sink: SinkMode) -> Result<RunReport> {
        let plan = self.plan(query)?;
        self.run_with_plan(&plan, sink)
    }

    /// Plans and runs `query` under an externally-held [`CancelToken`]:
    /// calling [`CancelToken::cancel`] from any thread makes the run unwind
    /// cooperatively and return [`EngineError::Cancelled`] carrying the
    /// partial-stats report. [`ClusterConfig::deadline`] arms the same token.
    pub fn run_with_cancel(
        &self,
        query: &QueryGraph,
        sink: SinkMode,
        cancel: CancelToken,
    ) -> Result<RunReport> {
        let plan = self.plan(query)?;
        let dataflow = translate(&plan)?;
        self.run_dataflow_with_cancel(&dataflow, sink, cancel)
    }

    /// Runs a baseline system's *logical* plan on the HUGE engine after
    /// re-configuring its physical settings by Equation 3 (the paper's
    /// HUGE-BENU / HUGE-RADS / HUGE-SEED / HUGE-WCO variants of Exp-1).
    pub fn run_plugged_baseline(
        &self,
        system: BaselineSystem,
        query: &QueryGraph,
        sink: SinkMode,
    ) -> Result<RunReport> {
        let plan = plug_into_huge(system, query)?;
        self.run_with_plan(&plan, sink)
    }

    /// Runs an already-computed execution plan.
    pub fn run_with_plan(&self, plan: &ExecutionPlan, sink: SinkMode) -> Result<RunReport> {
        let dataflow = translate(plan)?;
        self.run_dataflow(&dataflow, sink)
    }

    /// Executes a translated dataflow.
    pub fn run_dataflow(&self, dataflow: &Dataflow, sink: SinkMode) -> Result<RunReport> {
        self.run_dataflow_with_cancel(dataflow, sink, CancelToken::new())
    }

    /// Executes a translated dataflow under an externally-held cancel token.
    pub fn run_dataflow_with_cancel(
        &self,
        dataflow: &Dataflow,
        sink: SinkMode,
        cancel: CancelToken,
    ) -> Result<RunReport> {
        // A fault aimed at a segment the plan does not have would silently
        // never fire; reject it now that the segment count is known.
        self.config
            .validate_fault_segments(dataflow.segments.len())
            .map_err(EngineError::Config)?;
        if let Some(deadline) = self.config.deadline {
            cancel.arm_deadline(deadline);
        }
        let k = self.config.machines;
        // The run's flight recorder owns the shared clock (t=0 on every
        // track), the span gate and the metrics registry. It exists in every
        // mode — counters and per-segment aggregates are always collected;
        // span rings only record in `TraceMode::Full`.
        let recorder = Recorder::new(self.config.tracing);
        let comm_stats = ClusterStats::new(k);
        // Bounded, event-driven router: producers see backpressure when a
        // destination inbox fills; consumers park on it instead of spinning.
        let mut router =
            Router::with_capacity(k, comm_stats.clone(), self.config.router_queue_rows.max(1));
        if self.config.unreliable_transport {
            let faults = self
                .config
                .fault_plan
                .iter()
                .filter_map(|spec| {
                    let kind = match spec.fault {
                        Fault::DropBatch { ppm } => LinkFaultKind::Drop { ppm },
                        Fault::DuplicateBatch { ppm } => LinkFaultKind::Duplicate { ppm },
                        Fault::ReorderWindow { window } => LinkFaultKind::Reorder { window },
                        Fault::SlowLink { delay } => LinkFaultKind::Slow { delay },
                        _ => return None,
                    };
                    Some(LinkFault {
                        machine: spec.machine,
                        segment: spec.segment,
                        kind,
                    })
                })
                .collect();
            router.set_transport(TransportConfig {
                seed: self.config.fault_seed,
                faults,
                ..TransportConfig::default()
            });
        }
        // The router's counter pack is cluster-wide (endpoints are cloned and
        // shared across threads); it must be installed before any endpoint is
        // minted below.
        router.set_trace(RouterTrace::register(recorder.registry()));
        let router = router;
        let rpc = RpcFabric::new(Arc::clone(&self.partitions), comm_stats.clone());
        let cache_bytes = self.config.effective_cache_bytes(self.stats.csr_bytes);
        let spill_root = spill_dir();

        // Per-machine trackers and the run's memory governor: the governor
        // watches the trackers and adjusts effective queue/inbox capacities
        // through shared handles (a no-op unless a budget is configured).
        let trackers: Vec<Arc<MemoryTracker>> =
            (0..k).map(|_| Arc::new(MemoryTracker::new())).collect();
        let governor = MemoryGovernor::new(
            &self.config,
            &trackers,
            router.endpoint(0),
            recorder.registry(),
        );

        // Per-machine state, persisted across segments.
        let mut machines: Vec<MachineState> = (0..k)
            .map(|m| {
                // Bytes queued in the machine's router inbox count towards
                // its intermediate-result memory (the paper's M).
                router.set_accounting(m, Arc::clone(&trackers[m]) as _);
                MachineState::new(
                    m,
                    self.partitions[m].clone(),
                    self.config.cache_kind.build(cache_bytes),
                    router.endpoint(m),
                    rpc.clone(),
                    Arc::clone(&trackers[m]),
                    Arc::clone(&governor),
                    self.config.clone(),
                    spill_root.join(format!("machine-{m}")),
                )
            })
            .collect();

        // Work out each segment's terminal and (for joins) producer arities,
        // then pre-instantiate every join segment's PUSH-JOIN on each machine
        // so shuffled inputs stream into the builds as they arrive.
        let segment_plans = build_segment_plans(dataflow);
        for (m, state) in machines.iter_mut().enumerate() {
            // One flight-recorder track per machine thread, with a per-run
            // aggregate slot for every segment. The single-writer ring moves
            // into the machine; the recorder keeps the read side.
            let trace = recorder.ring(m as u32, format!("machine-{m}"), segment_plans.len());
            state.prepare_run(&segment_plans, trace, cancel.clone());
        }

        // Pre-build every segment's cross-machine state (stealable scan
        // pools, operator queues, end-of-stream counters) up front, so the
        // pipelined scheduler never synchronises to set a segment up.
        let shared_segments: Vec<SegmentShared> = segment_plans
            .iter()
            .map(|plan| {
                let scan_pools: Vec<ScanPool> = (0..k)
                    .map(|m| match &plan.segment.source {
                        SegmentSource::Scan(_) => {
                            ScanPool::new(self.partitions[m].local_vertices(), SCAN_CHUNK_VERTICES)
                        }
                        SegmentSource::Join(_) => ScanPool::empty(),
                    })
                    .collect();
                let num_ops = 1 + plan.segment.extends.len();
                let queues: Vec<Arc<SegmentQueues>> = (0..k)
                    .map(|m| {
                        // Every queue of machine m reads its *effective*
                        // capacity from the governor's per-machine handle
                        // (initialised to the configured capacity).
                        Arc::new(SegmentQueues::governed(
                            num_ops,
                            governor.queue_capacity_handle(m),
                            Some(Arc::clone(&machines[m].memory)),
                        ))
                    })
                    .collect();
                SegmentShared {
                    scan_pools,
                    queues,
                    idle: (0..k).map(|_| AtomicBool::new(false)).collect(),
                    remaining: AtomicUsize::new(k),
                }
            })
            .collect();
        let run_shared = RunShared::new(shared_segments, cancel.clone());

        let threads_spawned = AtomicUsize::new(0);
        let start = Instant::now();
        let run_result: Result<()> = if self.config.pipeline_segments {
            // Barrier-free execution: one thread per machine for the whole
            // run; each drives all segments through the dataflow scheduler.
            let mut outcome: Vec<Result<()>> = Vec::with_capacity(k);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(k);
                for state in machines.iter_mut() {
                    let run_shared = &run_shared;
                    let segment_plans = &segment_plans;
                    threads_spawned.fetch_add(1, Ordering::Relaxed);
                    handles
                        .push(scope.spawn(move || state.run_all(segment_plans, run_shared, sink)));
                }
                for handle in handles {
                    outcome.push(match handle.join() {
                        Ok(res) => res,
                        Err(_) => Err(EngineError::WorkerPanic(
                            "machine thread panicked".to_string(),
                        )),
                    });
                }
            });
            collapse_outcomes(outcome)
        } else {
            // Historic barriered execution: machine threads are spawned and
            // joined per segment (the escape hatch the `barrier` experiment
            // quantifies).
            let mut res = Ok(());
            for (idx, plan) in segment_plans.iter().enumerate() {
                let mut outcome: Vec<Result<()>> = Vec::with_capacity(k);
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(k);
                    for state in machines.iter_mut() {
                        let run_shared = &run_shared;
                        threads_spawned.fetch_add(1, Ordering::Relaxed);
                        handles.push(
                            scope.spawn(move || state.run_segment(idx, plan, run_shared, sink)),
                        );
                    }
                    for handle in handles {
                        outcome.push(match handle.join() {
                            Ok(res) => res,
                            Err(_) => Err(EngineError::WorkerPanic(
                                "machine thread panicked".to_string(),
                            )),
                        });
                    }
                });
                res = collapse_outcomes(outcome);
                if res.is_err() {
                    break;
                }
            }
            res
        };
        let compute_time = start.elapsed();

        // Teardown sweep — runs whatever the outcome. Finishing each machine
        // drains its inbox and drops unfinished joins (their `Drop` impls
        // release buffered bytes and delete spill files); the shared operator
        // queues are drained explicitly (popping releases the tracked
        // charge). Only then are the trackers and the spill root audited, so
        // a cancelled or failed run is held to the same no-leak standard as a
        // completed one.
        for state in machines.iter_mut() {
            state.finish_run();
        }
        for seg in &run_shared.segments {
            for queues in &seg.queues {
                for op in 0..queues.len() {
                    while queues.queue(op).pop().is_some() {}
                }
            }
        }
        let leaked_bytes: u64 = trackers.iter().map(|t| t.current()).sum();
        let orphaned_spill_files = count_files_under(&spill_root);
        let _ = std::fs::remove_dir_all(&spill_root);

        // Hard failures (panics, config errors, transport exhaustion) keep
        // their error; cancellation and deadline expiry carry the partial
        // report out through the typed error below.
        let run_err = match run_result {
            Ok(()) => None,
            Err(e @ (EngineError::Cancelled(_) | EngineError::DeadlineExceeded(_))) => Some(e),
            Err(e) => return Err(e),
        };
        let outcome = match &run_err {
            None => RunOutcome::Completed,
            Some(EngineError::Cancelled(_)) => RunOutcome::Cancelled,
            Some(_) => RunOutcome::DeadlineExceeded,
        };
        // Place the cancellation/deadline on the timeline at the instant the
        // token's winning CAS actually fired, not at teardown time.
        if let Some(fired) = cancel.fired_at() {
            let name = match cancel.cause() {
                Some(CancelCause::DeadlineExceeded) => "deadline_exceeded",
                _ => "cancelled",
            };
            recorder.global_instant(name, recorder.micros_at(fired), kv("machines", k as u64));
        }

        // Aggregate the report.
        let comm_total = comm_stats.total();
        let comm_time = self.config.network.time_for_snapshot(&comm_total);
        let machine_reports: Vec<_> = machines.iter().map(|m| m.report()).collect();
        let matches = machine_reports.iter().map(|m| m.matches).sum();
        let mut samples: Vec<Vec<u32>> = Vec::new();
        if let SinkMode::Collect(limit) = sink {
            for m in &machines {
                for s in &m.samples {
                    if samples.len() >= limit {
                        break;
                    }
                    samples.push(s.clone());
                }
            }
        }
        let cache = merge_cache_stats(machines.iter().map(|m| m.cache.stats()));
        let fetch_time = machines
            .iter()
            .map(|m| m.fetch_time)
            .max()
            .unwrap_or_default();
        let peak_memory_bytes = machines.iter().map(|m| m.memory.peak()).max().unwrap_or(0);
        let mut join = JoinReport::default();
        for m in &machine_reports {
            join.merge(&m.join);
        }
        let governor_report = governor.report(peak_memory_bytes);

        // Flight-recorder export. The rings were drained by their owning
        // machine threads, which have all joined above, so the snapshot is
        // safe. Run-level outcomes are folded into the registry here (the
        // live counters — router, governor — accumulated during the run).
        let (trace, metrics) = if recorder.mode() == TraceMode::Off {
            (None, None)
        } else {
            let reg = recorder.registry();
            reg.counter("huge_matches_total", "Matches counted by the sinks")
                .add(matches);
            reg.counter(
                "huge_steal_batches_total",
                "Batches obtained through inter-machine scan stealing",
            )
            .add(machine_reports.iter().map(|m| m.batches_stolen).sum());
            reg.counter(
                "huge_join_partitions_shipped_total",
                "Grace partitions shipped to thieves (victim side)",
            )
            .add(join.partitions_shipped);
            reg.counter(
                "huge_join_partitions_stolen_total",
                "Grace partitions adopted and probed by thieves",
            )
            .add(join.partitions_stolen);
            reg.counter(
                "huge_join_speculative_seals_total",
                "Join segments sealed on EOS evidence ahead of the counters",
            )
            .add(join.speculative_seals);
            reg.counter(
                "huge_spill_bytes_total",
                "Join build bytes spilled to disk under Red pressure",
            )
            .add(
                governor_report
                    .as_ref()
                    .map(|g| g.spilled_bytes)
                    .unwrap_or(0),
            );
            let compute_ms = reg.histogram(
                "huge_machine_compute_ms",
                "Per-machine active compute time per run (milliseconds)",
                &[1, 5, 10, 50, 100, 500, 1000, 5000, 10000],
            );
            for m in &machine_reports {
                compute_ms.observe(m.compute_time.as_millis() as u64);
            }
            let timeline = recorder.timeline();
            let mut summary = timeline.summary();
            summary.segments = recorder.segment_breakdown();
            if recorder.mode() == TraceMode::Full {
                summary.chrome_json = Some(timeline.chrome_json());
            }
            (Some(summary), Some(reg.prometheus_text()))
        };

        let report = RunReport {
            query: dataflow.query.name().to_string(),
            matches,
            sample_matches: samples,
            compute_time,
            comm_time,
            comm_bytes: comm_total.total_bytes(),
            comm: comm_total,
            peak_memory_bytes,
            cache,
            fetch_time,
            pipelined: self.config.pipeline_segments,
            machine_threads_spawned: threads_spawned.load(Ordering::Relaxed),
            governor: governor_report,
            join,
            machines: machine_reports,
            outcome,
            leaked_bytes,
            orphaned_spill_files,
            trace,
            metrics,
        };
        match run_err {
            None => Ok(report),
            Some(EngineError::Cancelled(_)) => Err(EngineError::Cancelled(Some(Box::new(report)))),
            Some(_) => Err(EngineError::DeadlineExceeded(Some(Box::new(report)))),
        }
    }
}

/// Counts regular files left under `root` (recursively) — spill files a
/// finished run failed to delete.
fn count_files_under(root: &std::path::Path) -> u64 {
    fn walk(dir: &std::path::Path, n: &mut u64) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, n);
            } else {
                *n += 1;
            }
        }
    }
    let mut n = 0;
    walk(root, &mut n);
    n
}

/// Collapses per-machine outcomes into one. Priority: a root-cause error
/// (panic, config, transport) beats the typed `Cancelled`/`DeadlineExceeded`
/// outcomes, which beat the `Aborted` errors peers report when bailing out
/// of a run someone else ended.
fn collapse_outcomes(outcome: Vec<Result<()>>) -> Result<()> {
    let mut aborted: Option<EngineError> = None;
    let mut cancelled: Option<EngineError> = None;
    for res in outcome {
        match res {
            Ok(()) => {}
            Err(e @ EngineError::Aborted(_)) => {
                if aborted.is_none() {
                    aborted = Some(e);
                }
            }
            Err(e @ (EngineError::Cancelled(_) | EngineError::DeadlineExceeded(_))) => {
                if cancelled.is_none() {
                    cancelled = Some(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    match (cancelled, aborted) {
        (Some(e), _) | (None, Some(e)) => Err(e),
        (None, None) => Ok(()),
    }
}

/// Derives every segment's terminal role and producer arities.
fn build_segment_plans(dataflow: &Dataflow) -> Vec<SegmentPlan> {
    let root_id = dataflow.root().id;
    dataflow
        .segments
        .iter()
        .map(|segment| {
            let terminal = if segment.id == root_id {
                Terminal::Sink
            } else {
                // Find the join that consumes this segment.
                let consumer = dataflow
                    .segments
                    .iter()
                    .find_map(|candidate| match &candidate.source {
                        SegmentSource::Join(j) if j.left == segment.id => {
                            Some((candidate.id, j.key_left.clone()))
                        }
                        SegmentSource::Join(j) if j.right == segment.id => {
                            Some((candidate.id, j.key_right.clone()))
                        }
                        _ => None,
                    })
                    .expect("non-root segments feed exactly one join");
                Terminal::FeedJoin {
                    consumer: consumer.0,
                    key_positions: consumer.1,
                }
            };
            let producer_arities = match &segment.source {
                SegmentSource::Scan(_) => None,
                SegmentSource::Join(j) => Some((
                    dataflow.segments[j.left].schema.len(),
                    dataflow.segments[j.right].schema.len(),
                )),
            };
            SegmentPlan {
                segment: segment.clone(),
                terminal,
                producer_arities,
            }
        })
        .collect()
}

fn spill_dir() -> PathBuf {
    let unique = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    std::env::temp_dir().join(format!("huge-spill-{}-{}", std::process::id(), unique))
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::{naive, Pattern};

    fn check_against_naive(graph: Graph, pattern: Pattern, config: ClusterConfig) {
        let query = pattern.query_graph();
        let expected = naive::enumerate(&graph, &query);
        let cluster = HugeCluster::build(graph, config).unwrap();
        let report = cluster.run(&query, SinkMode::Count).unwrap();
        assert_eq!(report.matches, expected, "{pattern:?}");
    }

    #[test]
    fn triangle_count_matches_reference() {
        let g = gen::erdos_renyi(300, 1800, 7);
        check_against_naive(g, Pattern::Triangle, ClusterConfig::new(3).workers(2));
    }

    #[test]
    fn square_count_matches_reference() {
        let g = gen::erdos_renyi(200, 900, 11);
        check_against_naive(g, Pattern::Square, ClusterConfig::new(2).workers(2));
    }

    #[test]
    fn four_clique_count_matches_reference() {
        let g = gen::barabasi_albert(300, 8, 3);
        check_against_naive(g, Pattern::FourClique, ClusterConfig::new(4).workers(1));
    }

    #[test]
    fn single_machine_also_correct() {
        let g = gen::caveman(10, 6, 5);
        check_against_naive(g, Pattern::ChordalSquare, ClusterConfig::new(1).workers(1));
    }

    #[test]
    fn collect_mode_returns_valid_matches() {
        let g = gen::complete(7);
        let query = Pattern::Triangle.query_graph();
        let cluster = HugeCluster::build(g.clone(), ClusterConfig::new(2)).unwrap();
        let report = cluster.run(&query, SinkMode::Collect(10)).unwrap();
        assert_eq!(report.matches, 35);
        assert!(!report.sample_matches.is_empty());
        for m in &report.sample_matches {
            assert_eq!(m.len(), 3);
            // Every pair must be an edge of the data graph.
            assert!(g.has_edge(m[0], m[1]));
            assert!(g.has_edge(m[1], m[2]));
            assert!(g.has_edge(m[0], m[2]));
        }
    }

    #[test]
    fn report_contains_traffic_and_memory() {
        let g = gen::barabasi_albert(500, 6, 9);
        let cluster = HugeCluster::build(g, ClusterConfig::new(4).workers(2)).unwrap();
        let report = cluster
            .run(&Pattern::Square.query_graph(), SinkMode::Count)
            .unwrap();
        assert!(report.matches > 0);
        assert!(report.comm_bytes > 0, "pulling must be accounted");
        assert!(report.peak_memory_bytes > 0);
        assert!(report.total_time() >= report.compute_time);
        assert_eq!(report.machines.len(), 4);
    }
}
