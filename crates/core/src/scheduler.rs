//! Scheduling primitives: the bounded output queues of the BFS/DFS-adaptive
//! scheduler (§5.2), the cross-machine per-segment state, and the readiness
//! policy of the per-machine dataflow scheduler.
//!
//! Every operator owns a fixed-capacity output queue. The adaptive scheduler
//! (Algorithm 5, implemented in [`crate::machine`]) keeps feeding an operator
//! as long as its queue has room, yields to the successor when the queue
//! fills (BFS-like behaviour under low memory pressure degrades gracefully to
//! DFS-like behaviour under high pressure), and backtracks when inputs drain.
//! Because queues are shared, idle machines can also steal whole batches from
//! a remote machine's queues — the inter-machine half of work stealing.
//!
//! # Cross-segment readiness
//!
//! With `pipeline_segments` on there is no barrier between segments: each
//! machine thread drives *all* segments of the dataflow through a small state
//! machine ([`SegmentState`]) and picks what to run next by readiness:
//!
//! * a **scan** segment is always runnable;
//! * a **join** segment becomes runnable (its `PUSH-JOIN` may be sealed and
//!   polled) once every producer segment has been finished by *every*
//!   machine — tracked by the per-segment [`SegmentShared::remaining`]
//!   counter, which doubles as the end-of-stream signal for the shuffle
//!   envelopes demultiplexed by the router.
//!
//! Among the runnable segments the scheduler prefers the *deepest* one
//! (highest id, closest to the sink): draining consumers first bounds the
//! intermediate memory exactly like the intra-segment DFS bias of Algorithm 5
//! (the paper's Exp-7 argument). A producer blocked on shuffle backpressure
//! never deadlocks: it absorbs its own inbox while it waits, so the machines
//! it is pushing to always eventually drain it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use huge_comm::ColBatch;
use parking_lot::Mutex;

use crate::memory::MemoryTracker;
use crate::operators::ScanPool;

/// A shared, capacity-aware queue of columnar batches.
///
/// The capacity is *soft*: the producing operator checks [`SharedQueue::is_full`]
/// after each batch (the paper lets a queue overflow by at most the results
/// of one batch, which is what makes the memory bound `O(|V_q| · D_G)` per
/// operator rather than zero-overflow-but-deadlock-prone).
pub struct SharedQueue {
    batches: Mutex<VecDeque<ColBatch>>,
    rows: AtomicUsize,
    /// The *effective* row capacity. Queues created through
    /// [`SharedQueue::governed`] share one handle per machine, so the memory
    /// governor can shrink/grow every queue of a machine with a single
    /// store; [`SharedQueue::new`] wraps a private handle for the static
    /// case.
    capacity_rows: Arc<AtomicUsize>,
    memory: Option<Arc<MemoryTracker>>,
}

impl SharedQueue {
    /// Creates a queue with a fixed row capacity.
    pub fn new(capacity_rows: usize, memory: Option<Arc<MemoryTracker>>) -> Self {
        SharedQueue::governed(Arc::new(AtomicUsize::new(capacity_rows)), memory)
    }

    /// Creates a queue whose effective capacity is read from a shared,
    /// runtime-adjustable handle (the memory governor's actuator for
    /// operator output queues).
    pub fn governed(capacity_rows: Arc<AtomicUsize>, memory: Option<Arc<MemoryTracker>>) -> Self {
        SharedQueue {
            batches: Mutex::new(VecDeque::new()),
            rows: AtomicUsize::new(0),
            capacity_rows,
            memory,
        }
    }

    /// The current effective row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows.load(Ordering::Relaxed)
    }

    /// Number of rows currently queued.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Number of batches currently queued.
    pub fn len(&self) -> usize {
        self.batches.lock().len()
    }

    /// `true` when no batches are queued.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// `true` when the queue has reached (or overflowed) its capacity.
    pub fn is_full(&self) -> bool {
        self.rows() >= self.capacity_rows()
    }

    /// Enqueues a batch (always succeeds; capacity is checked by the caller
    /// after the fact, per the paper's "overflow by at most one batch").
    pub fn push(&self, batch: ColBatch) {
        if batch.is_empty() {
            return;
        }
        if let Some(m) = &self.memory {
            m.allocate(batch.byte_size());
        }
        self.rows.fetch_add(batch.len(), Ordering::Relaxed);
        self.batches.lock().push_back(batch);
    }

    /// Dequeues the oldest batch.
    pub fn pop(&self) -> Option<ColBatch> {
        let batch = self.batches.lock().pop_front();
        if let Some(b) = &batch {
            self.rows.fetch_sub(b.len(), Ordering::Relaxed);
            if let Some(m) = &self.memory {
                m.release(b.byte_size());
            }
        }
        batch
    }

    /// Steals up to half of the queued batches (from the back) directly into
    /// `dest`, transferring the memory accounting with them: each batch is
    /// registered against the destination's tracker *before* it is released
    /// from this queue's, so the cluster-wide sum of `current()` never
    /// undercounts the data actually held mid-steal. Returns the number of
    /// batches and bytes moved.
    pub fn steal_into(&self, dest: &SharedQueue) -> (u64, u64) {
        let stolen = {
            let mut guard = self.batches.lock();
            let take = guard.len() / 2;
            let mut stolen = Vec::with_capacity(take);
            for _ in 0..take {
                if let Some(b) = guard.pop_back() {
                    self.rows.fetch_sub(b.len(), Ordering::Relaxed);
                    stolen.push(b);
                }
            }
            stolen
        };
        let mut batches = 0u64;
        let mut bytes = 0u64;
        for b in stolen {
            let size = b.byte_size();
            batches += 1;
            bytes += size;
            // `push` allocates against the destination's tracker; only then
            // release the hand-off from ours.
            dest.push(b);
            if let Some(m) = &self.memory {
                m.release(size);
            }
        }
        (batches, bytes)
    }
}

/// The queues of one machine for one segment: one per operator
/// (index 0 = source, 1..=n = extends).
pub struct SegmentQueues {
    queues: Vec<Arc<SharedQueue>>,
}

impl SegmentQueues {
    /// Creates `num_ops` queues with the given (fixed) row capacity.
    pub fn new(num_ops: usize, capacity_rows: usize, memory: Option<Arc<MemoryTracker>>) -> Self {
        SegmentQueues::governed(num_ops, Arc::new(AtomicUsize::new(capacity_rows)), memory)
    }

    /// Creates `num_ops` queues sharing one runtime-adjustable capacity
    /// handle (see [`SharedQueue::governed`]).
    pub fn governed(
        num_ops: usize,
        capacity_rows: Arc<AtomicUsize>,
        memory: Option<Arc<MemoryTracker>>,
    ) -> Self {
        SegmentQueues {
            queues: (0..num_ops)
                .map(|_| {
                    Arc::new(SharedQueue::governed(
                        Arc::clone(&capacity_rows),
                        memory.clone(),
                    ))
                })
                .collect(),
        }
    }

    /// Number of operator queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// `true` when there are no queues.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The queue of operator `i`.
    pub fn queue(&self, i: usize) -> &Arc<SharedQueue> {
        &self.queues[i]
    }

    /// `true` when every queue is empty.
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Total rows across all queues (diagnostic).
    pub fn total_rows(&self) -> usize {
        self.queues.iter().map(|q| q.rows()).sum()
    }
}

/// Cross-machine shared state of one segment: every machine's stealable scan
/// pool and operator queues, plus the counters of the termination protocol.
/// Pre-built for *all* segments before any machine thread starts, so the
/// pipelined scheduler never synchronises to set up a segment.
pub struct SegmentShared {
    /// One scan pool per machine (empty for join segments).
    pub scan_pools: Vec<ScanPool>,
    /// One set of operator queues per machine.
    pub queues: Vec<Arc<SegmentQueues>>,
    /// Idle flags used by the work-stealing termination protocol.
    pub idle: Vec<AtomicBool>,
    /// Machines that have not yet finished this segment. Reaching zero is the
    /// segment's end-of-stream signal: every machine has executed (and
    /// flushed the shuffle output of) the segment, so a consuming join may
    /// absorb the last envelopes and seal its build.
    pub remaining: AtomicUsize,
}

impl SegmentShared {
    /// `true` once the segment is at end-of-stream: every machine has
    /// finished it, or — for stealable segments — every machine is *idle*
    /// on it. The idle clause matters for liveness: a machine goes idle the
    /// moment its own work is drained and nothing is stealable, but it
    /// releases its `remaining` slot lazily (on its next scheduler visit).
    /// Once all machines are idle simultaneously no chain can run and no
    /// envelope can still be produced (work for a segment only comes from
    /// stealing existing work, and there is none), so consumers may treat
    /// the shuffle as complete even while a straggler is busy inside another
    /// segment. Scan segments steal scan chunks and queued batches; join
    /// segments steal sealed Grace partitions over the router's control
    /// plane (`huge_comm::ControlMsg`), and their idle protocol additionally
    /// guarantees no machine advertises idleness while a `PartitionShip` it
    /// solicited could still be in flight. No-stealing configurations never
    /// set idle flags and rely on `remaining` alone.
    pub fn is_done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
            || (self.idle.len() > 1 && self.idle.iter().all(|f| f.load(Ordering::SeqCst)))
    }

    /// `true` once every machine has settled its `remaining` slot — the
    /// *coarse* end-of-stream gate. Unlike [`SegmentShared::is_done`] this
    /// never consults the idle flags: a machine's slot settles one scheduler
    /// visit *after* it broadcast its `ControlMsg::Eos` envelopes, which is
    /// exactly the gap speculative sealing exploits (a consumer holding EOS
    /// evidence from all `k` machines seals and probes before the counters
    /// drain).
    pub fn released(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }
}

/// Cross-machine shared state of one whole run: the per-segment state plus
/// the run-wide abort flag.
pub struct RunShared {
    /// Per-segment shared state, indexed by segment id.
    pub segments: Vec<SegmentShared>,
    /// Set when any machine fails (or panics) anywhere in the run: peers
    /// blocked on backpressure, stealing, readiness waits or the
    /// end-of-segment linger bail out instead of waiting for a machine that
    /// will never make progress. Under pipelined execution an abort fails the
    /// *whole run*, not one segment.
    pub aborted: AtomicBool,
    /// The run's cooperative cancellation token (explicit cancel and the
    /// configured deadline). Machines poll it at batch granularity alongside
    /// the abort flag; unlike an abort, a fired token makes each machine
    /// unwind with a typed `Cancelled`/`DeadlineExceeded` error.
    pub cancel: crate::cancel::CancelToken,
}

impl RunShared {
    /// Builds the run state for `segments` segment slots (the per-segment
    /// contents are supplied by the cluster, which knows pools and queues).
    pub fn new(segments: Vec<SegmentShared>, cancel: crate::cancel::CancelToken) -> Self {
        RunShared {
            segments,
            aborted: AtomicBool::new(false),
            cancel,
        }
    }

    /// Polls the cancellation token, surfacing the typed error once it
    /// fires. The single check every cooperative loop runs per batch.
    pub fn check_cancel(&self) -> crate::Result<()> {
        self.cancel.check()
    }

    /// Flags the run as failed.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// `true` when some machine failed.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// The counter readiness policy: a segment may start once every
    /// dependency's release counter has drained — every machine settled its
    /// slot (scan segments have no dependencies and are always ready). This
    /// is deliberately the *slow*, coarse gate: machines announce push
    /// completeness earlier through per-source `ControlMsg::Eos` envelopes
    /// on the router's control plane, and consumers with speculative
    /// sealing enabled act on that evidence without waiting for the
    /// counters (`MachineState::speculatively_ready`).
    pub fn ready(&self, dependencies: &[usize]) -> bool {
        dependencies.iter().all(|&d| self.segments[d].released())
    }
}

/// Where one machine stands with one segment under the pipelined scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentState {
    /// Not yet started (may be waiting on producer segments).
    NotStarted,
    /// The machine is actively executing the segment's operator chain.
    Running,
    /// Own work done; the machine revisits the segment to steal from peers
    /// until every machine is idle on it.
    Draining,
    /// All work done and the EOS envelopes broadcast; the `remaining` slot
    /// settles on the next scheduler visit. Consumers holding EOS evidence
    /// from every machine seal and probe inside this gap (speculative
    /// sealing) — counter-gated consumers wait it out.
    Releasing,
    /// Finished on this machine (its `remaining` slot has been released).
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> ColBatch {
        ColBatch::from_columns(vec![(0..n as u32).collect()])
    }

    #[test]
    fn push_pop_fifo() {
        let q = SharedQueue::new(100, None);
        q.push(batch(3));
        q.push(batch(5));
        assert_eq!(q.rows(), 8);
        assert_eq!(q.len(), 2);
        let first = q.pop().unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(q.rows(), 5);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_detection() {
        let q = SharedQueue::new(10, None);
        assert!(!q.is_full());
        q.push(batch(6));
        assert!(!q.is_full());
        q.push(batch(6));
        assert!(q.is_full());
        assert_eq!(q.capacity_rows(), 10);
    }

    #[test]
    fn governed_capacity_is_shared_and_adjustable() {
        let handle = Arc::new(AtomicUsize::new(100));
        let queues = SegmentQueues::governed(2, Arc::clone(&handle), None);
        queues.queue(0).push(batch(10));
        assert!(!queues.queue(0).is_full());
        // One store shrinks every queue behind the handle.
        handle.store(5, Ordering::Relaxed);
        assert!(queues.queue(0).is_full());
        assert!(!queues.queue(1).is_full());
        assert_eq!(queues.queue(1).capacity_rows(), 5);
        // Growing re-opens the queue without draining it.
        handle.store(50, Ordering::Relaxed);
        assert!(!queues.queue(0).is_full());
    }

    #[test]
    fn empty_batches_are_ignored() {
        let q = SharedQueue::new(10, None);
        q.push(ColBatch::new(2));
        assert!(q.is_empty());
    }

    #[test]
    fn memory_is_tracked() {
        let tracker = Arc::new(MemoryTracker::new());
        let q = SharedQueue::new(100, Some(Arc::clone(&tracker)));
        q.push(batch(10));
        assert_eq!(tracker.current(), 40);
        q.pop();
        assert_eq!(tracker.current(), 0);
        assert_eq!(tracker.peak(), 40);
    }

    #[test]
    fn steal_into_takes_from_the_back() {
        let q = SharedQueue::new(1000, None);
        for i in 1..=4 {
            q.push(batch(i));
        }
        let dest = SharedQueue::new(1000, None);
        let (batches, bytes) = q.steal_into(&dest);
        assert_eq!(batches, 2);
        assert_eq!(bytes, (4 + 3) * 4);
        // The back batches (largest in this construction) are stolen.
        assert_eq!(dest.pop().unwrap().len(), 4);
        assert_eq!(dest.pop().unwrap().len(), 3);
        assert_eq!(q.rows(), 1 + 2);
    }

    #[test]
    fn steal_into_conserves_memory_accounting() {
        let victim_tracker = Arc::new(MemoryTracker::new());
        let thief_tracker = Arc::new(MemoryTracker::new());
        let victim = SharedQueue::new(1000, Some(Arc::clone(&victim_tracker)));
        let thief = SharedQueue::new(1000, Some(Arc::clone(&thief_tracker)));
        for i in 1..=8 {
            victim.push(batch(i));
        }
        let before = victim_tracker.current() + thief_tracker.current();
        victim.steal_into(&thief);
        // Every stolen byte moved from the victim's tracker to the thief's.
        assert_eq!(victim_tracker.current() + thief_tracker.current(), before);
        assert!(thief_tracker.current() > 0);
        while thief.pop().is_some() {}
        while victim.pop().is_some() {}
        assert_eq!(victim_tracker.current() + thief_tracker.current(), 0);
    }

    #[test]
    fn readiness_follows_remaining_counters() {
        let seg = |remaining: usize| SegmentShared {
            scan_pools: vec![ScanPool::empty()],
            queues: vec![Arc::new(SegmentQueues::new(1, 10, None))],
            idle: vec![AtomicBool::new(false), AtomicBool::new(false)],
            remaining: AtomicUsize::new(remaining),
        };
        let run = RunShared::new(
            vec![seg(0), seg(2), seg(2)],
            crate::cancel::CancelToken::new(),
        );
        // Scan segments (no dependencies) are always ready.
        assert!(run.ready(&[]));
        // A join is ready only once every producer is globally done.
        assert!(run.ready(&[0]));
        assert!(!run.ready(&[0, 1]));
        // Idle flags feed `is_done` (drain-dance termination), never the
        // counter gate — EOS envelopes, not shared flags, are the fast path.
        run.segments[1].idle[0].store(true, Ordering::SeqCst);
        run.segments[1].idle[1].store(true, Ordering::SeqCst);
        assert!(run.segments[1].is_done(), "all-idle ends the drain dance");
        assert!(!run.ready(&[0, 1]));
        assert!(!run.segments[1].released());
        run.segments[1].remaining.store(0, Ordering::SeqCst);
        assert!(run.ready(&[0, 1]));
        assert!(run.segments[1].released());
        assert!(!run.is_aborted());
        run.abort();
        assert!(run.is_aborted());
    }

    #[test]
    fn segment_queues() {
        let sq = SegmentQueues::new(3, 10, None);
        assert_eq!(sq.len(), 3);
        assert!(sq.all_empty());
        sq.queue(1).push(batch(4));
        assert!(!sq.all_empty());
        assert_eq!(sq.total_rows(), 4);
    }
}
