//! The intra-machine worker pool.
//!
//! Each HUGE machine runs a pool of workers (§4.1). When an operator
//! processes a batch, the batch's rows are split into work items and the
//! pool executes them in parallel. With [`LoadBalance::WorkStealing`]
//! (HUGE's default) every worker owns a deque and idle workers steal from
//! the others — the intra-machine half of the paper's two-layer work
//! stealing (§5.3). The other strategies reproduce the Exp-8 comparison
//! points: `None` assigns items round-robin with no stealing (load follows
//! the pivot vertex, as in BENU), and `RegionGroup` assigns contiguous
//! ranges (RADS' region groups), which concentrates skew.

use std::time::{Duration, Instant};

use crossbeam::deque::{Steal, Stealer, Worker};

use crate::config::LoadBalance;

/// Output of a pool run: the items produced by each worker and how long each
/// worker stayed busy.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Items produced, grouped by worker.
    pub outputs: Vec<Vec<T>>,
    /// Busy time of each worker.
    pub busy: Vec<Duration>,
}

impl<T> PoolRun<T> {
    /// Flattens the per-worker outputs into one vector.
    pub fn into_flat(self) -> Vec<T> {
        self.outputs.into_iter().flatten().collect()
    }
}

/// A pool of `workers` intra-machine workers.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    workers: usize,
    strategy: LoadBalance,
}

impl WorkerPool {
    /// Creates a pool.
    pub fn new(workers: usize, strategy: LoadBalance) -> Self {
        WorkerPool {
            workers: workers.max(1),
            strategy,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured balancing strategy.
    pub fn strategy(&self) -> LoadBalance {
        self.strategy
    }

    /// Processes `items` in parallel; `f(item, out)` appends its results to
    /// `out`. Returns per-worker outputs and busy times.
    ///
    /// Falls back to inline execution when there is a single worker or a
    /// single item (avoiding thread-spawn overhead for tiny batches).
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> PoolRun<T>
    where
        I: Send,
        T: Send,
        F: Fn(I, &mut Vec<T>) + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            let start = Instant::now();
            let mut out = Vec::new();
            for item in items {
                f(item, &mut out);
            }
            let mut busy = vec![Duration::ZERO; self.workers];
            busy[0] = start.elapsed();
            let mut outputs: Vec<Vec<T>> = (0..self.workers).map(|_| Vec::new()).collect();
            outputs[0] = out;
            return PoolRun { outputs, busy };
        }

        // Distribute items into per-worker deques.
        let locals: Vec<Worker<I>> = (0..self.workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<I>> = locals.iter().map(|w| w.stealer()).collect();
        let n = items.len();
        for (idx, item) in items.into_iter().enumerate() {
            let target = match self.strategy {
                // Round-robin: even static split.
                LoadBalance::WorkStealing | LoadBalance::None => idx % self.workers,
                // Contiguous region groups.
                LoadBalance::RegionGroup => (idx * self.workers / n).min(self.workers - 1),
            };
            locals[target].push(item);
        }
        let allow_steal = self.strategy == LoadBalance::WorkStealing;

        let mut outputs: Vec<Vec<T>> = Vec::with_capacity(self.workers);
        let mut busy: Vec<Duration> = Vec::with_capacity(self.workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers);
            for (wid, local) in locals.into_iter().enumerate() {
                let stealers = &stealers;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut out: Vec<T> = Vec::new();
                    loop {
                        // Own work first (pop from the back of the deque).
                        if let Some(item) = local.pop() {
                            f(item, &mut out);
                            continue;
                        }
                        if !allow_steal {
                            break;
                        }
                        // Steal from a sibling (front of its deque).
                        let mut stolen = false;
                        for (other, stealer) in stealers.iter().enumerate() {
                            if other == wid {
                                continue;
                            }
                            match stealer.steal() {
                                Steal::Success(item) => {
                                    f(item, &mut out);
                                    stolen = true;
                                    break;
                                }
                                Steal::Empty | Steal::Retry => continue,
                            }
                        }
                        if !stolen {
                            break;
                        }
                    }
                    (out, start.elapsed())
                }));
            }
            for handle in handles {
                let (out, elapsed) = handle.join().expect("worker panicked");
                outputs.push(out);
                busy.push(elapsed);
            }
        });
        PoolRun { outputs, busy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_processed_once() {
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let items: Vec<u32> = (0..1000).collect();
        let run = pool.run(items, |x, out| out.push(x * 2));
        let mut flat = run.into_flat();
        flat.sort_unstable();
        assert_eq!(flat.len(), 1000);
        assert_eq!(flat[0], 0);
        assert_eq!(flat[999], 1998);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1, LoadBalance::WorkStealing);
        let run = pool.run(vec![1, 2, 3], |x, out| out.push(x + 1));
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0], vec![2, 3, 4]);
        assert_eq!(run.busy.len(), 1);
    }

    #[test]
    fn stealing_balances_skewed_items() {
        // One very expensive item plus many cheap ones: with stealing the
        // cheap items migrate to the idle workers.
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let mut items: Vec<u64> = vec![2_000_000];
        items.extend(std::iter::repeat_n(20_000, 63));
        let run = pool.run(items, |iters, out: &mut Vec<u64>| {
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_add(i ^ (acc << 1));
            }
            out.push(acc);
        });
        let produced: usize = run.outputs.iter().map(|o| o.len()).sum();
        assert_eq!(produced, 64);
        // Every worker should have produced something (the cheap items are
        // spread out even though worker 0 holds the expensive one).
        assert!(run.outputs.iter().filter(|o| !o.is_empty()).count() >= 2);
    }

    #[test]
    fn no_steal_mode_keeps_assignment() {
        let pool = WorkerPool::new(2, LoadBalance::None);
        let items: Vec<u32> = (0..10).collect();
        let run = pool.run(items, |x, out| out.push(x));
        // Round-robin assignment: worker 0 gets evens, worker 1 gets odds;
        // without stealing each output holds exactly its own share.
        assert_eq!(run.outputs[0].len(), 5);
        assert_eq!(run.outputs[1].len(), 5);
        assert!(run.outputs[0].iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn region_group_mode_assigns_contiguously() {
        let pool = WorkerPool::new(2, LoadBalance::RegionGroup);
        let items: Vec<u32> = (0..10).collect();
        let run = pool.run(items, |x, out| out.push(x));
        assert_eq!(run.outputs[0].len() + run.outputs[1].len(), 10);
        // Worker 0's items are all smaller than worker 1's.
        let max0 = run.outputs[0].iter().max().copied().unwrap_or(0);
        let min1 = run.outputs[1].iter().min().copied().unwrap_or(u32::MAX);
        assert!(max0 < min1);
    }

    #[test]
    fn busy_times_reported_for_every_worker() {
        let pool = WorkerPool::new(3, LoadBalance::WorkStealing);
        let run = pool.run((0..30).collect::<Vec<u32>>(), |x, out| out.push(x));
        assert_eq!(run.busy.len(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let run = pool.run(Vec::<u32>::new(), |x, out| out.push(x));
        assert_eq!(run.into_flat().len(), 0);
    }
}
