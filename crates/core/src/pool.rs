//! The intra-machine worker pool.
//!
//! Each HUGE machine runs a pool of workers (§4.1). Workers are *persistent*:
//! they are spawned once per pool (lazily, on the first parallel workload)
//! and then reused across every operator invocation and segment of a run —
//! no per-batch thread spawning on the hot path. Idle workers park on a
//! condvar and are woken by submissions.
//!
//! Work distribution follows the configured [`LoadBalance`] strategy: every
//! worker owns a lock-free Chase–Lev deque fed from a small per-worker inbox,
//! and with [`LoadBalance::WorkStealing`] (HUGE's default) idle workers steal
//! from their siblings' deques and inboxes — the intra-machine half of the
//! paper's two-layer work stealing (§5.3). `None` pins items round-robin with
//! no stealing (load follows the pivot vertex, as in BENU) and `RegionGroup`
//! pins contiguous ranges (RADS' region groups), reproducing the Exp-8
//! comparison points.
//!
//! The low-level interface is epoch-based: [`WorkerPool::begin_epoch`] /
//! [`WorkerPool::submit`] / [`WorkerPool::join_epoch`]. Epochs from multiple
//! threads may overlap freely; each tracks only its own jobs. The high-level
//! [`WorkerPool::run`] used by the operators is built on top of it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::deque::{Steal, Stealer, Worker};

use crate::config::LoadBalance;

/// A unit of work: receives the id of the worker executing it.
type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Output of a pool run: the items produced by each worker and how long each
/// worker stayed busy.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Items produced, grouped by the worker that executed them.
    pub outputs: Vec<Vec<T>>,
    /// Busy time of each worker.
    pub busy: Vec<Duration>,
}

impl<T> PoolRun<T> {
    /// Flattens the per-worker outputs into one vector.
    pub fn into_flat(self) -> Vec<T> {
        self.outputs.into_iter().flatten().collect()
    }
}

/// Tracks one batch of submitted jobs so the submitter can wait for exactly
/// its own work (epochs from different threads may overlap on one pool).
pub struct Epoch {
    inner: Arc<EpochInner>,
}

struct EpochInner {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    busy_nanos: Vec<AtomicU64>,
}

impl Epoch {
    fn new(workers: usize) -> Self {
        Epoch {
            inner: Arc::new(EpochInner {
                remaining: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
                busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// Busy time accumulated per worker while executing this epoch's jobs.
    pub fn busy(&self) -> Vec<Duration> {
        self.inner
            .busy_nanos
            .iter()
            .map(|n| Duration::from_nanos(n.load(Ordering::Relaxed)))
            .collect()
    }
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    /// Targeted submissions, drained by each worker into its own deque.
    inboxes: Vec<Mutex<VecDeque<Job>>>,
    /// Stealers over every worker's Chase–Lev deque.
    stealers: Vec<Stealer<Job>>,
    /// Whether idle workers may steal from siblings.
    allow_steal: bool,
    /// Submission generation; bumped under the lock so sleepers never miss a
    /// wake-up (a worker only waits while the generation is unchanged since
    /// it last found no work).
    generation: Mutex<u64>,
    work_available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn bump_and_notify(&self) {
        {
            let mut generation = self.generation.lock().unwrap();
            *generation = generation.wrapping_add(1);
        }
        self.work_available.notify_all();
    }

    /// One steal attempt over the siblings of `wid` (deques first, then the
    /// back of their inboxes).
    fn try_steal(&self, wid: usize) -> Option<Job> {
        let n = self.stealers.len();
        for offset in 1..n {
            let victim = (wid + offset) % n;
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
            if let Some(job) = self.inboxes[victim].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(wid: usize, local: Worker<Job>, shared: Arc<PoolShared>) {
    loop {
        // 1. Own deque (LIFO: best cache locality for freshly split work).
        if let Some(job) = local.pop() {
            job(wid);
            continue;
        }
        // 2. Refill the deque from the inbox of targeted submissions.
        let refilled = {
            let mut inbox = shared.inboxes[wid].lock().unwrap();
            let had = !inbox.is_empty();
            for job in inbox.drain(..) {
                local.push(job);
            }
            had
        };
        if refilled {
            continue;
        }
        // 3. Steal from siblings (work-stealing strategy only).
        if shared.allow_steal {
            if let Some(job) = shared.try_steal(wid) {
                job(wid);
                continue;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // 4. Park until the next submission. Reading the generation *before*
        // the (failed) work checks above would race; instead re-check: any
        // submission completed before we read `generation` here is visible
        // in the queues, and any later one changes the generation.
        let seen = *shared.generation.lock().unwrap();
        let has_work = !shared.inboxes[wid].lock().unwrap().is_empty()
            || (shared.allow_steal && shared.stealers.iter().any(|s| !s.is_empty()));
        if has_work {
            continue;
        }
        let mut generation = shared.generation.lock().unwrap();
        while *generation == seen && !shared.shutdown.load(Ordering::Acquire) {
            generation = shared.work_available.wait(generation).unwrap();
        }
    }
}

struct PoolCore {
    shared: Arc<PoolShared>,
    /// Worker-owned deques, handed to the threads on first start.
    seeds: Mutex<Vec<Worker<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    started: AtomicBool,
    threads_spawned: AtomicUsize,
    workers: usize,
    strategy: LoadBalance,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.bump_and_notify();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// A pool of `workers` persistent intra-machine workers. Cloning shares the
/// same workers; the threads shut down when the last handle is dropped.
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.core.workers)
            .field("strategy", &self.core.strategy)
            .field("started", &self.core.started.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool. Threads are spawned lazily on the first parallel
    /// workload and live until the last pool handle is dropped.
    pub fn new(workers: usize, strategy: LoadBalance) -> Self {
        let workers = workers.max(1);
        let seeds: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = seeds.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(PoolShared {
            inboxes: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            stealers,
            allow_steal: strategy == LoadBalance::WorkStealing,
            generation: Mutex::new(0),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        WorkerPool {
            core: Arc::new(PoolCore {
                shared,
                seeds: Mutex::new(seeds),
                handles: Mutex::new(Vec::new()),
                started: AtomicBool::new(false),
                threads_spawned: AtomicUsize::new(0),
                workers,
                strategy,
            }),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// The configured balancing strategy.
    pub fn strategy(&self) -> LoadBalance {
        self.core.strategy
    }

    /// Total worker threads spawned over the pool's lifetime. Stays equal to
    /// [`WorkerPool::workers`] no matter how many batches run — the
    /// regression handle for "workers are created once and reused".
    pub fn threads_spawned(&self) -> usize {
        self.core.threads_spawned.load(Ordering::SeqCst)
    }

    /// Spawns the worker threads if they are not running yet.
    fn ensure_started(&self) {
        if self.core.started.load(Ordering::Acquire) {
            return;
        }
        let mut seeds = self.core.seeds.lock().unwrap();
        if self.core.started.load(Ordering::Acquire) {
            return;
        }
        let mut handles = self.core.handles.lock().unwrap();
        for (wid, local) in seeds.drain(..).enumerate() {
            let shared = Arc::clone(&self.core.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("huge-worker-{wid}"))
                    .spawn(move || worker_loop(wid, local, shared))
                    .expect("spawn pool worker"),
            );
            self.core.threads_spawned.fetch_add(1, Ordering::SeqCst);
        }
        self.core.started.store(true, Ordering::Release);
    }

    /// Starts a new epoch. Epochs from different threads may overlap.
    pub fn begin_epoch(&self) -> Epoch {
        Epoch::new(self.core.workers)
    }

    /// Submits a job to the worker `target % workers` (any idle worker may
    /// steal it under [`LoadBalance::WorkStealing`]). The job runs on a pool
    /// thread; [`WorkerPool::join_epoch`] waits for it.
    pub fn submit(&self, epoch: &Epoch, target: usize, job: impl FnOnce(usize) + Send + 'static) {
        self.ensure_started();
        // SAFETY: the job is already `'static`.
        unsafe { self.submit_erased(epoch, target, Box::new(job)) };
        self.core.shared.bump_and_notify();
    }

    /// Submits a job whose borrows the caller promises outlive the epoch.
    ///
    /// # Safety
    /// The caller must call [`WorkerPool::join_epoch`] on `epoch` before any
    /// data borrowed by `job` goes out of scope (including on panic paths).
    unsafe fn submit_erased(
        &self,
        epoch: &Epoch,
        target: usize,
        job: Box<dyn FnOnce(usize) + Send + '_>,
    ) {
        let job: Job = std::mem::transmute::<Box<dyn FnOnce(usize) + Send + '_>, Job>(job);
        {
            let mut remaining = epoch.inner.remaining.lock().unwrap();
            *remaining += 1;
        }
        let tracker = Arc::clone(&epoch.inner);
        let wrapped: Job = Box::new(move |wid| {
            let start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| job(wid)));
            tracker.busy_nanos[wid].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if outcome.is_err() {
                tracker.panicked.store(true, Ordering::SeqCst);
            }
            let mut remaining = tracker.remaining.lock().unwrap();
            *remaining -= 1;
            if *remaining == 0 {
                tracker.done.notify_all();
            }
        });
        let wid = target % self.core.workers;
        self.core.shared.inboxes[wid]
            .lock()
            .unwrap()
            .push_back(wrapped);
    }

    /// Blocks until every job submitted under `epoch` has finished, then
    /// returns the per-worker busy times. Panics (propagating) if any job
    /// panicked.
    pub fn join_epoch(&self, epoch: Epoch) -> Vec<Duration> {
        {
            let mut remaining = epoch.inner.remaining.lock().unwrap();
            while *remaining > 0 {
                remaining = epoch.inner.done.wait(remaining).unwrap();
            }
        }
        if epoch.inner.panicked.load(Ordering::SeqCst) {
            panic!("worker panicked");
        }
        epoch.busy()
    }

    /// Processes `items` in parallel on the persistent workers; `f(item,
    /// out)` appends its results to `out`. Returns per-worker outputs and
    /// busy times.
    ///
    /// Falls back to inline execution when there is a single worker or a
    /// single item (no cross-thread hand-off for tiny batches).
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> PoolRun<T>
    where
        I: Send,
        T: Send,
        F: Fn(I, &mut Vec<T>) + Sync,
    {
        let workers = self.core.workers;
        if workers == 1 || items.len() <= 1 {
            let start = Instant::now();
            let mut out = Vec::new();
            for item in items {
                f(item, &mut out);
            }
            let mut busy = vec![Duration::ZERO; workers];
            busy[0] = start.elapsed();
            let mut outputs: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
            outputs[0] = out;
            return PoolRun { outputs, busy };
        }

        self.ensure_started();
        let epoch = self.begin_epoch();
        let outputs: Vec<Mutex<Vec<T>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        let n = items.len();
        {
            let f = &f;
            let outputs = &outputs;
            for (idx, item) in items.into_iter().enumerate() {
                let target = match self.core.strategy {
                    // Round-robin: even static split.
                    LoadBalance::WorkStealing | LoadBalance::None => idx % workers,
                    // Contiguous region groups.
                    LoadBalance::RegionGroup => (idx * workers / n).min(workers - 1),
                };
                // Each worker executes one job at a time, so the lock on its
                // own output slot is uncontended.
                let job = move |wid: usize| {
                    let mut slot = outputs[wid].lock().unwrap();
                    f(item, &mut slot);
                };
                // SAFETY: `join_epoch` below returns only after every job
                // ran, so the borrows of `f` and `outputs` stay valid; a
                // worker panic is recorded and re-raised by `join_epoch`
                // after the epoch fully drains.
                unsafe { self.submit_erased(&epoch, target, Box::new(job)) };
            }
        }
        self.core.shared.bump_and_notify();
        let busy = self.join_epoch(epoch);
        let outputs = outputs
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_default())
            .collect();
        PoolRun { outputs, busy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_processed_once() {
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let items: Vec<u32> = (0..1000).collect();
        let run = pool.run(items, |x, out| out.push(x * 2));
        let mut flat = run.into_flat();
        flat.sort_unstable();
        assert_eq!(flat.len(), 1000);
        assert_eq!(flat[0], 0);
        assert_eq!(flat[999], 1998);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1, LoadBalance::WorkStealing);
        let run = pool.run(vec![1, 2, 3], |x, out| out.push(x + 1));
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0], vec![2, 3, 4]);
        assert_eq!(run.busy.len(), 1);
        // The inline fast path never needs threads.
        assert_eq!(pool.threads_spawned(), 0);
    }

    #[test]
    fn stealing_balances_skewed_items() {
        // One very expensive item plus many cheap ones: with stealing the
        // cheap items migrate to the idle workers.
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let mut items: Vec<u64> = vec![2_000_000];
        items.extend(std::iter::repeat_n(20_000, 63));
        let run = pool.run(items, |iters, out: &mut Vec<u64>| {
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_add(i ^ (acc << 1));
            }
            out.push(acc);
        });
        let produced: usize = run.outputs.iter().map(|o| o.len()).sum();
        assert_eq!(produced, 64);
        // Every worker should have produced something (the cheap items are
        // spread out even though worker 0 holds the expensive one).
        assert!(run.outputs.iter().filter(|o| !o.is_empty()).count() >= 2);
    }

    #[test]
    fn no_steal_mode_keeps_assignment() {
        let pool = WorkerPool::new(2, LoadBalance::None);
        let items: Vec<u32> = (0..10).collect();
        let run = pool.run(items, |x, out| out.push(x));
        // Round-robin assignment: worker 0 gets evens, worker 1 gets odds;
        // without stealing each output holds exactly its own share.
        assert_eq!(run.outputs[0].len(), 5);
        assert_eq!(run.outputs[1].len(), 5);
        assert!(run.outputs[0].iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn region_group_mode_assigns_contiguously() {
        let pool = WorkerPool::new(2, LoadBalance::RegionGroup);
        let items: Vec<u32> = (0..10).collect();
        let run = pool.run(items, |x, out| out.push(x));
        assert_eq!(run.outputs[0].len() + run.outputs[1].len(), 10);
        // Worker 0's items are all smaller than worker 1's.
        let max0 = run.outputs[0].iter().max().copied().unwrap_or(0);
        let min1 = run.outputs[1].iter().min().copied().unwrap_or(u32::MAX);
        assert!(max0 < min1);
    }

    #[test]
    fn busy_times_reported_for_every_worker() {
        let pool = WorkerPool::new(3, LoadBalance::WorkStealing);
        let run = pool.run((0..30).collect::<Vec<u32>>(), |x, out| out.push(x));
        assert_eq!(run.busy.len(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(4, LoadBalance::WorkStealing);
        let run = pool.run(Vec::<u32>::new(), |x, out| out.push(x));
        assert_eq!(run.into_flat().len(), 0);
    }

    #[test]
    fn workers_are_reused_across_runs() {
        let pool = WorkerPool::new(3, LoadBalance::WorkStealing);
        for round in 0..50 {
            let items: Vec<u32> = (0..64).collect();
            let run = pool.run(items, |x, out| out.push(x + round));
            assert_eq!(run.into_flat().len(), 64);
        }
        assert_eq!(pool.threads_spawned(), 3);
    }

    #[test]
    fn explicit_epochs_track_only_their_jobs() {
        let pool = WorkerPool::new(2, LoadBalance::WorkStealing);
        let counter = Arc::new(AtomicUsize::new(0));
        let first = pool.begin_epoch();
        for i in 0..10 {
            let counter = Arc::clone(&counter);
            pool.submit(&first, i, move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let second = pool.begin_epoch();
        for i in 0..5 {
            let counter = Arc::clone(&counter);
            pool.submit(&second, i, move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join_epoch(first);
        pool.join_epoch(second);
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn worker_panic_propagates_at_join() {
        let pool = WorkerPool::new(2, LoadBalance::WorkStealing);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![1u32, 2, 3, 4], |x, _out: &mut Vec<u32>| {
                if x == 3 {
                    panic!("boom");
                }
            })
        }));
        assert!(outcome.is_err());
        // The pool stays usable after a panicked epoch.
        let run = pool.run(vec![1u32, 2, 3, 4], |x, out| out.push(x));
        assert_eq!(run.into_flat().len(), 4);
    }
}
