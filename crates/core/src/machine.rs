//! The per-machine runtime: segment execution under the BFS/DFS-adaptive
//! scheduler, the segment terminals (`SINK` and the `PUSH-JOIN` shuffle), and
//! inter-machine work stealing.
//!
//! The runtime is *pipelined*: join inputs shuffled during a producing
//! segment are absorbed into pre-instantiated [`PushJoin`] operators as they
//! arrive ([`MachineState::absorb_inbox`]), so shuffle and build phases
//! overlap and the bounded router inboxes never need to hold a segment's
//! whole output. When a machine has nothing to compute it *parks* on the
//! router's notify handle instead of spinning.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use huge_cache::PullCache;
use huge_comm::{MachineId, RouterEndpoint, RowBatch, RpcFabric};
use huge_graph::GraphPartition;
use huge_plan::translate::{Segment, SegmentSource};
use huge_query::QueryVertex;
use std::sync::Arc;

use crate::config::{ClusterConfig, SinkMode};
use crate::exec::{
    partition_by_key, BatchOperator, OpContext, OpPoll, PullExtend, PushJoin, ScanSource,
};
use crate::join::{JoinSide, MemoryTrackerHandle};
use crate::memory::MemoryTracker;
use crate::operators::ScanPool;
use crate::pool::WorkerPool;
use crate::report::MachineReport;
use crate::scheduler::SegmentQueues;
use crate::{EngineError, Result};

/// How long a machine parks on the router before re-checking termination
/// conditions (idle flags, segment completion) that arrive without data.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// What happens to a segment's output rows.
#[derive(Clone, Debug)]
pub enum Terminal {
    /// Root segment: count (and optionally collect) complete matches.
    Sink,
    /// Shuffle the rows to the machines responsible for the join keys, as
    /// input to a later `PUSH-JOIN` segment.
    FeedJoin {
        /// The consuming join segment's id (used to tag router envelopes).
        consumer: usize,
        /// Positions of the join-key columns in this segment's schema.
        key_positions: Vec<usize>,
    },
}

/// The per-segment execution plan shared by all machines.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The translated segment (source, extends, schema).
    pub segment: Segment,
    /// What to do with the segment's output.
    pub terminal: Terminal,
    /// For join segments: the schema lengths (arities) of the left and right
    /// producer segments. `None` for scan segments.
    pub producer_arities: Option<(usize, usize)>,
}

/// Cross-machine shared state for one segment: every machine's stealable
/// scan pool and operator queues, plus the flags used for termination.
pub struct SharedSegmentState {
    /// One scan pool per machine (empty for join segments).
    pub scan_pools: Vec<ScanPool>,
    /// One set of operator queues per machine.
    pub queues: Vec<Arc<SegmentQueues>>,
    /// Idle flags used by the work-stealing termination protocol.
    pub idle: Vec<AtomicBool>,
    /// Machines still executing this segment. Completed machines linger,
    /// absorbing their inbox, until this reaches zero — so a producer blocked
    /// on a bounded inbox is always eventually drained.
    pub remaining: AtomicUsize,
    /// Set when any machine fails (or panics) during this segment: peers
    /// blocked on backpressure, stealing, or the end-of-segment linger bail
    /// out instead of waiting for a machine that will never drain them.
    pub aborted: AtomicBool,
}

impl SharedSegmentState {
    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }
}

/// Sets the segment's abort flag if the holder unwinds (a panicking machine
/// must not leave its peers lingering on the `remaining` barrier forever;
/// peers poll the flag on their park timeout).
struct AbortOnPanic<'a>(&'a SharedSegmentState);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// The input feeding a segment's operator chain.
enum ChainSource {
    /// A join segment's `PUSH-JOIN`, polled lazily partition by partition
    /// (boxed: the joiner's partition buffers dwarf the scan cursor).
    Join(Box<PushJoin>),
    /// A scan segment's (stealable) cursor.
    Scan(ScanSource),
}

impl ChainSource {
    fn has_more(&self) -> bool {
        match self {
            ChainSource::Scan(s) => s.has_more(),
            ChainSource::Join(j) => j.has_more(),
        }
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Result<Option<RowBatch>> {
        let poll = match self {
            ChainSource::Scan(s) => s.poll_next(ctx)?,
            ChainSource::Join(j) => j.poll_next(ctx)?,
        };
        Ok(match poll {
            OpPoll::Ready(batch) => Some(batch),
            OpPoll::Pending | OpPoll::Exhausted => None,
        })
    }
}

/// The state a machine carries across segments of one run.
pub struct MachineState {
    /// This machine's id.
    pub machine: MachineId,
    /// Its graph partition.
    pub partition: GraphPartition,
    /// Its adjacency cache (persists across segments of a run).
    pub cache: Box<dyn PullCache>,
    /// Pushing endpoint.
    pub router: RouterEndpoint,
    /// Pulling fabric.
    pub rpc: RpcFabric,
    /// Intra-machine worker pool (persistent: workers are spawned once and
    /// reused across every operator invocation and segment).
    pub pool: WorkerPool,
    /// Memory tracker for intermediate results.
    pub memory: Arc<MemoryTracker>,
    /// Engine configuration.
    pub config: ClusterConfig,
    /// Directory for `PUSH-JOIN` spill files.
    pub spill_dir: PathBuf,
    /// Matches counted by this machine's sink.
    pub matches: u64,
    /// Collected sample matches (in query-vertex order).
    pub samples: Vec<Vec<u32>>,
    /// Busy time per intra-machine worker.
    pub worker_busy: Vec<Duration>,
    /// Total time spent in `PULL-EXTEND` fetch stages.
    pub fetch_time: Duration,
    /// Total wall-clock time this machine spent executing segments.
    pub compute_time: Duration,
    /// Batches obtained through inter-machine stealing.
    pub batches_stolen: u64,
    /// Pre-instantiated joiners for every `PUSH-JOIN` segment of the current
    /// run, keyed by the join segment's id. Shuffled inputs stream into them
    /// as they arrive (replacing the old consumer-side envelope stash).
    pending_joins: HashMap<usize, PushJoin>,
    /// Routing table for inbound envelopes: producing segment id → (join
    /// segment id, side of the join it feeds).
    join_feeds: HashMap<usize, (usize, JoinSide)>,
}

impl MachineState {
    /// Creates the state for one machine.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        partition: GraphPartition,
        cache: Box<dyn PullCache>,
        router: RouterEndpoint,
        rpc: RpcFabric,
        memory: Arc<MemoryTracker>,
        config: ClusterConfig,
        spill_dir: PathBuf,
    ) -> Self {
        let workers = config.workers_per_machine;
        let pool = WorkerPool::new(workers, config.load_balance);
        MachineState {
            machine,
            partition,
            cache,
            router,
            rpc,
            pool,
            memory,
            config,
            spill_dir,
            matches: 0,
            samples: Vec::new(),
            worker_busy: vec![Duration::ZERO; workers],
            fetch_time: Duration::ZERO,
            compute_time: Duration::ZERO,
            batches_stolen: 0,
            pending_joins: HashMap::new(),
            join_feeds: HashMap::new(),
        }
    }

    /// Prepares a run: instantiates one [`PushJoin`] per join segment and
    /// the envelope routing table, so inbound shuffle data can be absorbed
    /// the moment it arrives — during the *producing* segment.
    pub fn prepare_run(&mut self, plans: &[SegmentPlan]) {
        self.pending_joins.clear();
        self.join_feeds.clear();
        for plan in plans {
            if let SegmentSource::Join(op) = &plan.segment.source {
                let (left_arity, right_arity) = plan
                    .producer_arities
                    .expect("join segments carry their producers' arities");
                self.join_feeds
                    .insert(op.left, (plan.segment.id, JoinSide::Left));
                self.join_feeds
                    .insert(op.right, (plan.segment.id, JoinSide::Right));
                self.pending_joins.insert(
                    plan.segment.id,
                    PushJoin::new(
                        op.clone(),
                        left_arity,
                        right_arity,
                        self.config.join_buffer_bytes,
                        self.spill_dir.join(format!("seg-{}", plan.segment.id)),
                        MemoryTrackerHandle::Tracked(Arc::clone(&self.memory)),
                        self.config.batch_size,
                    ),
                );
            }
        }
    }

    /// Produces the per-machine report after a run.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            machine: self.machine,
            matches: self.matches,
            compute_time: self.compute_time,
            worker_busy: self.worker_busy.clone(),
            peak_memory_bytes: self.memory.peak(),
            comm: self.rpc.stats().machine(self.machine).snapshot(),
            batches_stolen: self.batches_stolen,
        }
    }

    fn op_context(&self) -> OpContext<'_> {
        OpContext {
            machine: self.machine,
            partition: &self.partition,
            rpc: &self.rpc,
            cache: self.cache.as_ref(),
            use_cache: !self.config.disable_cache,
            pool: &self.pool,
            batch_size: self.config.batch_size,
        }
    }

    /// Moves every queued inbound envelope into the joiner it feeds. This is
    /// the consumer half of the streaming shuffle: it runs opportunistically
    /// during chain execution, while waiting for space on a full destination
    /// inbox, and while lingering at the end of a segment.
    fn absorb_inbox(&mut self) -> Result<()> {
        while let Some(env) = self.router.try_recv() {
            let &(join_id, side) = self.join_feeds.get(&env.segment).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received an envelope for unknown segment {}",
                    self.machine, env.segment
                ))
            })?;
            let join = self.pending_joins.get_mut(&join_id).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received input for already-finished join segment {join_id}",
                    self.machine
                ))
            })?;
            join.push_side(side, &env.batch)?;
        }
        Ok(())
    }

    /// Pushes one shuffle batch with backpressure: while the destination
    /// inbox is full, absorb the own inbox (so peers blocked on *us* make
    /// progress — this is what keeps the cooperative protocol deadlock-free)
    /// and park briefly for space. Bails out when a peer aborted the
    /// segment (a failed machine will never drain its inbox).
    fn push_with_backpressure(
        &mut self,
        dest: MachineId,
        segment: usize,
        batch: RowBatch,
        shared: &SharedSegmentState,
    ) -> Result<()> {
        let mut pending = batch;
        loop {
            match self.router.try_push(dest, segment, pending) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if shared.is_aborted() {
                        return Err(EngineError::Config(
                            "segment aborted by a failed peer machine".into(),
                        ));
                    }
                    pending = back;
                    self.absorb_inbox()?;
                    self.router.wait_space(dest, PARK_TIMEOUT);
                }
            }
        }
    }

    /// Runs one segment to completion (own work, then stolen work, then a
    /// lingering absorb until every machine has finished the segment).
    ///
    /// Whatever the outcome, this machine's slot on the segment barrier is
    /// released — an erroring (or panicking) machine flags the segment as
    /// aborted so its peers bail out of backpressure, stealing and linger
    /// loops instead of waiting for it forever.
    pub fn run_segment(
        &mut self,
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let panic_guard = AbortOnPanic(shared);
        let result = self.run_segment_inner(plan, shared, sink);
        if result.is_err() {
            shared.abort();
        }
        // Release our barrier slot and nudge parked peers to re-check it.
        shared.remaining.fetch_sub(1, Ordering::SeqCst);
        for m in 0..self.router.num_machines() {
            self.router.wake(m);
        }
        // Linger: keep absorbing the inbox until every machine is done with
        // this segment, so producers blocked on our bounded inbox always
        // drain. The machine parks on the router between sweeps.
        let linger = (|| -> Result<()> {
            while shared.remaining.load(Ordering::SeqCst) > 0 && !shared.is_aborted() {
                self.absorb_inbox()?;
                self.router.wait_data(PARK_TIMEOUT);
            }
            self.absorb_inbox()
        })();
        if linger.is_err() {
            shared.abort();
        }
        drop(panic_guard);
        result.and(linger)
    }

    /// The fallible body of [`MachineState::run_segment`]: instantiates the
    /// segment's operators from the shared execution substrate and drives
    /// them with the BFS/DFS-adaptive scheduler below.
    fn run_segment_inner(
        &mut self,
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let start = Instant::now();
        let mut extends: Vec<PullExtend> = plan
            .segment
            .extends
            .iter()
            .map(|op| PullExtend::new(op.clone()))
            .collect();
        // Count-only fast path: when the root segment merely counts matches,
        // the final extension's output column never needs materialising.
        let count_only = matches!(plan.terminal, Terminal::Sink)
            && sink == SinkMode::Count
            && !extends.is_empty();
        if count_only {
            extends.last_mut().expect("non-empty").set_count_only(true);
        }
        let mut source = match &plan.segment.source {
            SegmentSource::Scan(scan) => ChainSource::Scan(ScanSource::new(
                scan.clone(),
                shared.scan_pools[self.machine].clone(),
            )),
            SegmentSource::Join(_) => {
                // Producers completed in earlier segments (and their final
                // envelopes may still sit in the inbox): absorb, then seal.
                self.absorb_inbox()?;
                let mut join = self.pending_joins.remove(&plan.segment.id).ok_or_else(|| {
                    EngineError::Config(format!(
                        "join segment {} was not prepared",
                        plan.segment.id
                    ))
                })?;
                let ctx = self.op_context();
                join.finish_input(&ctx)?;
                ChainSource::Join(Box::new(join))
            }
        };
        self.run_chain(&mut source, &mut extends, plan, shared, sink)?;
        if matches!(source, ChainSource::Scan(_)) && self.config.inter_machine_stealing {
            self.steal_loop(&mut source, &mut extends, plan, shared, sink)?;
        }
        for ext in &mut extends {
            let (fetch, busy) = ext.take_timings();
            self.fetch_time += fetch;
            for (w, d) in busy.iter().enumerate() {
                if w < self.worker_busy.len() {
                    self.worker_busy[w] += *d;
                }
            }
            self.matches += ext.take_count();
        }
        self.compute_time += start.elapsed();
        Ok(())
    }

    /// The BFS/DFS-adaptive scheduling loop (Algorithm 5) over this
    /// segment's operator chain: source (scan or join), extends, terminal.
    fn run_chain(
        &mut self,
        source: &mut ChainSource,
        extends: &mut [PullExtend],
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let queues = Arc::clone(&shared.queues[self.machine]);
        let num_extends = extends.len();
        // Operator indices: 0 = source, 1..=num_extends = extends,
        // num_extends + 1 = terminal.
        let terminal_idx = num_extends + 1;
        let mut current = 0usize;
        loop {
            // Keep the streaming shuffle flowing: route anything that peers
            // pushed at us into its pending joiner before scheduling.
            if self.router.has_data() {
                self.absorb_inbox()?;
            }
            let has_input = match current {
                0 => source.has_more(),
                i if i == terminal_idx => !queues.queue(num_extends).is_empty(),
                i => !queues.queue(i - 1).is_empty(),
            };
            if !has_input {
                if current == 0 {
                    // Source exhausted: finish when nothing remains anywhere.
                    if queues.all_empty() {
                        break;
                    }
                    current += 1;
                    continue;
                }
                // Backtrack only while some upstream operator still has work;
                // otherwise keep moving towards the terminal (and stop at the
                // terminal once the whole chain has drained).
                let upstream_has_work = source.has_more()
                    || (0..current.saturating_sub(1)).any(|i| !queues.queue(i).is_empty());
                if upstream_has_work {
                    current -= 1;
                } else if current == terminal_idx {
                    break;
                } else {
                    current += 1;
                }
                continue;
            }
            if current == terminal_idx {
                while let Some(batch) = queues.queue(num_extends).pop() {
                    self.consume_terminal(plan, &batch, sink, shared)?;
                }
                current -= 1;
                continue;
            }
            // Schedule the operator: consume input until its output queue
            // fills or the input drains (Algorithm 5 lines 6-9).
            loop {
                let produced: Option<RowBatch> = if current == 0 {
                    let ctx = self.op_context();
                    source.poll(&ctx)?
                } else {
                    match queues.queue(current - 1).pop() {
                        Some(input) => {
                            let ctx = self.op_context();
                            let op = &mut extends[current - 1];
                            op.push_input(input, &ctx)?;
                            match op.poll_next(&ctx)? {
                                OpPoll::Ready(batch) => Some(batch),
                                OpPoll::Pending | OpPoll::Exhausted => None,
                            }
                        }
                        None => None,
                    }
                };
                let Some(produced) = produced else { break };
                for chunk in produced.split_into_chunks(self.config.batch_size) {
                    queues.queue(current).push(chunk);
                }
                if queues.queue(current).is_full() {
                    break;
                }
            }
            // Move to the successor (the terminal backtracks on its own).
            current += 1;
        }
        Ok(())
    }

    /// Consumes one fully-extended batch at the terminal.
    fn consume_terminal(
        &mut self,
        plan: &SegmentPlan,
        batch: &RowBatch,
        sink: SinkMode,
        shared: &SharedSegmentState,
    ) -> Result<()> {
        match &plan.terminal {
            Terminal::Sink => {
                self.matches += batch.len() as u64;
                if let SinkMode::Collect(limit) = sink {
                    let schema = &plan.segment.schema;
                    for row in batch.rows() {
                        if self.samples.len() >= limit {
                            break;
                        }
                        self.samples.push(reorder_row(row, schema));
                    }
                }
            }
            Terminal::FeedJoin {
                consumer: _,
                key_positions,
            } => {
                let k = self.router.num_machines();
                // Envelopes are tagged with the *producing* segment id so the
                // consuming join can tell its left input from its right.
                for (dest, out) in partition_by_key(batch, key_positions, k)
                    .into_iter()
                    .enumerate()
                {
                    self.push_with_backpressure(dest, plan.segment.id, out, shared)?;
                }
            }
        }
        Ok(())
    }

    /// Inter-machine work stealing: once the own work is exhausted, steal
    /// scan chunks or queued batches from other machines until every machine
    /// is idle (§5.3). While there is nothing to steal the machine *parks*
    /// on its router inbox (absorbing any arriving shuffle data) instead of
    /// busy-spinning.
    fn steal_loop(
        &mut self,
        source: &mut ChainSource,
        extends: &mut [PullExtend],
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let k = shared.queues.len();
        if k <= 1 {
            return Ok(());
        }
        loop {
            shared.idle[self.machine].store(true, Ordering::SeqCst);
            let mut stolen_any = false;
            for offset in 1..k {
                let victim = (self.machine + offset) % k;
                // Prefer stealing unscanned vertices (most work remaining).
                let chunks = shared.scan_pools[victim].steal_half();
                if !chunks.is_empty() {
                    let bytes: u64 = chunks
                        .iter()
                        .map(|c| (c.len() * std::mem::size_of::<u32>()) as u64)
                        .sum();
                    self.rpc.record_steal(self.machine, bytes);
                    self.batches_stolen += chunks.len() as u64;
                    shared.scan_pools[self.machine].add_chunks(chunks);
                    stolen_any = true;
                    break;
                }
                // Otherwise steal buffered batches from the victim's queues,
                // upstream-most first (they carry the most remaining work).
                // `steal_into` transfers the memory accounting with the
                // batches, so cluster-wide `current()` stays conserved.
                for op in 0..shared.queues[victim].len() {
                    let (batches, bytes) = shared.queues[victim]
                        .queue(op)
                        .steal_into(shared.queues[self.machine].queue(op));
                    if batches == 0 {
                        continue;
                    }
                    self.rpc.record_steal(self.machine, bytes);
                    self.batches_stolen += batches;
                    stolen_any = true;
                    break;
                }
                if stolen_any {
                    break;
                }
            }
            if stolen_any {
                shared.idle[self.machine].store(false, Ordering::SeqCst);
                self.run_chain(source, extends, plan, shared, sink)?;
                continue;
            }
            // Nothing to steal: finish once every machine is idle (or a
            // failed peer aborted the segment — it will never go idle);
            // until then park on the inbox (waking for data to absorb).
            if shared.idle.iter().all(|f| f.load(Ordering::SeqCst)) || shared.is_aborted() {
                break;
            }
            self.absorb_inbox()?;
            self.router.wait_data(PARK_TIMEOUT);
        }
        Ok(())
    }
}

/// Reorders a row (laid out by segment schema) into query-vertex order.
pub fn reorder_row(row: &[u32], schema: &[QueryVertex]) -> Vec<u32> {
    let n = schema.len();
    let mut out = vec![0u32; n];
    for (pos, &qv) in schema.iter().enumerate() {
        out[qv as usize] = row[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_row_maps_schema_to_vertex_order() {
        // Schema [v2, v0, v1] with row [20, 0, 10] -> [0, 10, 20].
        let row = [20u32, 0, 10];
        let schema = [2u8, 0, 1];
        assert_eq!(reorder_row(&row, &schema), vec![0, 10, 20]);
    }
}
