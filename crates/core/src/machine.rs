//! The per-machine runtime: segment execution under the BFS/DFS-adaptive
//! scheduler, the segment terminals (`SINK` and the `PUSH-JOIN` shuffle), and
//! inter-machine work stealing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use huge_cache::PullCache;
use huge_comm::router::PushEnvelope;
use huge_comm::{MachineId, RouterEndpoint, RowBatch, RpcFabric};
use huge_graph::GraphPartition;
use huge_plan::translate::{Segment, SegmentSource};
use huge_query::QueryVertex;
use std::sync::Arc;

use crate::config::{ClusterConfig, SinkMode};
use crate::exec::{
    partition_by_key, BatchOperator, OpContext, OpPoll, PullExtend, PushJoin, ScanSource,
};
use crate::join::{JoinSide, MemoryTrackerHandle};
use crate::memory::MemoryTracker;
use crate::operators::ScanPool;
use crate::pool::WorkerPool;
use crate::report::MachineReport;
use crate::scheduler::SegmentQueues;
use crate::Result;

/// What happens to a segment's output rows.
#[derive(Clone, Debug)]
pub enum Terminal {
    /// Root segment: count (and optionally collect) complete matches.
    Sink,
    /// Shuffle the rows to the machines responsible for the join keys, as
    /// input to a later `PUSH-JOIN` segment.
    FeedJoin {
        /// The consuming join segment's id (used to tag router envelopes).
        consumer: usize,
        /// Positions of the join-key columns in this segment's schema.
        key_positions: Vec<usize>,
    },
}

/// The per-segment execution plan shared by all machines.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The translated segment (source, extends, schema).
    pub segment: Segment,
    /// What to do with the segment's output.
    pub terminal: Terminal,
    /// For join segments: the schema lengths (arities) of the left and right
    /// producer segments. `None` for scan segments.
    pub producer_arities: Option<(usize, usize)>,
}

/// Cross-machine shared state for one segment: every machine's stealable
/// scan pool and operator queues, plus the idle flags used for termination.
pub struct SharedSegmentState {
    /// One scan pool per machine (empty for join segments).
    pub scan_pools: Vec<ScanPool>,
    /// One set of operator queues per machine.
    pub queues: Vec<Arc<SegmentQueues>>,
    /// Idle flags used by the work-stealing termination protocol.
    pub idle: Vec<AtomicBool>,
}

/// The state a machine carries across segments of one run.
pub struct MachineState {
    /// This machine's id.
    pub machine: MachineId,
    /// Its graph partition.
    pub partition: GraphPartition,
    /// Its adjacency cache (persists across segments of a run).
    pub cache: Box<dyn PullCache>,
    /// Pushing endpoint.
    pub router: RouterEndpoint,
    /// Pulling fabric.
    pub rpc: RpcFabric,
    /// Intra-machine worker pool.
    pub pool: WorkerPool,
    /// Memory tracker for intermediate results.
    pub memory: Arc<MemoryTracker>,
    /// Engine configuration.
    pub config: ClusterConfig,
    /// Directory for `PUSH-JOIN` spill files.
    pub spill_dir: PathBuf,
    /// Matches counted by this machine's sink.
    pub matches: u64,
    /// Collected sample matches (in query-vertex order).
    pub samples: Vec<Vec<u32>>,
    /// Busy time per intra-machine worker.
    pub worker_busy: Vec<Duration>,
    /// Total time spent in `PULL-EXTEND` fetch stages.
    pub fetch_time: Duration,
    /// Total wall-clock time this machine spent executing segments.
    pub compute_time: Duration,
    /// Batches obtained through inter-machine stealing.
    pub batches_stolen: u64,
    /// Router envelopes received that belong to a later join segment.
    pending_envelopes: Vec<PushEnvelope>,
}

impl MachineState {
    /// Creates the state for one machine.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        partition: GraphPartition,
        cache: Box<dyn PullCache>,
        router: RouterEndpoint,
        rpc: RpcFabric,
        memory: Arc<MemoryTracker>,
        config: ClusterConfig,
        spill_dir: PathBuf,
    ) -> Self {
        let workers = config.workers_per_machine;
        let pool = WorkerPool::new(workers, config.load_balance);
        MachineState {
            machine,
            partition,
            cache,
            router,
            rpc,
            pool,
            memory,
            config,
            spill_dir,
            matches: 0,
            samples: Vec::new(),
            worker_busy: vec![Duration::ZERO; workers],
            fetch_time: Duration::ZERO,
            compute_time: Duration::ZERO,
            batches_stolen: 0,
            pending_envelopes: Vec::new(),
        }
    }

    /// Produces the per-machine report after a run.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            machine: self.machine,
            matches: self.matches,
            compute_time: self.compute_time,
            worker_busy: self.worker_busy.clone(),
            peak_memory_bytes: self.memory.peak(),
            comm: self.rpc.stats().machine(self.machine).snapshot(),
            batches_stolen: self.batches_stolen,
        }
    }

    fn op_context(&self) -> OpContext<'_> {
        OpContext {
            machine: self.machine,
            partition: &self.partition,
            rpc: &self.rpc,
            cache: self.cache.as_ref(),
            use_cache: !self.config.disable_cache,
            pool: &self.pool,
            batch_size: self.config.batch_size,
        }
    }

    /// Runs one segment to completion (own work, then stolen work).
    ///
    /// The segment's operators are instantiated once as
    /// [`BatchOperator`]s from the shared execution substrate and driven by
    /// the BFS/DFS-adaptive scheduler below.
    pub fn run_segment(
        &mut self,
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let start = Instant::now();
        let mut extends: Vec<PullExtend> = plan
            .segment
            .extends
            .iter()
            .map(|op| PullExtend::new(op.clone()))
            .collect();
        match &plan.segment.source {
            SegmentSource::Scan(scan) => {
                let mut source =
                    ScanSource::new(scan.clone(), shared.scan_pools[self.machine].clone());
                self.run_chain(Some(&mut source), &mut extends, plan, shared, sink)?;
                if self.config.inter_machine_stealing {
                    self.steal_loop(Some(&mut source), &mut extends, plan, shared, sink)?;
                }
            }
            SegmentSource::Join(join_op) => {
                // Gather this machine's share of both inputs from the router.
                let (left_arity, right_arity) = plan
                    .producer_arities
                    .expect("join segments carry their producers' arities");
                let mut join = PushJoin::new(
                    join_op.clone(),
                    left_arity,
                    right_arity,
                    self.config.join_buffer_bytes,
                    self.spill_dir.clone(),
                    MemoryTrackerHandle::Tracked(Arc::clone(&self.memory)),
                    self.config.batch_size,
                );
                let mut stashed = std::mem::take(&mut self.pending_envelopes);
                stashed.extend(self.router.drain());
                for env in stashed {
                    if env.segment == join_op.left {
                        join.push_side(JoinSide::Left, &env.batch)?;
                    } else if env.segment == join_op.right {
                        join.push_side(JoinSide::Right, &env.batch)?;
                    } else {
                        self.pending_envelopes.push(env);
                    }
                }
                // Produce the join output through the rest of the chain,
                // draining downstream operators whenever the source queue
                // fills so memory stays bounded.
                let queues = Arc::clone(&shared.queues[self.machine]);
                let mut drain_error: Option<crate::EngineError> = None;
                {
                    let this = &mut *self;
                    let extends = &mut extends;
                    join.finish_into(|batch| {
                        queues.queue(0).push(batch);
                        if queues.queue(0).is_full() && drain_error.is_none() {
                            if let Err(e) = this.run_chain(None, extends, plan, shared, sink) {
                                drain_error = Some(e);
                            }
                        }
                    })?;
                }
                if let Some(e) = drain_error {
                    return Err(e);
                }
                self.run_chain(None, &mut extends, plan, shared, sink)?;
            }
        }
        for ext in &mut extends {
            let (fetch, busy) = ext.take_timings();
            self.fetch_time += fetch;
            for (w, d) in busy.iter().enumerate() {
                if w < self.worker_busy.len() {
                    self.worker_busy[w] += *d;
                }
            }
        }
        self.compute_time += start.elapsed();
        Ok(())
    }

    /// The BFS/DFS-adaptive scheduling loop (Algorithm 5) over this
    /// segment's operator chain: source (optional scan), extends, terminal.
    fn run_chain(
        &mut self,
        mut source: Option<&mut ScanSource>,
        extends: &mut [PullExtend],
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let queues = Arc::clone(&shared.queues[self.machine]);
        let num_extends = extends.len();
        // Operator indices: 0 = source, 1..=num_extends = extends,
        // num_extends + 1 = terminal.
        let terminal_idx = num_extends + 1;
        let mut current = 0usize;
        loop {
            let has_input = match current {
                0 => source.as_ref().map(|c| c.has_more()).unwrap_or(false),
                i if i == terminal_idx => !queues.queue(num_extends).is_empty(),
                i => !queues.queue(i - 1).is_empty(),
            };
            if !has_input {
                if current == 0 {
                    // Source exhausted: finish when nothing remains anywhere.
                    if queues.all_empty() {
                        break;
                    }
                    current += 1;
                    continue;
                }
                // Backtrack only while some upstream operator still has work;
                // otherwise keep moving towards the terminal (and stop at the
                // terminal once the whole chain has drained).
                let upstream_has_work = source.as_ref().map(|c| c.has_more()).unwrap_or(false)
                    || (0..current.saturating_sub(1)).any(|i| !queues.queue(i).is_empty());
                if upstream_has_work {
                    current -= 1;
                } else if current == terminal_idx {
                    break;
                } else {
                    current += 1;
                }
                continue;
            }
            if current == terminal_idx {
                while let Some(batch) = queues.queue(num_extends).pop() {
                    self.consume_terminal(plan, &batch, sink);
                }
                current -= 1;
                continue;
            }
            // Schedule the operator: consume input until its output queue
            // fills or the input drains (Algorithm 5 lines 6-9).
            loop {
                let produced: Option<RowBatch> = if current == 0 {
                    let ctx = self.op_context();
                    match source.as_mut() {
                        Some(s) => match s.poll_next(&ctx)? {
                            OpPoll::Ready(batch) => Some(batch),
                            OpPoll::Pending | OpPoll::Exhausted => None,
                        },
                        None => None,
                    }
                } else {
                    match queues.queue(current - 1).pop() {
                        Some(input) => {
                            let ctx = self.op_context();
                            let op = &mut extends[current - 1];
                            op.push_input(input, &ctx)?;
                            match op.poll_next(&ctx)? {
                                OpPoll::Ready(batch) => Some(batch),
                                OpPoll::Pending | OpPoll::Exhausted => None,
                            }
                        }
                        None => None,
                    }
                };
                let Some(produced) = produced else { break };
                for chunk in produced.split_into_chunks(self.config.batch_size) {
                    queues.queue(current).push(chunk);
                }
                if queues.queue(current).is_full() {
                    break;
                }
            }
            // Move to the successor (the terminal backtracks on its own).
            current += 1;
        }
        Ok(())
    }

    /// Consumes one fully-extended batch at the terminal.
    fn consume_terminal(&mut self, plan: &SegmentPlan, batch: &RowBatch, sink: SinkMode) {
        match &plan.terminal {
            Terminal::Sink => {
                self.matches += batch.len() as u64;
                if let SinkMode::Collect(limit) = sink {
                    let schema = &plan.segment.schema;
                    for row in batch.rows() {
                        if self.samples.len() >= limit {
                            break;
                        }
                        self.samples.push(reorder_row(row, schema));
                    }
                }
            }
            Terminal::FeedJoin {
                consumer: _,
                key_positions,
            } => {
                let k = self.router.num_machines();
                // Envelopes are tagged with the *producing* segment id so the
                // consuming join can tell its left input from its right.
                for (dest, out) in partition_by_key(batch, key_positions, k)
                    .into_iter()
                    .enumerate()
                {
                    self.router.push(dest, plan.segment.id, out);
                }
            }
        }
    }

    /// Inter-machine work stealing: once the own work is exhausted, steal
    /// scan chunks or queued batches from other machines until every machine
    /// is idle (§5.3).
    fn steal_loop(
        &mut self,
        mut source: Option<&mut ScanSource>,
        extends: &mut [PullExtend],
        plan: &SegmentPlan,
        shared: &SharedSegmentState,
        sink: SinkMode,
    ) -> Result<()> {
        let k = shared.queues.len();
        if k <= 1 {
            return Ok(());
        }
        loop {
            shared.idle[self.machine].store(true, Ordering::SeqCst);
            let mut stolen_any = false;
            for offset in 1..k {
                let victim = (self.machine + offset) % k;
                // Prefer stealing unscanned vertices (most work remaining).
                let chunks = shared.scan_pools[victim].steal_half();
                if !chunks.is_empty() {
                    let bytes: u64 = chunks
                        .iter()
                        .map(|c| (c.len() * std::mem::size_of::<u32>()) as u64)
                        .sum();
                    self.rpc.record_steal(self.machine, bytes);
                    self.batches_stolen += chunks.len() as u64;
                    shared.scan_pools[self.machine].add_chunks(chunks);
                    stolen_any = true;
                    break;
                }
                // Otherwise steal buffered batches from the victim's queues,
                // upstream-most first (they carry the most remaining work).
                for op in 0..shared.queues[victim].len() {
                    let batches = shared.queues[victim].queue(op).steal_half();
                    if batches.is_empty() {
                        continue;
                    }
                    let bytes: u64 = batches.iter().map(|b| b.byte_size()).sum();
                    self.rpc.record_steal(self.machine, bytes);
                    self.batches_stolen += batches.len() as u64;
                    for b in batches {
                        shared.queues[self.machine].queue(op).push(b);
                    }
                    stolen_any = true;
                    break;
                }
                if stolen_any {
                    break;
                }
            }
            if stolen_any {
                shared.idle[self.machine].store(false, Ordering::SeqCst);
                self.run_chain(source.as_deref_mut(), extends, plan, shared, sink)?;
                continue;
            }
            // Nothing to steal: finish once every machine is idle.
            if shared.idle.iter().all(|f| f.load(Ordering::SeqCst)) {
                break;
            }
            std::thread::yield_now();
        }
        Ok(())
    }
}

/// Reorders a row (laid out by segment schema) into query-vertex order.
pub fn reorder_row(row: &[u32], schema: &[QueryVertex]) -> Vec<u32> {
    let n = schema.len();
    let mut out = vec![0u32; n];
    for (pos, &qv) in schema.iter().enumerate() {
        out[qv as usize] = row[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_row_maps_schema_to_vertex_order() {
        // Schema [v2, v0, v1] with row [20, 0, 10] -> [0, 10, 20].
        let row = [20u32, 0, 10];
        let schema = [2u8, 0, 1];
        assert_eq!(reorder_row(&row, &schema), vec![0, 10, 20]);
    }
}
