//! The per-machine runtime: segment execution under the BFS/DFS-adaptive
//! scheduler, the segment terminals (`SINK` and the `PUSH-JOIN` shuffle),
//! inter-machine work stealing, and the per-machine *dataflow scheduler*
//! that drives all segments of a run from one thread.
//!
//! The runtime is *pipelined* at two levels. Inside a segment, join inputs
//! shuffled during a producing segment are absorbed into pre-instantiated
//! [`PushJoin`] operators as they arrive ([`MachineState::absorb_inbox`]), so
//! shuffle and build phases overlap and the bounded router inboxes never need
//! to hold a segment's whole output. Across segments
//! ([`MachineState::run_all`]), each machine thread is spawned once per run
//! and picks the next segment by readiness (see
//! [`crate::scheduler::RunShared`]), so a fast machine moves on to the next
//! runnable segment while a straggler finishes — there is no per-segment
//! barrier. When a machine has nothing to compute it *parks* on the router's
//! notify handle instead of spinning.
//!
//! Join skew is handled by two mechanisms layered on the router's control
//! plane: **cross-machine Grace partition stealing** (a machine that drained
//! its own build requests sealed-but-unprobed partitions from busy peers;
//! see [`MachineState::steal_join_once`]) and **speculative sealing**
//! (per-source-machine EOS envelopes let a consumer seal and probe before
//! the release counters drain; see [`ControlMsg::Eos`]).

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use huge_cache::PullCache;
use huge_comm::{ColBatch, ControlMsg, MachineId, RouterEndpoint, RpcFabric};
use huge_graph::{GraphPartition, VertexId};
use huge_plan::translate::{Segment, SegmentSource};
use huge_query::QueryVertex;
use huge_trace::{kv, kv2, SpanId, TraceBuf};
use std::sync::Arc;

use crate::cancel::CancelToken;
use crate::config::{ClusterConfig, Fault, PanicPoint, SinkMode};
use crate::exec::{
    partition_cols_by_key, BatchOperator, OpContext, OpPoll, PullExtend, PushJoin, ScanSource,
};
use crate::governor::{MemoryGovernor, PressureLevel};
use crate::join::{decode_rows, encode_rows, JoinSide, MemoryTrackerHandle};
use crate::memory::MemoryTracker;
use crate::pool::WorkerPool;
use crate::report::{JoinReport, MachineReport};
use crate::scheduler::{RunShared, SegmentShared, SegmentState};
use crate::{EngineError, Result};

/// How long a machine parks on the router before re-checking conditions that
/// change without data arriving (idle flags, segment completion, aborts).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Join buffers below this resident size are not worth a governed spill
/// (each spill is a file append; flushing per-envelope trickles would turn
/// Red pressure into an IO storm).
const SPILL_WATERMARK_BYTES: u64 = 64 * 1024;

/// What happens to a segment's output rows.
#[derive(Clone, Debug)]
pub enum Terminal {
    /// Root segment: count (and optionally collect) complete matches.
    Sink,
    /// Shuffle the rows to the machines responsible for the join keys, as
    /// input to a later `PUSH-JOIN` segment.
    FeedJoin {
        /// The consuming join segment's id (used to tag router envelopes).
        consumer: usize,
        /// Positions of the join-key columns in this segment's schema.
        key_positions: Vec<usize>,
    },
}

/// The per-segment execution plan shared by all machines.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The translated segment (source, extends, schema).
    pub segment: Segment,
    /// What to do with the segment's output.
    pub terminal: Terminal,
    /// For join segments: the schema lengths (arities) of the left and right
    /// producer segments. `None` for scan segments.
    pub producer_arities: Option<(usize, usize)>,
}

/// Sets the run's abort flag if the holder unwinds (a panicking machine must
/// not leave its peers parked forever; peers poll the flag on their park
/// timeout).
struct AbortOnPanic<'a>(&'a RunShared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// The input feeding a segment's operator chain.
enum ChainSource {
    /// A join segment's `PUSH-JOIN`, polled lazily partition by partition
    /// (boxed: the joiner's partition buffers dwarf the scan cursor).
    Join(Box<PushJoin>),
    /// A scan segment's (stealable) cursor.
    Scan(ScanSource),
}

impl ChainSource {
    fn has_more(&self) -> bool {
        match self {
            ChainSource::Scan(s) => s.has_more(),
            ChainSource::Join(j) => j.has_more(),
        }
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Result<Option<ColBatch>> {
        let poll = match self {
            ChainSource::Scan(s) => s.poll_next(ctx)?,
            ChainSource::Join(j) => j.poll_next(ctx)?,
        };
        Ok(match poll {
            OpPoll::Ready(batch) => Some(batch),
            OpPoll::Pending | OpPoll::Exhausted => None,
        })
    }
}

/// One segment's instantiated operator chain on one machine. Under the
/// pipelined scheduler a chain persists across scheduler visits (a draining
/// segment is revisited to steal from peers) until the segment finishes.
struct SegmentChain {
    source: ChainSource,
    extends: Vec<PullExtend>,
}

/// The thief-side state of cross-machine Grace partition stealing for one
/// join segment. The invariants the all-idle termination gate relies on:
/// a machine never advertises idleness on a join segment while it has a
/// request outstanding (`outstanding`) or an adopted partition waiting
/// (`adopted`), and a victim answers *every* request with a ship or a nack,
/// so `outstanding` always resolves.
#[derive(Default)]
struct JoinSteal {
    /// A `StealRequest` is in flight and neither a ship nor a nack has
    /// arrived yet.
    outstanding: bool,
    /// Bitmask of peers already asked (or observed idle) since the last
    /// successful adoption. A nacking victim can never become shippable
    /// again (join input is globally complete before any request is sent),
    /// so the mask only resets when an adoption proves work still exists.
    tried: u64,
    /// Shipped partitions accepted but not yet attached to the local
    /// `JoinStream`: `(left rows, right rows, charged bytes)`.
    adopted: VecDeque<(Vec<VertexId>, Vec<VertexId>, u64)>,
}

/// The outcome of one stealing attempt on a draining segment.
enum StealOutcome {
    /// Work was stolen and executed; try again.
    Stole,
    /// Every machine is idle on the segment (or the run aborted): finish it.
    AllIdle,
    /// Nothing stealable right now, but peers are still busy — revisit.
    Pending,
}

/// The state a machine carries across segments of one run.
pub struct MachineState {
    /// This machine's id.
    pub machine: MachineId,
    /// Its graph partition.
    pub partition: GraphPartition,
    /// Its adjacency cache (persists across segments of a run).
    pub cache: Box<dyn PullCache>,
    /// Pushing endpoint.
    pub router: RouterEndpoint,
    /// Pulling fabric.
    pub rpc: RpcFabric,
    /// Intra-machine worker pool (persistent: workers are spawned once and
    /// reused across every operator invocation and segment).
    pub pool: WorkerPool,
    /// Memory tracker for intermediate results.
    pub memory: Arc<MemoryTracker>,
    /// The run's memory governor (a no-op unless a budget is configured).
    pub governor: Arc<MemoryGovernor>,
    /// Engine configuration.
    pub config: ClusterConfig,
    /// Directory for `PUSH-JOIN` spill files.
    pub spill_dir: PathBuf,
    /// Matches counted by this machine's sink.
    pub matches: u64,
    /// Collected sample matches (in query-vertex order).
    pub samples: Vec<Vec<u32>>,
    /// Busy time per intra-machine worker.
    pub worker_busy: Vec<Duration>,
    /// Total time spent in `PULL-EXTEND` fetch stages.
    pub fetch_time: Duration,
    /// Total active time this machine spent executing segments.
    pub compute_time: Duration,
    /// Batches obtained through inter-machine stealing.
    pub batches_stolen: u64,
    /// This machine's flight-recorder track: span/instant events when the
    /// run records in [`TraceMode::Full`](huge_trace::TraceMode), and the
    /// always-on per-segment busy/span aggregates the report is built from.
    /// All machines stamp against the recorder's shared epoch.
    trace: TraceBuf,
    /// The governor level last observed by [`MachineState::governor_tick`],
    /// so ladder transitions can be emitted as timeline instants from the
    /// machine thread that witnessed them (the governor itself is passive —
    /// it has no thread, hence no single-writer ring of its own).
    last_level: PressureLevel,
    /// Pre-instantiated joiners for every `PUSH-JOIN` segment of the current
    /// run, keyed by the join segment's id. Shuffled inputs stream into them
    /// as they arrive (replacing the old consumer-side envelope stash).
    pending_joins: HashMap<usize, PushJoin>,
    /// Routing table for inbound envelopes: producing segment id → (join
    /// segment id, side of the join it feeds).
    join_feeds: HashMap<usize, (usize, JoinSide)>,
    /// Per-source end-of-stream evidence: producing segment id → bitmask of
    /// machines that broadcast [`ControlMsg::Eos`] for it (the speculative
    /// sealing gate).
    eos_seen: HashMap<usize, u64>,
    /// Steal requests received but not yet answered, per join segment.
    steal_requests: HashMap<usize, VecDeque<MachineId>>,
    /// Thief-side partition-stealing state, per join segment.
    join_ctl: HashMap<usize, JoinSteal>,
    /// Bytes of shipped partitions this machine still holds charged while
    /// the thieves' acks are in flight (allocate-before-release: shipping
    /// may transiently double-count rows cluster-wide, never undercount).
    pending_ship_bytes: u64,
    /// Victim-side ledger of unacked partition ships: `ship_id` → charged
    /// bytes. An ack for an id not in the ledger is a re-delivery over the
    /// lossy transport and is ignored, keeping the release idempotent.
    pending_ships: HashMap<u64, u64>,
    /// Monotonic id source for [`ControlMsg::PartitionShip`] envelopes.
    next_ship_id: u64,
    /// Thief-side dedup of adopted ships, keyed by `(victim, ship_id)`: a
    /// duplicated ship envelope is re-acked but never re-adopted.
    ship_seen: HashSet<(MachineId, u64)>,
    /// The run's cancellation token (deadline-armed by the cluster); every
    /// cooperative loop polls it at batch granularity.
    cancel: CancelToken,
    /// Skew-handling counters surfaced in the run report.
    join_stats: JoinReport,
    /// Join segments started on EOS evidence, awaiting the moment the
    /// dependency counters also report ready (measures the seal lead).
    spec_pending: HashMap<usize, Instant>,
}

impl MachineState {
    /// Creates the state for one machine.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        partition: GraphPartition,
        cache: Box<dyn PullCache>,
        router: RouterEndpoint,
        rpc: RpcFabric,
        memory: Arc<MemoryTracker>,
        governor: Arc<MemoryGovernor>,
        config: ClusterConfig,
        spill_dir: PathBuf,
    ) -> Self {
        let workers = config.workers_per_machine;
        let pool = WorkerPool::new(workers, config.load_balance);
        MachineState {
            machine,
            partition,
            cache,
            router,
            rpc,
            pool,
            memory,
            governor,
            config,
            spill_dir,
            matches: 0,
            samples: Vec::new(),
            worker_busy: vec![Duration::ZERO; workers],
            fetch_time: Duration::ZERO,
            compute_time: Duration::ZERO,
            batches_stolen: 0,
            trace: TraceBuf::disabled(),
            last_level: PressureLevel::Green,
            pending_joins: HashMap::new(),
            join_feeds: HashMap::new(),
            eos_seen: HashMap::new(),
            steal_requests: HashMap::new(),
            join_ctl: HashMap::new(),
            pending_ship_bytes: 0,
            pending_ships: HashMap::new(),
            next_ship_id: 0,
            ship_seen: HashSet::new(),
            cancel: CancelToken::new(),
            join_stats: JoinReport::default(),
            spec_pending: HashMap::new(),
        }
    }

    /// Prepares a run: instantiates one [`PushJoin`] per join segment and
    /// the envelope routing table, so inbound shuffle data can be absorbed
    /// the moment it arrives — during the *producing* segment. `trace` is
    /// this machine's flight-recorder track, minted by the cluster's
    /// [`Recorder`](huge_trace::Recorder) with one aggregate slot per
    /// segment; its epoch is the shared instant all spans measure against.
    pub fn prepare_run(&mut self, plans: &[SegmentPlan], trace: TraceBuf, cancel: CancelToken) {
        self.trace = trace;
        self.last_level = PressureLevel::Green;
        self.pending_joins.clear();
        self.join_feeds.clear();
        self.eos_seen.clear();
        self.steal_requests.clear();
        self.join_ctl.clear();
        self.pending_ship_bytes = 0;
        self.pending_ships.clear();
        self.next_ship_id = 0;
        self.ship_seen.clear();
        self.cancel = cancel;
        self.join_stats = JoinReport::default();
        self.spec_pending.clear();
        for plan in plans {
            if let SegmentSource::Join(op) = &plan.segment.source {
                let (left_arity, right_arity) = plan
                    .producer_arities
                    .expect("join segments carry their producers' arities");
                self.join_feeds
                    .insert(op.left, (plan.segment.id, JoinSide::Left));
                self.join_feeds
                    .insert(op.right, (plan.segment.id, JoinSide::Right));
                let mut join = PushJoin::new(
                    op.clone(),
                    left_arity,
                    right_arity,
                    self.config.join_buffer_bytes,
                    self.spill_dir.join(format!("seg-{}", plan.segment.id)),
                    MemoryTrackerHandle::Tracked(Arc::clone(&self.memory)),
                    self.config.batch_size,
                );
                // A cancelled probe must stop between batches, so the join's
                // eventual stream polls the run token too.
                join.set_cancel(self.cancel.clone());
                self.pending_joins.insert(plan.segment.id, join);
            }
        }
    }

    /// Tears down this machine's per-run state after its thread has joined,
    /// whatever the run's outcome: drains the router inbox (releasing the
    /// byte charges queued envelopes hold), balances the skew-protocol
    /// ledgers, and drops any unfinished `PUSH-JOIN` builds — their `Drop`
    /// impls release buffered bytes and delete spill files. After this sweep
    /// a non-leaky run leaves the memory trackers at zero.
    pub fn finish_run(&mut self) {
        while self.router.try_recv().is_some() {}
        while self.router.try_recv_control().is_some() {}
        self.reclaim_skew_state();
        self.pending_joins.clear();
        self.join_feeds.clear();
        self.eos_seen.clear();
        self.join_ctl.clear();
        self.ship_seen.clear();
        self.pending_ships.clear();
    }

    /// Produces the per-machine report after a run.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            machine: self.machine,
            matches: self.matches,
            compute_time: self.compute_time,
            worker_busy: self.worker_busy.clone(),
            peak_memory_bytes: self.memory.peak(),
            comm: self.rpc.stats().machine(self.machine).snapshot(),
            batches_stolen: self.batches_stolen,
            segment_busy: self.trace.segment_busy(),
            segment_spans: self.trace.segment_spans(),
            join: self.join_stats.clone(),
        }
    }

    /// The batch size operators should use right now: the configured size,
    /// capped by the governor under Red pressure (the strict-DFS scan cap).
    fn effective_batch_size(&self) -> usize {
        self.governor
            .effective_batch_size(self.machine, self.config.batch_size)
    }

    fn op_context(&self) -> OpContext<'_> {
        OpContext {
            machine: self.machine,
            partition: &self.partition,
            rpc: &self.rpc,
            cache: self.cache.as_ref(),
            use_cache: !self.config.disable_cache,
            pool: &self.pool,
            batch_size: self.effective_batch_size(),
        }
    }

    /// Re-evaluates memory pressure and fires the actuators that need
    /// machine-local state: under Red pressure the pending `PUSH-JOIN`
    /// builds flush their Grace partitions to disk (sealed streams are
    /// spilled by [`MachineState::run_chain`], which owns them). Returns the
    /// current level so callers can tighten their own scheduling.
    fn governor_tick(&mut self) -> Result<PressureLevel> {
        let level = self.governor.tick(self.machine);
        if level != self.last_level {
            // Ladder transitions land on this machine's track: the governor
            // is ticked from machine threads, so the machine that observed
            // the change is the one that acts on it.
            self.trace.instant(match level {
                PressureLevel::Green => "governor: green",
                PressureLevel::Yellow => "governor: yellow",
                PressureLevel::Red => "governor: red",
            });
            self.last_level = level;
        }
        if level == PressureLevel::Red {
            let mut spilled = 0u64;
            for join in self.pending_joins.values_mut() {
                if join.buffered_bytes() >= SPILL_WATERMARK_BYTES {
                    spilled += join.spill_to_disk()?;
                }
            }
            if spilled > 0 {
                self.governor.record_spill(self.machine, spilled);
            }
        }
        Ok(level)
    }

    /// Moves every queued inbound envelope into the joiner it feeds. This is
    /// the consumer half of the streaming shuffle: it runs opportunistically
    /// during chain execution, while waiting for space on a full destination
    /// inbox, and whenever the dataflow scheduler has nothing runnable.
    ///
    /// Data envelopes are always drained *before* control envelopes: a
    /// `StealRequest` implies the sender observed the join's input globally
    /// complete, so servicing it after the data drain guarantees every row
    /// of the requested partitions is already in the local build.
    fn absorb_inbox(&mut self) -> Result<()> {
        // Service the lossy transport first: retransmit due drops and open
        // any due slow-link gates, so inbound data below includes recovered
        // envelopes. Exhausted retries surface as a typed transport failure.
        self.router
            .pump_transport()
            .map_err(EngineError::Transport)?;
        while let Some(env) = self.router.try_recv() {
            let &(join_id, side) = self.join_feeds.get(&env.segment).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received an envelope for unknown segment {}",
                    self.machine, env.segment
                ))
            })?;
            let join = self.pending_joins.get_mut(&join_id).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received input for already-finished join segment {join_id}",
                    self.machine
                ))
            })?;
            join.push_side(side, &env.batch)?;
        }
        while let Some(ctl) = self.router.try_recv_control() {
            self.handle_control(ctl.from, ctl.msg);
        }
        Ok(())
    }

    /// Routes one control envelope of the skew-handling protocol.
    fn handle_control(&mut self, from: MachineId, msg: ControlMsg) {
        match msg {
            ControlMsg::Eos { segment } => {
                *self.eos_seen.entry(segment).or_default() |= 1u64 << from;
            }
            ControlMsg::StealRequest { segment } => {
                // Stash it; requests are answered from the points that own
                // the join (pending build, active chain, or draining chain).
                self.steal_requests
                    .entry(segment)
                    .or_default()
                    .push_back(from);
            }
            ControlMsg::PartitionShip {
                segment,
                partition: _,
                ship_id,
                bytes,
                left,
                right,
            } => {
                if !self.ship_seen.insert((from, ship_id)) {
                    // Re-delivery over the lossy control plane: the rows were
                    // adopted from the first copy, but the ack may have raced
                    // the retransmit — re-ack so the victim settles (it drops
                    // duplicate acks through its `pending_ships` ledger).
                    self.router.send_control(
                        from,
                        ControlMsg::ShipAck {
                            segment,
                            ship_id,
                            bytes,
                        },
                    );
                    return;
                }
                // Allocate on the thief *before* acking (the victim releases
                // only on the ack), preserving the steal-accounting parity.
                self.memory.allocate(bytes);
                let ctl = self.join_ctl.entry(segment).or_default();
                ctl.outstanding = false;
                ctl.adopted
                    .push_back((decode_rows(&left), decode_rows(&right), bytes));
                self.router.send_control(
                    from,
                    ControlMsg::ShipAck {
                        segment,
                        ship_id,
                        bytes,
                    },
                );
            }
            ControlMsg::ShipNack { segment } => {
                self.join_ctl.entry(segment).or_default().outstanding = false;
            }
            ControlMsg::ShipAck {
                segment: _,
                ship_id,
                bytes: _,
            } => {
                // The thief owns the rows now; drop the charge we held — but
                // only once per ship: a duplicated ship envelope provokes a
                // second ack, which the ledger ignores.
                let Some(bytes) = self.pending_ships.remove(&ship_id) else {
                    return;
                };
                self.memory.release(bytes);
                self.pending_ship_bytes = self.pending_ship_bytes.saturating_sub(bytes);
                self.join_stats.partitions_shipped += 1;
                self.join_stats.shipped_bytes += bytes;
                self.governor.record_shipped(self.machine, bytes);
            }
        }
    }

    /// Pushes one shuffle batch with backpressure: while the destination
    /// inbox is full, absorb the own inbox (so peers blocked on *us* make
    /// progress — this is what keeps the cooperative protocol deadlock-free)
    /// and park briefly for space. Bails out when a peer aborted the run
    /// (a failed machine will never drain its inbox).
    fn push_with_backpressure(
        &mut self,
        dest: MachineId,
        segment: usize,
        batch: huge_comm::RowBatch,
        run: &RunShared,
    ) -> Result<()> {
        let mut pending = batch;
        let mut throttle_counted = false;
        // The span opens on the first bounce only, so an uncontended push
        // records nothing; an error mid-wait leaves it open and the timeline
        // closes it at the track's end (the wait really did last that long).
        let mut bp_span = SpanId::NONE;
        loop {
            match self.router.try_push(dest, segment, pending) {
                Ok(()) => {
                    if !bp_span.is_none() {
                        self.trace.exit_kv(bp_span, kv("dest", dest as u64));
                    }
                    return Ok(());
                }
                Err(back) => {
                    run.check_cancel()?;
                    if run.is_aborted() {
                        return Err(EngineError::Aborted(
                            "shuffle target lost to a failed peer machine".into(),
                        ));
                    }
                    // A bounce is the governor's backpressure actuator at
                    // work when the *destination* is under pressure (it is
                    // the dest's inbox capacity the governor shrank): count
                    // the deferred batch once, against the machine whose
                    // pressure caused it.
                    if !throttle_counted && self.governor.is_throttling(dest) {
                        self.governor.record_throttled(dest);
                        throttle_counted = true;
                    }
                    if bp_span.is_none() {
                        bp_span = self
                            .trace
                            .enter_kv("backpressure", kv("segment", segment as u64));
                    }
                    pending = back;
                    self.absorb_inbox()?;
                    self.router.wait_space(dest, PARK_TIMEOUT);
                }
            }
        }
    }

    /// Fires the configured chaos fault if it targets this machine/segment.
    ///
    /// An injected `Delay` stalls this machine's *chain*, not its control
    /// plane: the sleep is taken in short slices with the inbox absorbed and
    /// queued steal requests answered in between — the way a real
    /// straggler's runtime keeps servicing network traffic while its compute
    /// lags. That responsiveness is what lets idle peers steal a stalled
    /// machine's sealed Grace partitions *during* the stall instead of
    /// queueing behind it.
    fn maybe_inject_fault(&mut self, segment: usize) -> Result<()> {
        let faults: Vec<Fault> = self
            .config
            .fault_plan
            .iter()
            .filter(|spec| spec.machine == self.machine && spec.segment == segment)
            .map(|spec| spec.fault)
            .collect();
        for fault in faults {
            match fault {
                Fault::Delay(total) => {
                    let span = self.trace.enter_kv(
                        "fault_delay",
                        kv2("segment", segment as u64, "ms", total.as_millis() as u64),
                    );
                    let deadline = Instant::now() + total;
                    loop {
                        // A stalled machine still honours cancellation: the
                        // slices poll the token, so a cancel or deadline cuts
                        // the stall short instead of waiting it out.
                        self.cancel.check()?;
                        self.absorb_inbox()?;
                        self.service_pending_join_steals()?;
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2).min(deadline - now));
                    }
                    self.trace.exit(span);
                }
                Fault::Panic => panic!(
                    "injected fault: machine {} panics in segment {segment}",
                    self.machine
                ),
                // Point panics fire from `maybe_panic_at` at their named
                // sites; transport faults live in the router's lossy path.
                Fault::PanicAt(_)
                | Fault::DropBatch { .. }
                | Fault::DuplicateBatch { .. }
                | Fault::ReorderWindow { .. }
                | Fault::SlowLink { .. } => {}
            }
        }
        Ok(())
    }

    /// Fires any [`Fault::PanicAt`] armed for this machine/segment/point.
    fn maybe_panic_at(&self, segment: usize, point: PanicPoint) {
        for spec in &self.config.fault_plan {
            if spec.machine == self.machine
                && spec.segment == segment
                && spec.fault == Fault::PanicAt(point)
            {
                panic!(
                    "injected fault: machine {} panics at {point:?} in segment {segment}",
                    self.machine
                );
            }
        }
    }

    /// Records the first time this machine touches segment `idx`.
    fn note_segment_start(&mut self, idx: usize) {
        self.trace.seg_mark_start(idx);
    }

    /// Accumulates active time spent on segment `idx`.
    fn record_segment_busy(&mut self, idx: usize, elapsed: Duration) {
        self.trace.seg_add_busy(idx, elapsed);
        self.compute_time += elapsed;
    }

    /// Instantiates a segment's operator chain from the shared execution
    /// substrate. For join segments the producers are globally done (the
    /// readiness policy guarantees it), so any final envelopes still queued
    /// are absorbed and the build sealed.
    fn build_chain(
        &mut self,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        sink: SinkMode,
    ) -> Result<SegmentChain> {
        self.maybe_panic_at(plan.segment.id, PanicPoint::Build);
        let mut extends: Vec<PullExtend> = plan
            .segment
            .extends
            .iter()
            .map(|op| PullExtend::new(op.clone()))
            .collect();
        // Count-only fast path: when the root segment merely counts matches,
        // the final extension's output column never needs materialising.
        let count_only = matches!(plan.terminal, Terminal::Sink)
            && sink == SinkMode::Count
            && !extends.is_empty();
        if count_only {
            extends.last_mut().expect("non-empty").set_count_only(true);
        }
        let source = match &plan.segment.source {
            SegmentSource::Scan(scan) => ChainSource::Scan(ScanSource::new(
                scan.clone(),
                seg.scan_pools[self.machine].clone(),
            )),
            SegmentSource::Join(_) => {
                self.absorb_inbox()?;
                let mut join = self.pending_joins.remove(&plan.segment.id).ok_or_else(|| {
                    EngineError::Config(format!(
                        "join segment {} was not prepared",
                        plan.segment.id
                    ))
                })?;
                let ctx = self.op_context();
                join.finish_input(&ctx)?;
                ChainSource::Join(Box::new(join))
            }
        };
        Ok(SegmentChain { source, extends })
    }

    /// Harvests a finished chain's timings and counters and stamps the
    /// segment's completion time.
    fn finish_chain(&mut self, idx: usize, chain: &mut SegmentChain) {
        for ext in &mut chain.extends {
            let (fetch, busy) = ext.take_timings();
            self.fetch_time += fetch;
            for (w, d) in busy.iter().enumerate() {
                if w < self.worker_busy.len() {
                    self.worker_busy[w] += *d;
                }
            }
            self.matches += ext.take_count();
        }
        // Completion stamps over the start mark if the chain was built
        // without ever noting a start (the aggregate clamps end >= start).
        self.trace.seg_mark_start(idx);
        self.trace.seg_mark_end(idx);
    }

    /// Releases this machine's end-of-stream slot for segment `idx` and
    /// nudges parked peers to re-check readiness: once every machine has
    /// released, the segment's shuffle output is complete and consuming
    /// joins may seal.
    ///
    /// For shuffle-producing segments an [`ControlMsg::Eos`] is broadcast
    /// first (speculative sealing): every push of this segment has already
    /// completed, so consumers holding EOS evidence from all `k` machines
    /// may seal and probe *before* the release counter drains — the control
    /// envelope races ahead of the counter because it is sent before the
    /// `fetch_sub` and wakes the consumer directly.
    fn release_segment(&mut self, idx: usize, plan: &SegmentPlan, run: &RunShared) {
        self.broadcast_eos(plan);
        self.release_counter(idx, run);
    }

    /// The lossy-transport delivery barrier a shuffle producer runs before
    /// announcing end-of-stream: every envelope this machine still owes the
    /// segment's consumers (stashed behind a reorder/slow gate or awaiting
    /// retransmit) must actually land first, or a consumer with full EOS
    /// evidence would seal its build with rows still in flight.
    fn flush_segment_transport(&mut self, plan: &SegmentPlan, run: &RunShared) -> Result<()> {
        if !self.router.transport_enabled() || !matches!(plan.terminal, Terminal::FeedJoin { .. }) {
            return Ok(());
        }
        let segment = plan.segment.id;
        loop {
            self.router
                .flush_transport()
                .map_err(EngineError::Transport)?;
            if self.router.transport_pending(Some(segment)) == 0 {
                return Ok(());
            }
            run.check_cancel()?;
            if run.is_aborted() {
                return Err(EngineError::Aborted(
                    "transport flush interrupted by a failed peer machine".into(),
                ));
            }
            // Retransmits respect their backoff due-times even under flush;
            // absorb our own inbox (peers may be blocked on us) and park
            // until the next retry comes due.
            self.absorb_inbox()?;
            self.router.wait_data(PARK_TIMEOUT);
        }
    }

    /// Broadcasts this machine's `ControlMsg::Eos` for a shuffle-producing
    /// segment once every push of the segment has completed (own chain and
    /// stolen work alike). Returns whether envelopes went out — the
    /// pipelined scheduler then defers the counter settle one visit
    /// ([`SegmentState::Releasing`]) so the EOS evidence genuinely races
    /// ahead of the coarse counter gate.
    fn broadcast_eos(&mut self, plan: &SegmentPlan) -> bool {
        let k = self.router.num_machines();
        if !(self.config.speculative_sealing
            && k <= 64
            && matches!(plan.terminal, Terminal::FeedJoin { .. }))
        {
            return false;
        }
        for m in 0..k {
            self.router.send_control(
                m,
                ControlMsg::Eos {
                    segment: plan.segment.id,
                },
            );
        }
        true
    }

    /// Settles this machine's slot on the segment's release counter and
    /// nudges every parked peer to re-check readiness.
    fn release_counter(&mut self, idx: usize, run: &RunShared) {
        run.segments[idx].remaining.fetch_sub(1, Ordering::SeqCst);
        for m in 0..self.router.num_machines() {
            self.router.wake(m);
        }
    }

    // -----------------------------------------------------------------------
    // The per-machine dataflow scheduler (pipelined execution)
    // -----------------------------------------------------------------------

    /// Drives *all* segments of the run to completion from this machine's
    /// single thread: the barrier-free replacement for per-segment
    /// spawn/join. Segments advance through
    /// [`SegmentState`](crate::scheduler::SegmentState); the next segment is
    /// picked deepest-first among the runnable ones (DFS bias — drain
    /// consumers before growing producers). Any failure (or panic) aborts
    /// the whole run and unparks every peer.
    pub fn run_all(
        &mut self,
        plans: &[SegmentPlan],
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let panic_guard = AbortOnPanic(run);
        let result = self.run_all_inner(plans, run, sink);
        if result.is_err() {
            run.abort();
        }
        // Balance the trackers if the run tore down with skew-protocol
        // bytes in flight (unacked ships, unattached adoptions).
        self.reclaim_skew_state();
        // Nudge parked peers so they re-check the abort flag and the
        // readiness counters promptly.
        for m in 0..self.router.num_machines() {
            self.router.wake(m);
        }
        drop(panic_guard);
        result
    }

    fn run_all_inner(
        &mut self,
        plans: &[SegmentPlan],
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let n = plans.len();
        let k = self.router.num_machines();
        let mut states = vec![SegmentState::NotStarted; n];
        let mut chains: Vec<Option<SegmentChain>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        while done < n {
            run.check_cancel()?;
            if run.is_aborted() {
                return Err(EngineError::Aborted("a peer machine failed".into()));
            }
            // Keep the streaming shuffle flowing whatever segment runs next.
            self.absorb_inbox()?;
            // Answer thieves queued on joins this machine has not started,
            // and settle the lead of any speculatively-started segment.
            self.service_pending_join_steals()?;
            self.settle_speculative_leads(plans, run);
            // Under Red pressure the DFS bias tightens into strict DFS:
            // *only* the deepest non-done segment may run, so the machine
            // drains partials towards the sink instead of starting shallower
            // producers that generate new ones.
            let strict = self.governor_tick()? == PressureLevel::Red;
            let mut progressed = false;
            for idx in (0..n).rev() {
                let plan = &plans[idx];
                let seg = &run.segments[idx];
                match states[idx] {
                    SegmentState::Done => continue,
                    SegmentState::Running => {
                        unreachable!("Running is transient within one scheduler visit")
                    }
                    SegmentState::Releasing => {
                        // The EOS envelopes went out at the end of the
                        // previous visit; settle the coarse counter now.
                        // Deeper consumers were visited first in this pass,
                        // so one holding full EOS evidence has already
                        // sealed and probed ahead of this settle — the
                        // speculative lead the join report measures.
                        self.release_counter(idx, run);
                        states[idx] = SegmentState::Done;
                        done += 1;
                        progressed = true;
                    }
                    SegmentState::NotStarted => {
                        let counters_ready = run.ready(&plan.segment.dependencies());
                        if !counters_ready {
                            if !self.speculatively_ready(plan) {
                                continue;
                            }
                            // Speculative seal: EOS evidence from every
                            // machine proves the join's input is complete
                            // even though the release counters still lag.
                            self.spec_pending.insert(idx, Instant::now());
                            self.join_stats.speculative_seals += 1;
                            self.trace
                                .instant_kv("speculative_seal", kv("segment", idx as u64));
                        }
                        states[idx] = SegmentState::Running;
                        let start = Instant::now();
                        self.note_segment_start(idx);
                        self.maybe_inject_fault(idx)?;
                        let mut chain = self.build_chain(plan, seg, sink)?;
                        self.run_chain(&mut chain, plan, seg, run, sink)?;
                        let drains = k > 1
                            && self.config.inter_machine_stealing
                            && match chain.source {
                                ChainSource::Scan(_) => true,
                                ChainSource::Join(_) => self.config.partition_stealing && k <= 64,
                            };
                        if drains {
                            states[idx] = SegmentState::Draining;
                            chains[idx] = Some(chain);
                        } else {
                            self.flush_segment_transport(plan, run)?;
                            self.finish_chain(idx, &mut chain);
                            if self.broadcast_eos(plan) {
                                states[idx] = SegmentState::Releasing;
                            } else {
                                self.release_counter(idx, run);
                                states[idx] = SegmentState::Done;
                                done += 1;
                            }
                        }
                        self.record_segment_busy(idx, start.elapsed());
                        progressed = true;
                        break;
                    }
                    SegmentState::Draining => {
                        let mut chain = chains[idx]
                            .take()
                            .expect("draining segments keep their chain");
                        let start = Instant::now();
                        let outcome = match chain.source {
                            ChainSource::Scan(_) => {
                                self.steal_once(&mut chain, plan, seg, run, sink)?
                            }
                            ChainSource::Join(_) => {
                                self.steal_join_once(&mut chain, plan, seg, run, sink)?
                            }
                        };
                        match outcome {
                            StealOutcome::Stole => {
                                chains[idx] = Some(chain);
                                self.record_segment_busy(idx, start.elapsed());
                                progressed = true;
                                break;
                            }
                            StealOutcome::AllIdle => {
                                self.flush_segment_transport(plan, run)?;
                                self.finish_chain(idx, &mut chain);
                                if self.broadcast_eos(plan) {
                                    states[idx] = SegmentState::Releasing;
                                } else {
                                    self.release_counter(idx, run);
                                    states[idx] = SegmentState::Done;
                                    done += 1;
                                }
                                self.record_segment_busy(idx, start.elapsed());
                                progressed = true;
                                break;
                            }
                            StealOutcome::Pending => {
                                // Peers still own the segment's remaining
                                // work; fall through to shallower segments —
                                // unless strict DFS forbids generating new
                                // work while a deeper segment is unfinished
                                // (the segment resolves without us: peers
                                // drain it or go idle, and we keep absorbing
                                // the inbox from the park below).
                                chains[idx] = Some(chain);
                                if strict {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if !progressed && done < n {
                // Nothing runnable: park on the inbox (absorbing whatever
                // arrives) until a peer finishes a segment or pushes data.
                self.absorb_inbox()?;
                let span = self.trace.enter("park");
                self.router.wait_data(PARK_TIMEOUT);
                self.trace.exit(span);
            }
        }
        // Wait for thieves to ack in-flight partition ships so the charge
        // held for them is released before the run tears down (the ack was
        // sent the moment the thief absorbed the ship, so this drains fast).
        while self.pending_ship_bytes > 0 && !run.is_aborted() {
            run.check_cancel()?;
            self.absorb_inbox()?;
            if self.pending_ship_bytes == 0 {
                break;
            }
            self.router.wait_data(PARK_TIMEOUT);
        }
        self.finalize_speculative_leads();
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Barriered execution (the `pipeline_segments = false` escape hatch)
    // -----------------------------------------------------------------------

    /// Runs one segment to completion (own work, then stolen work, then a
    /// lingering absorb until every machine has finished the segment).
    ///
    /// Whatever the outcome, this machine's slot on the segment's
    /// end-of-stream counter is released — an erroring (or panicking)
    /// machine flags the run as aborted so its peers bail out of
    /// backpressure, stealing and linger loops instead of waiting forever.
    pub fn run_segment(
        &mut self,
        idx: usize,
        plan: &SegmentPlan,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let seg = &run.segments[idx];
        let panic_guard = AbortOnPanic(run);
        let mut result = self.run_segment_inner(idx, plan, seg, run, sink);
        if result.is_ok() {
            // Deliver everything still owed over the lossy transport before
            // announcing end-of-stream (failed runs release regardless — the
            // abort flag stops consumers from trusting the stream anyway).
            result = self.flush_segment_transport(plan, run);
        }
        if result.is_err() {
            run.abort();
        }
        // Release our end-of-stream slot and nudge parked peers.
        self.release_segment(idx, plan, run);
        // Linger: keep absorbing the inbox until every machine is done with
        // this segment, so producers blocked on our bounded inbox always
        // drain. The machine parks on the router between sweeps.
        let linger = (|| -> Result<()> {
            while !seg.is_done() && !run.is_aborted() {
                run.check_cancel()?;
                self.absorb_inbox()?;
                self.router.wait_data(PARK_TIMEOUT);
            }
            self.absorb_inbox()
        })();
        if linger.is_err() {
            run.abort();
        }
        drop(panic_guard);
        result.and(linger)
    }

    /// The fallible body of [`MachineState::run_segment`]: instantiates the
    /// segment's operators and drives them with the BFS/DFS-adaptive
    /// scheduler below, then steals until the cluster is idle.
    fn run_segment_inner(
        &mut self,
        idx: usize,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let start = Instant::now();
        self.note_segment_start(idx);
        self.maybe_inject_fault(idx)?;
        let mut chain = self.build_chain(plan, seg, sink)?;
        self.run_chain(&mut chain, plan, seg, run, sink)?;
        if matches!(chain.source, ChainSource::Scan(_)) && self.config.inter_machine_stealing {
            self.steal_loop(&mut chain, plan, seg, run, sink)?;
        }
        self.finish_chain(idx, &mut chain);
        self.record_segment_busy(idx, start.elapsed());
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Shared chain execution and work stealing
    // -----------------------------------------------------------------------

    /// The BFS/DFS-adaptive scheduling loop (Algorithm 5) over this
    /// segment's operator chain: source (scan or join), extends, terminal.
    /// Each invocation is one `chain` span on the machine's track (a
    /// draining segment re-enters here per stolen batch or adoption).
    fn run_chain(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let span = self
            .trace
            .enter_kv("chain", kv("segment", plan.segment.id as u64));
        let result = self.run_chain_inner(chain, plan, seg, run, sink);
        self.trace.exit(span);
        result
    }

    fn run_chain_inner(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        if matches!(chain.source, ChainSource::Join(_)) {
            self.maybe_panic_at(plan.segment.id, PanicPoint::Probe);
        }
        let queues = Arc::clone(&seg.queues[self.machine]);
        let num_extends = chain.extends.len();
        // Operator indices: 0 = source, 1..=num_extends = extends,
        // num_extends + 1 = terminal.
        let terminal_idx = num_extends + 1;
        let mut current = 0usize;
        loop {
            // The per-batch cancellation poll: one atomic load per
            // scheduling step bounds how long a cancel can go unobserved.
            run.check_cancel()?;
            // Keep the streaming shuffle flowing: route anything that peers
            // pushed at us into its pending joiner before scheduling.
            if self.router.has_data() {
                self.absorb_inbox()?;
            }
            // Answer thieves without waiting for the chain to finish — both
            // for the join this chain is probing and for joins still pending
            // (a long probe must not starve an idle peer).
            if !self.steal_requests.is_empty() {
                if let ChainSource::Join(join) = &mut chain.source {
                    self.service_active_join_steals(plan.segment.id, join)?;
                }
                self.service_pending_join_steals()?;
            }
            // Re-evaluate memory pressure every scheduling step; under Red
            // the chain's own sealed join (if any) spills its not-yet-probed
            // partitions too (`governor_tick` handles the pending builds).
            if self.governor_tick()? == PressureLevel::Red {
                if let ChainSource::Join(join) = &mut chain.source {
                    if join.buffered_bytes() >= SPILL_WATERMARK_BYTES {
                        let spilled = join.spill_to_disk()?;
                        self.governor.record_spill(self.machine, spilled);
                    }
                }
            }
            let has_input = match current {
                0 => chain.source.has_more(),
                i if i == terminal_idx => !queues.queue(num_extends).is_empty(),
                i => !queues.queue(i - 1).is_empty(),
            };
            if !has_input {
                if current == 0 {
                    // Source exhausted: finish when nothing remains anywhere.
                    if queues.all_empty() {
                        break;
                    }
                    current += 1;
                    continue;
                }
                // Backtrack only while some upstream operator still has work;
                // otherwise keep moving towards the terminal (and stop at the
                // terminal once the whole chain has drained).
                let upstream_has_work = chain.source.has_more()
                    || (0..current.saturating_sub(1)).any(|i| !queues.queue(i).is_empty());
                if upstream_has_work {
                    current -= 1;
                } else if current == terminal_idx {
                    break;
                } else {
                    current += 1;
                }
                continue;
            }
            if current == terminal_idx {
                while let Some(batch) = queues.queue(num_extends).pop() {
                    self.consume_terminal(plan, &batch, sink, run)?;
                }
                current -= 1;
                continue;
            }
            // Schedule the operator: consume input until its output queue
            // fills or the input drains (Algorithm 5 lines 6-9).
            loop {
                let produced: Option<ColBatch> = if current == 0 {
                    let ctx = self.op_context();
                    chain.source.poll(&ctx)?
                } else {
                    match queues.queue(current - 1).pop() {
                        Some(input) => {
                            let ctx = self.op_context();
                            let op = &mut chain.extends[current - 1];
                            op.push_input(input, &ctx)?;
                            match op.poll_next(&ctx)? {
                                OpPoll::Ready(batch) => Some(batch),
                                OpPoll::Pending | OpPoll::Exhausted => None,
                            }
                        }
                        None => None,
                    }
                };
                let Some(produced) = produced else { break };
                for chunk in produced.split_into_chunks(self.effective_batch_size()) {
                    queues.queue(current).push(chunk);
                }
                // Re-check pressure after every batch landed in a queue: the
                // feed loop is where memory actually grows, so the governor
                // must be able to shrink the effective capacity *mid-feed*
                // (otherwise a generous Green capacity lets one operator
                // materialise its whole input before the next control step).
                self.governor_tick()?;
                if queues.queue(current).is_full() {
                    // Under pressure the queue fills early because the
                    // governor shrank it — that deferral is the throttling
                    // the run report counts.
                    if self.governor.is_throttling(self.machine) {
                        self.governor.record_throttled(self.machine);
                    }
                    break;
                }
            }
            // Move to the successor (the terminal backtracks on its own).
            current += 1;
        }
        Ok(())
    }

    /// Consumes one fully-extended batch at the terminal.
    fn consume_terminal(
        &mut self,
        plan: &SegmentPlan,
        batch: &ColBatch,
        sink: SinkMode,
        run: &RunShared,
    ) -> Result<()> {
        match &plan.terminal {
            Terminal::Sink => {
                // Count-only sinks touch nothing but the logical length: a
                // verify-mode final batch is never compacted.
                self.matches += batch.len() as u64;
                if let SinkMode::Collect(limit) = sink {
                    let schema = &plan.segment.schema;
                    let mut row = Vec::with_capacity(batch.arity());
                    for i in 0..batch.len() {
                        if self.samples.len() >= limit {
                            break;
                        }
                        row.clear();
                        batch.read_row(i, &mut row);
                        self.samples.push(reorder_row(&row, schema));
                    }
                }
            }
            Terminal::FeedJoin {
                consumer: _,
                key_positions,
            } => {
                let k = self.router.num_machines();
                // Envelopes are tagged with the *producing* segment id so the
                // consuming join can tell its left input from its right. The
                // selection gather happens inside the partitioner, so the
                // row-major wire batches carry only surviving rows.
                for (dest, out) in partition_cols_by_key(batch, key_positions, k)
                    .into_iter()
                    .enumerate()
                {
                    self.push_with_backpressure(dest, plan.segment.id, out, run)?;
                }
            }
        }
        Ok(())
    }

    /// One inter-machine stealing attempt on a draining scan segment
    /// (§5.3): steal scan chunks or queued batches from a peer and run the
    /// chain on them, report that every machine is idle, or report that
    /// peers are still busy (so the dataflow scheduler can visit another
    /// segment instead of blocking).
    fn steal_once(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<StealOutcome> {
        let k = seg.queues.len();
        if k <= 1 {
            return Ok(StealOutcome::AllIdle);
        }
        // Drop the idle flag *before* scanning for work: the instant every
        // flag is set doubles as the segment's end-of-stream
        // ([`SegmentShared::is_done`]), so a machine must never hold (or be
        // acquiring) work while it advertises idleness.
        seg.idle[self.machine].store(false, Ordering::SeqCst);
        let mut stolen_any = false;
        for offset in 1..k {
            let victim = (self.machine + offset) % k;
            // Prefer stealing unscanned vertices (most work remaining).
            let chunks = seg.scan_pools[victim].steal_half();
            if !chunks.is_empty() {
                let bytes: u64 = chunks
                    .iter()
                    .map(|c| (c.len() * std::mem::size_of::<u32>()) as u64)
                    .sum();
                self.rpc.record_steal(self.machine, bytes);
                self.batches_stolen += chunks.len() as u64;
                seg.scan_pools[self.machine].add_chunks(chunks);
                stolen_any = true;
                break;
            }
            // Otherwise steal buffered batches from the victim's queues,
            // upstream-most first (they carry the most remaining work).
            // `steal_into` transfers the memory accounting with the
            // batches, so cluster-wide `current()` stays conserved.
            for op in 0..seg.queues[victim].len() {
                let (batches, bytes) = seg.queues[victim]
                    .queue(op)
                    .steal_into(seg.queues[self.machine].queue(op));
                if batches == 0 {
                    continue;
                }
                self.rpc.record_steal(self.machine, bytes);
                self.batches_stolen += batches;
                stolen_any = true;
                break;
            }
            if stolen_any {
                break;
            }
        }
        if stolen_any {
            self.trace
                .instant_kv("steal", kv("segment", plan.segment.id as u64));
            self.run_chain(chain, plan, seg, run, sink)?;
            return Ok(StealOutcome::Stole);
        }
        seg.idle[self.machine].store(true, Ordering::SeqCst);
        if seg.idle.iter().all(|f| f.load(Ordering::SeqCst)) || run.is_aborted() {
            return Ok(StealOutcome::AllIdle);
        }
        Ok(StealOutcome::Pending)
    }

    /// The barriered-mode stealing loop: steal until every machine is idle,
    /// parking on the inbox (and absorbing arriving shuffle data) while
    /// there is nothing to take.
    fn steal_loop(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        loop {
            match self.steal_once(chain, plan, seg, run, sink)? {
                StealOutcome::Stole => continue,
                StealOutcome::AllIdle => return Ok(()),
                StealOutcome::Pending => {
                    run.check_cancel()?;
                    self.absorb_inbox()?;
                    self.router.wait_data(PARK_TIMEOUT);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Cross-machine Grace partition stealing and speculative sealing
    // -----------------------------------------------------------------------

    /// Pops the next unanswered steal request for `segment`, dropping the
    /// stash entry once empty (so `steal_requests.is_empty()` stays a cheap
    /// "nothing to service" guard on the hot paths).
    fn pop_steal_request(&mut self, segment: usize) -> Option<MachineId> {
        let queue = self.steal_requests.get_mut(&segment)?;
        let thief = queue.pop_front();
        if queue.is_empty() {
            self.steal_requests.remove(&segment);
        }
        thief
    }

    /// Pops the next adopted-but-unattached partition for `segment`. A
    /// successful adoption proves peers still had shippable work, so the
    /// tried-peers mask resets.
    fn pop_adopted(&mut self, segment: usize) -> Option<(Vec<VertexId>, Vec<VertexId>, u64)> {
        let ctl = self.join_ctl.get_mut(&segment)?;
        let part = ctl.adopted.pop_front()?;
        ctl.tried = 0;
        Some(part)
    }

    /// Ships one sealed partition to `thief` over the router's control
    /// plane. The rows' tracker charge stays on this machine (recorded in
    /// `pending_ship_bytes`) until the thief's [`ControlMsg::ShipAck`]
    /// releases it — the same allocate-before-release hand-off as
    /// [`SharedQueue::steal_into`](crate::scheduler::SharedQueue::steal_into).
    fn ship_partition(
        &mut self,
        thief: MachineId,
        segment: usize,
        partition: usize,
        left: Vec<VertexId>,
        right: Vec<VertexId>,
    ) {
        self.maybe_panic_at(segment, PanicPoint::Ship);
        let bytes = ((left.len() + right.len()) * std::mem::size_of::<VertexId>()) as u64;
        let ship_id = self.next_ship_id;
        self.next_ship_id += 1;
        self.pending_ship_bytes += bytes;
        self.pending_ships.insert(ship_id, bytes);
        self.trace.instant_kv(
            "ship_partition",
            kv2("segment", segment as u64, "bytes", bytes),
        );
        // Ships ride the lossy path when the transport is armed: a dropped
        // envelope is retransmitted from the control-retry ledger and a
        // duplicated one is deduplicated by the thief on `(victim, ship_id)`.
        self.router.send_control_lossy(
            thief,
            ControlMsg::PartitionShip {
                segment,
                partition,
                ship_id,
                bytes,
                left: encode_rows(&left),
                right: encode_rows(&right),
            },
        );
    }

    /// Answers thieves queued on join segments this machine has *not
    /// started yet* (the build still sits in `pending_joins`). Safe even
    /// before the local seal: a request is only ever sent after the join's
    /// input is globally complete, and [`MachineState::absorb_inbox`]
    /// drained all data envelopes before stashing the request, so the
    /// buffered partitions can no longer grow.
    fn service_pending_join_steals(&mut self) -> Result<()> {
        if self.steal_requests.is_empty() {
            return Ok(());
        }
        let segments: Vec<usize> = self
            .steal_requests
            .keys()
            .copied()
            .filter(|s| self.pending_joins.contains_key(s))
            .collect();
        for segment in segments {
            while let Some(thief) = self.pop_steal_request(segment) {
                let taken = self
                    .pending_joins
                    .get_mut(&segment)
                    .expect("filtered on pending joins")
                    .take_unprobed_partition()?;
                match taken {
                    Some((p, left, right)) => self.ship_partition(thief, segment, p, left, right),
                    None => self
                        .router
                        .send_control(thief, ControlMsg::ShipNack { segment }),
                }
            }
        }
        Ok(())
    }

    /// Answers thieves queued on the join segment whose chain this machine
    /// is actively probing: sealed-but-unprobed partitions ship straight out
    /// of the live [`JoinStream`](crate::join::JoinStream).
    fn service_active_join_steals(&mut self, segment: usize, join: &mut PushJoin) -> Result<()> {
        while let Some(thief) = self.pop_steal_request(segment) {
            match join.take_unprobed_partition()? {
                Some((p, left, right)) => self.ship_partition(thief, segment, p, left, right),
                None => self
                    .router
                    .send_control(thief, ControlMsg::ShipNack { segment }),
            }
        }
        Ok(())
    }

    /// One partition-stealing attempt on a *draining join segment*: adopt a
    /// shipped partition and probe it, keep waiting on an outstanding
    /// request, ask the next untried peer, or conclude that every machine is
    /// idle. Mirrors [`MachineState::steal_once`], with `PartitionShip`
    /// envelopes instead of shared-queue batches.
    fn steal_join_once(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<StealOutcome> {
        let k = seg.queues.len();
        if k <= 1 {
            return Ok(StealOutcome::AllIdle);
        }
        let segment = plan.segment.id;
        // Our own probing exhausted the local partitions (that is what put
        // the chain into Draining), so queued thieves always get a nack —
        // never silence, which would wedge two draining machines on each
        // other's answers.
        while let Some(thief) = self.pop_steal_request(segment) {
            self.router
                .send_control(thief, ControlMsg::ShipNack { segment });
        }
        if let Some((left, right, bytes)) = self.pop_adopted(segment) {
            // Adopted work in hand: stay visibly non-idle and probe the
            // partition through the chain like a locally-built one.
            seg.idle[self.machine].store(false, Ordering::SeqCst);
            let attached = match &mut chain.source {
                ChainSource::Join(join) => join.adopt_partition(left, right),
                ChainSource::Scan(_) => false,
            };
            if !attached {
                // No live stream to attach to; hand the charge back.
                self.memory.release(bytes);
                return Ok(StealOutcome::Pending);
            }
            self.join_stats.partitions_stolen += 1;
            self.trace.instant_kv(
                "adopt_partition",
                kv2("segment", segment as u64, "bytes", bytes),
            );
            self.run_chain(chain, plan, seg, run, sink)?;
            return Ok(StealOutcome::Stole);
        }
        if self
            .join_ctl
            .get(&segment)
            .is_some_and(|ctl| ctl.outstanding)
        {
            // A victim owes us a ship or a nack; the idle flag stays down
            // while the answer is in flight so the all-idle gate cannot
            // fire under a ship.
            return Ok(StealOutcome::Pending);
        }
        let target = {
            let ctl = self.join_ctl.entry(segment).or_default();
            let mut target = None;
            for offset in 1..k {
                let victim = (self.machine + offset) % k;
                if ctl.tried & (1u64 << victim) != 0 {
                    continue;
                }
                if seg.idle[victim].load(Ordering::SeqCst) {
                    // A drained peer has nothing left to ship; skip the
                    // round-trip. (Nacks are permanent for the same reason:
                    // sealed partitions only ever get probed or shipped.)
                    ctl.tried |= 1u64 << victim;
                    continue;
                }
                ctl.tried |= 1u64 << victim;
                target = Some(victim);
                break;
            }
            target
        };
        if let Some(victim) = target {
            // Drop the idle flag *before* the request leaves: a thief with
            // an outstanding request must never look idle, or the segment
            // could complete with a partition ship in flight.
            seg.idle[self.machine].store(false, Ordering::SeqCst);
            self.join_ctl
                .get_mut(&segment)
                .expect("entry created above")
                .outstanding = true;
            self.router
                .send_control(victim, ControlMsg::StealRequest { segment });
            return Ok(StealOutcome::Pending);
        }
        seg.idle[self.machine].store(true, Ordering::SeqCst);
        if seg.idle.iter().all(|f| f.load(Ordering::SeqCst)) || run.is_aborted() {
            return Ok(StealOutcome::AllIdle);
        }
        Ok(StealOutcome::Pending)
    }

    /// Speculative sealing gate: a join segment whose every dependency has
    /// broadcast [`ControlMsg::Eos`] from all `k` machines can no longer
    /// receive input, even while the release counters lag behind.
    fn speculatively_ready(&self, plan: &SegmentPlan) -> bool {
        let k = self.router.num_machines();
        if !self.config.speculative_sealing
            || k > 64
            || !matches!(plan.segment.source, SegmentSource::Join(_))
        {
            return false;
        }
        plan.segment.dependencies().iter().all(|dep| {
            self.eos_seen
                .get(dep)
                .is_some_and(|mask| mask.count_ones() as usize >= k)
        })
    }

    /// Records the seal lead of speculatively-started segments the moment
    /// the counter path catches up (how much earlier the EOS gate opened
    /// than the readiness the counter-gated scheduler would have observed).
    fn settle_speculative_leads(&mut self, plans: &[SegmentPlan], run: &RunShared) {
        if self.spec_pending.is_empty() {
            return;
        }
        let settled: Vec<usize> = self
            .spec_pending
            .keys()
            .copied()
            .filter(|&idx| run.ready(&plans[idx].segment.dependencies()))
            .collect();
        for idx in settled {
            if let Some(started) = self.spec_pending.remove(&idx) {
                self.join_stats.seal_lead = self.join_stats.seal_lead.max(started.elapsed());
            }
        }
    }

    /// Settles any speculative leads still open when the run ends (the
    /// counters were never observed ready from this machine's loop).
    fn finalize_speculative_leads(&mut self) {
        for (_, started) in self.spec_pending.drain() {
            self.join_stats.seal_lead = self.join_stats.seal_lead.max(started.elapsed());
        }
    }

    /// Releases any skew-protocol bytes still charged when a run tears down
    /// (aborted with ships or adoptions in flight) so the trackers balance.
    fn reclaim_skew_state(&mut self) {
        for ctl in self.join_ctl.values_mut() {
            for (_, _, bytes) in ctl.adopted.drain(..) {
                self.memory.release(bytes);
            }
        }
        if self.pending_ship_bytes > 0 {
            self.memory.release(self.pending_ship_bytes);
            self.pending_ship_bytes = 0;
        }
        self.pending_ships.clear();
        self.steal_requests.clear();
    }
}

/// Reorders a row (laid out by segment schema) into query-vertex order.
pub fn reorder_row(row: &[u32], schema: &[QueryVertex]) -> Vec<u32> {
    let n = schema.len();
    let mut out = vec![0u32; n];
    for (pos, &qv) in schema.iter().enumerate() {
        out[qv as usize] = row[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_row_maps_schema_to_vertex_order() {
        // Schema [v2, v0, v1] with row [20, 0, 10] -> [0, 10, 20].
        let row = [20u32, 0, 10];
        let schema = [2u8, 0, 1];
        assert_eq!(reorder_row(&row, &schema), vec![0, 10, 20]);
    }
}
