//! The per-machine runtime: segment execution under the BFS/DFS-adaptive
//! scheduler, the segment terminals (`SINK` and the `PUSH-JOIN` shuffle),
//! inter-machine work stealing, and the per-machine *dataflow scheduler*
//! that drives all segments of a run from one thread.
//!
//! The runtime is *pipelined* at two levels. Inside a segment, join inputs
//! shuffled during a producing segment are absorbed into pre-instantiated
//! [`PushJoin`] operators as they arrive ([`MachineState::absorb_inbox`]), so
//! shuffle and build phases overlap and the bounded router inboxes never need
//! to hold a segment's whole output. Across segments
//! ([`MachineState::run_all`]), each machine thread is spawned once per run
//! and picks the next segment by readiness (see
//! [`crate::scheduler::RunShared`]), so a fast machine moves on to the next
//! runnable segment while a straggler finishes — there is no per-segment
//! barrier. When a machine has nothing to compute it *parks* on the router's
//! notify handle instead of spinning.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use huge_cache::PullCache;
use huge_comm::{ColBatch, MachineId, RouterEndpoint, RpcFabric};
use huge_graph::GraphPartition;
use huge_plan::translate::{Segment, SegmentSource};
use huge_query::QueryVertex;
use std::sync::Arc;

use crate::config::{ClusterConfig, Fault, SinkMode};
use crate::exec::{
    partition_cols_by_key, BatchOperator, OpContext, OpPoll, PullExtend, PushJoin, ScanSource,
};
use crate::governor::{MemoryGovernor, PressureLevel};
use crate::join::{JoinSide, MemoryTrackerHandle};
use crate::memory::MemoryTracker;
use crate::pool::WorkerPool;
use crate::report::MachineReport;
use crate::scheduler::{RunShared, SegmentShared, SegmentState};
use crate::{EngineError, Result};

/// How long a machine parks on the router before re-checking conditions that
/// change without data arriving (idle flags, segment completion, aborts).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Join buffers below this resident size are not worth a governed spill
/// (each spill is a file append; flushing per-envelope trickles would turn
/// Red pressure into an IO storm).
const SPILL_WATERMARK_BYTES: u64 = 64 * 1024;

/// What happens to a segment's output rows.
#[derive(Clone, Debug)]
pub enum Terminal {
    /// Root segment: count (and optionally collect) complete matches.
    Sink,
    /// Shuffle the rows to the machines responsible for the join keys, as
    /// input to a later `PUSH-JOIN` segment.
    FeedJoin {
        /// The consuming join segment's id (used to tag router envelopes).
        consumer: usize,
        /// Positions of the join-key columns in this segment's schema.
        key_positions: Vec<usize>,
    },
}

/// The per-segment execution plan shared by all machines.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The translated segment (source, extends, schema).
    pub segment: Segment,
    /// What to do with the segment's output.
    pub terminal: Terminal,
    /// For join segments: the schema lengths (arities) of the left and right
    /// producer segments. `None` for scan segments.
    pub producer_arities: Option<(usize, usize)>,
}

/// Sets the run's abort flag if the holder unwinds (a panicking machine must
/// not leave its peers parked forever; peers poll the flag on their park
/// timeout).
struct AbortOnPanic<'a>(&'a RunShared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// The input feeding a segment's operator chain.
enum ChainSource {
    /// A join segment's `PUSH-JOIN`, polled lazily partition by partition
    /// (boxed: the joiner's partition buffers dwarf the scan cursor).
    Join(Box<PushJoin>),
    /// A scan segment's (stealable) cursor.
    Scan(ScanSource),
}

impl ChainSource {
    fn has_more(&self) -> bool {
        match self {
            ChainSource::Scan(s) => s.has_more(),
            ChainSource::Join(j) => j.has_more(),
        }
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Result<Option<ColBatch>> {
        let poll = match self {
            ChainSource::Scan(s) => s.poll_next(ctx)?,
            ChainSource::Join(j) => j.poll_next(ctx)?,
        };
        Ok(match poll {
            OpPoll::Ready(batch) => Some(batch),
            OpPoll::Pending | OpPoll::Exhausted => None,
        })
    }
}

/// One segment's instantiated operator chain on one machine. Under the
/// pipelined scheduler a chain persists across scheduler visits (a draining
/// segment is revisited to steal from peers) until the segment finishes.
struct SegmentChain {
    source: ChainSource,
    extends: Vec<PullExtend>,
}

/// The outcome of one stealing attempt on a draining segment.
enum StealOutcome {
    /// Work was stolen and executed; try again.
    Stole,
    /// Every machine is idle on the segment (or the run aborted): finish it.
    AllIdle,
    /// Nothing stealable right now, but peers are still busy — revisit.
    Pending,
}

/// The state a machine carries across segments of one run.
pub struct MachineState {
    /// This machine's id.
    pub machine: MachineId,
    /// Its graph partition.
    pub partition: GraphPartition,
    /// Its adjacency cache (persists across segments of a run).
    pub cache: Box<dyn PullCache>,
    /// Pushing endpoint.
    pub router: RouterEndpoint,
    /// Pulling fabric.
    pub rpc: RpcFabric,
    /// Intra-machine worker pool (persistent: workers are spawned once and
    /// reused across every operator invocation and segment).
    pub pool: WorkerPool,
    /// Memory tracker for intermediate results.
    pub memory: Arc<MemoryTracker>,
    /// The run's memory governor (a no-op unless a budget is configured).
    pub governor: Arc<MemoryGovernor>,
    /// Engine configuration.
    pub config: ClusterConfig,
    /// Directory for `PUSH-JOIN` spill files.
    pub spill_dir: PathBuf,
    /// Matches counted by this machine's sink.
    pub matches: u64,
    /// Collected sample matches (in query-vertex order).
    pub samples: Vec<Vec<u32>>,
    /// Busy time per intra-machine worker.
    pub worker_busy: Vec<Duration>,
    /// Total time spent in `PULL-EXTEND` fetch stages.
    pub fetch_time: Duration,
    /// Total active time this machine spent executing segments.
    pub compute_time: Duration,
    /// Batches obtained through inter-machine stealing.
    pub batches_stolen: u64,
    /// Active execution time per segment (indexed by segment id).
    segment_busy: Vec<Duration>,
    /// First-activity and completion offsets of each segment relative to the
    /// run epoch (`None` until the machine starts the segment).
    segment_spans: Vec<Option<(Duration, Duration)>>,
    /// The shared instant all machines measure spans against.
    run_epoch: Instant,
    /// Pre-instantiated joiners for every `PUSH-JOIN` segment of the current
    /// run, keyed by the join segment's id. Shuffled inputs stream into them
    /// as they arrive (replacing the old consumer-side envelope stash).
    pending_joins: HashMap<usize, PushJoin>,
    /// Routing table for inbound envelopes: producing segment id → (join
    /// segment id, side of the join it feeds).
    join_feeds: HashMap<usize, (usize, JoinSide)>,
}

impl MachineState {
    /// Creates the state for one machine.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        partition: GraphPartition,
        cache: Box<dyn PullCache>,
        router: RouterEndpoint,
        rpc: RpcFabric,
        memory: Arc<MemoryTracker>,
        governor: Arc<MemoryGovernor>,
        config: ClusterConfig,
        spill_dir: PathBuf,
    ) -> Self {
        let workers = config.workers_per_machine;
        let pool = WorkerPool::new(workers, config.load_balance);
        MachineState {
            machine,
            partition,
            cache,
            router,
            rpc,
            pool,
            memory,
            governor,
            config,
            spill_dir,
            matches: 0,
            samples: Vec::new(),
            worker_busy: vec![Duration::ZERO; workers],
            fetch_time: Duration::ZERO,
            compute_time: Duration::ZERO,
            batches_stolen: 0,
            segment_busy: Vec::new(),
            segment_spans: Vec::new(),
            run_epoch: Instant::now(),
            pending_joins: HashMap::new(),
            join_feeds: HashMap::new(),
        }
    }

    /// Prepares a run: instantiates one [`PushJoin`] per join segment and
    /// the envelope routing table, so inbound shuffle data can be absorbed
    /// the moment it arrives — during the *producing* segment. `epoch` is
    /// the shared instant per-segment spans are measured against.
    pub fn prepare_run(&mut self, plans: &[SegmentPlan], epoch: Instant) {
        self.run_epoch = epoch;
        self.segment_busy = vec![Duration::ZERO; plans.len()];
        self.segment_spans = vec![None; plans.len()];
        self.pending_joins.clear();
        self.join_feeds.clear();
        for plan in plans {
            if let SegmentSource::Join(op) = &plan.segment.source {
                let (left_arity, right_arity) = plan
                    .producer_arities
                    .expect("join segments carry their producers' arities");
                self.join_feeds
                    .insert(op.left, (plan.segment.id, JoinSide::Left));
                self.join_feeds
                    .insert(op.right, (plan.segment.id, JoinSide::Right));
                self.pending_joins.insert(
                    plan.segment.id,
                    PushJoin::new(
                        op.clone(),
                        left_arity,
                        right_arity,
                        self.config.join_buffer_bytes,
                        self.spill_dir.join(format!("seg-{}", plan.segment.id)),
                        MemoryTrackerHandle::Tracked(Arc::clone(&self.memory)),
                        self.config.batch_size,
                    ),
                );
            }
        }
    }

    /// Produces the per-machine report after a run.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            machine: self.machine,
            matches: self.matches,
            compute_time: self.compute_time,
            worker_busy: self.worker_busy.clone(),
            peak_memory_bytes: self.memory.peak(),
            comm: self.rpc.stats().machine(self.machine).snapshot(),
            batches_stolen: self.batches_stolen,
            segment_busy: self.segment_busy.clone(),
            segment_spans: self.segment_spans.clone(),
        }
    }

    /// The batch size operators should use right now: the configured size,
    /// capped by the governor under Red pressure (the strict-DFS scan cap).
    fn effective_batch_size(&self) -> usize {
        self.governor
            .effective_batch_size(self.machine, self.config.batch_size)
    }

    fn op_context(&self) -> OpContext<'_> {
        OpContext {
            machine: self.machine,
            partition: &self.partition,
            rpc: &self.rpc,
            cache: self.cache.as_ref(),
            use_cache: !self.config.disable_cache,
            pool: &self.pool,
            batch_size: self.effective_batch_size(),
        }
    }

    /// Re-evaluates memory pressure and fires the actuators that need
    /// machine-local state: under Red pressure the pending `PUSH-JOIN`
    /// builds flush their Grace partitions to disk (sealed streams are
    /// spilled by [`MachineState::run_chain`], which owns them). Returns the
    /// current level so callers can tighten their own scheduling.
    fn governor_tick(&mut self) -> Result<PressureLevel> {
        let level = self.governor.tick(self.machine);
        if level == PressureLevel::Red {
            let mut spilled = 0u64;
            for join in self.pending_joins.values_mut() {
                if join.buffered_bytes() >= SPILL_WATERMARK_BYTES {
                    spilled += join.spill_to_disk()?;
                }
            }
            if spilled > 0 {
                self.governor.record_spill(self.machine, spilled);
            }
        }
        Ok(level)
    }

    /// Moves every queued inbound envelope into the joiner it feeds. This is
    /// the consumer half of the streaming shuffle: it runs opportunistically
    /// during chain execution, while waiting for space on a full destination
    /// inbox, and whenever the dataflow scheduler has nothing runnable.
    fn absorb_inbox(&mut self) -> Result<()> {
        while let Some(env) = self.router.try_recv() {
            let &(join_id, side) = self.join_feeds.get(&env.segment).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received an envelope for unknown segment {}",
                    self.machine, env.segment
                ))
            })?;
            let join = self.pending_joins.get_mut(&join_id).ok_or_else(|| {
                EngineError::Config(format!(
                    "machine {} received input for already-finished join segment {join_id}",
                    self.machine
                ))
            })?;
            join.push_side(side, &env.batch)?;
        }
        Ok(())
    }

    /// Pushes one shuffle batch with backpressure: while the destination
    /// inbox is full, absorb the own inbox (so peers blocked on *us* make
    /// progress — this is what keeps the cooperative protocol deadlock-free)
    /// and park briefly for space. Bails out when a peer aborted the run
    /// (a failed machine will never drain its inbox).
    fn push_with_backpressure(
        &mut self,
        dest: MachineId,
        segment: usize,
        batch: huge_comm::RowBatch,
        run: &RunShared,
    ) -> Result<()> {
        let mut pending = batch;
        let mut throttle_counted = false;
        loop {
            match self.router.try_push(dest, segment, pending) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if run.is_aborted() {
                        return Err(EngineError::Aborted(
                            "shuffle target lost to a failed peer machine".into(),
                        ));
                    }
                    // A bounce is the governor's backpressure actuator at
                    // work when the *destination* is under pressure (it is
                    // the dest's inbox capacity the governor shrank): count
                    // the deferred batch once, against the machine whose
                    // pressure caused it.
                    if !throttle_counted && self.governor.is_throttling(dest) {
                        self.governor.record_throttled(dest);
                        throttle_counted = true;
                    }
                    pending = back;
                    self.absorb_inbox()?;
                    self.router.wait_space(dest, PARK_TIMEOUT);
                }
            }
        }
    }

    /// Fires the configured chaos fault if it targets this machine/segment.
    fn maybe_inject_fault(&self, segment: usize) {
        if let Some(spec) = self.config.fault_injection {
            if spec.machine == self.machine && spec.segment == segment {
                match spec.fault {
                    Fault::Delay(d) => std::thread::sleep(d),
                    Fault::Panic => panic!(
                        "injected fault: machine {} panics in segment {segment}",
                        self.machine
                    ),
                }
            }
        }
    }

    /// Records the first time this machine touches segment `idx`.
    fn note_segment_start(&mut self, idx: usize) {
        if let Some(slot) = self.segment_spans.get_mut(idx) {
            if slot.is_none() {
                let now = self.run_epoch.elapsed();
                *slot = Some((now, now));
            }
        }
    }

    /// Accumulates active time spent on segment `idx`.
    fn record_segment_busy(&mut self, idx: usize, elapsed: Duration) {
        if let Some(busy) = self.segment_busy.get_mut(idx) {
            *busy += elapsed;
        }
        self.compute_time += elapsed;
    }

    /// Instantiates a segment's operator chain from the shared execution
    /// substrate. For join segments the producers are globally done (the
    /// readiness policy guarantees it), so any final envelopes still queued
    /// are absorbed and the build sealed.
    fn build_chain(
        &mut self,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        sink: SinkMode,
    ) -> Result<SegmentChain> {
        let mut extends: Vec<PullExtend> = plan
            .segment
            .extends
            .iter()
            .map(|op| PullExtend::new(op.clone()))
            .collect();
        // Count-only fast path: when the root segment merely counts matches,
        // the final extension's output column never needs materialising.
        let count_only = matches!(plan.terminal, Terminal::Sink)
            && sink == SinkMode::Count
            && !extends.is_empty();
        if count_only {
            extends.last_mut().expect("non-empty").set_count_only(true);
        }
        let source = match &plan.segment.source {
            SegmentSource::Scan(scan) => ChainSource::Scan(ScanSource::new(
                scan.clone(),
                seg.scan_pools[self.machine].clone(),
            )),
            SegmentSource::Join(_) => {
                self.absorb_inbox()?;
                let mut join = self.pending_joins.remove(&plan.segment.id).ok_or_else(|| {
                    EngineError::Config(format!(
                        "join segment {} was not prepared",
                        plan.segment.id
                    ))
                })?;
                let ctx = self.op_context();
                join.finish_input(&ctx)?;
                ChainSource::Join(Box::new(join))
            }
        };
        Ok(SegmentChain { source, extends })
    }

    /// Harvests a finished chain's timings and counters and stamps the
    /// segment's completion time.
    fn finish_chain(&mut self, idx: usize, chain: &mut SegmentChain) {
        for ext in &mut chain.extends {
            let (fetch, busy) = ext.take_timings();
            self.fetch_time += fetch;
            for (w, d) in busy.iter().enumerate() {
                if w < self.worker_busy.len() {
                    self.worker_busy[w] += *d;
                }
            }
            self.matches += ext.take_count();
        }
        if let Some(span) = self.segment_spans.get_mut(idx) {
            let end = self.run_epoch.elapsed();
            let start = span.map(|(s, _)| s).unwrap_or(end);
            *span = Some((start, end));
        }
    }

    /// Releases this machine's end-of-stream slot for segment `idx` and
    /// nudges parked peers to re-check readiness: once every machine has
    /// released, the segment's shuffle output is complete and consuming
    /// joins may seal.
    fn release_segment(&mut self, idx: usize, run: &RunShared) {
        run.segments[idx].remaining.fetch_sub(1, Ordering::SeqCst);
        for m in 0..self.router.num_machines() {
            self.router.wake(m);
        }
    }

    // -----------------------------------------------------------------------
    // The per-machine dataflow scheduler (pipelined execution)
    // -----------------------------------------------------------------------

    /// Drives *all* segments of the run to completion from this machine's
    /// single thread: the barrier-free replacement for per-segment
    /// spawn/join. Segments advance through
    /// [`SegmentState`](crate::scheduler::SegmentState); the next segment is
    /// picked deepest-first among the runnable ones (DFS bias — drain
    /// consumers before growing producers). Any failure (or panic) aborts
    /// the whole run and unparks every peer.
    pub fn run_all(
        &mut self,
        plans: &[SegmentPlan],
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let panic_guard = AbortOnPanic(run);
        let result = self.run_all_inner(plans, run, sink);
        if result.is_err() {
            run.abort();
        }
        // Nudge parked peers so they re-check the abort flag and the
        // readiness counters promptly.
        for m in 0..self.router.num_machines() {
            self.router.wake(m);
        }
        drop(panic_guard);
        result
    }

    fn run_all_inner(
        &mut self,
        plans: &[SegmentPlan],
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let n = plans.len();
        let k = self.router.num_machines();
        let mut states = vec![SegmentState::NotStarted; n];
        let mut chains: Vec<Option<SegmentChain>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        while done < n {
            if run.is_aborted() {
                return Err(EngineError::Aborted("a peer machine failed".into()));
            }
            // Keep the streaming shuffle flowing whatever segment runs next.
            self.absorb_inbox()?;
            // Under Red pressure the DFS bias tightens into strict DFS:
            // *only* the deepest non-done segment may run, so the machine
            // drains partials towards the sink instead of starting shallower
            // producers that generate new ones.
            let strict = self.governor_tick()? == PressureLevel::Red;
            let mut progressed = false;
            for idx in (0..n).rev() {
                let plan = &plans[idx];
                let seg = &run.segments[idx];
                match states[idx] {
                    SegmentState::Done => continue,
                    SegmentState::Running => {
                        unreachable!("Running is transient within one scheduler visit")
                    }
                    SegmentState::NotStarted => {
                        if !run.ready(&plan.segment.dependencies()) {
                            continue;
                        }
                        states[idx] = SegmentState::Running;
                        let start = Instant::now();
                        self.note_segment_start(idx);
                        self.maybe_inject_fault(idx);
                        let mut chain = self.build_chain(plan, seg, sink)?;
                        self.run_chain(&mut chain, plan, seg, run, sink)?;
                        let drains = k > 1
                            && self.config.inter_machine_stealing
                            && matches!(chain.source, ChainSource::Scan(_));
                        if drains {
                            states[idx] = SegmentState::Draining;
                            chains[idx] = Some(chain);
                        } else {
                            self.finish_chain(idx, &mut chain);
                            self.release_segment(idx, run);
                            states[idx] = SegmentState::Done;
                            done += 1;
                        }
                        self.record_segment_busy(idx, start.elapsed());
                        progressed = true;
                        break;
                    }
                    SegmentState::Draining => {
                        let mut chain = chains[idx]
                            .take()
                            .expect("draining segments keep their chain");
                        let start = Instant::now();
                        match self.steal_once(&mut chain, plan, seg, run, sink)? {
                            StealOutcome::Stole => {
                                chains[idx] = Some(chain);
                                self.record_segment_busy(idx, start.elapsed());
                                progressed = true;
                                break;
                            }
                            StealOutcome::AllIdle => {
                                self.finish_chain(idx, &mut chain);
                                self.release_segment(idx, run);
                                states[idx] = SegmentState::Done;
                                done += 1;
                                self.record_segment_busy(idx, start.elapsed());
                                progressed = true;
                                break;
                            }
                            StealOutcome::Pending => {
                                // Peers still own the segment's remaining
                                // work; fall through to shallower segments —
                                // unless strict DFS forbids generating new
                                // work while a deeper segment is unfinished
                                // (the segment resolves without us: peers
                                // drain it or go idle, and we keep absorbing
                                // the inbox from the park below).
                                chains[idx] = Some(chain);
                                if strict {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if !progressed && done < n {
                // Nothing runnable: park on the inbox (absorbing whatever
                // arrives) until a peer finishes a segment or pushes data.
                self.absorb_inbox()?;
                self.router.wait_data(PARK_TIMEOUT);
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Barriered execution (the `pipeline_segments = false` escape hatch)
    // -----------------------------------------------------------------------

    /// Runs one segment to completion (own work, then stolen work, then a
    /// lingering absorb until every machine has finished the segment).
    ///
    /// Whatever the outcome, this machine's slot on the segment's
    /// end-of-stream counter is released — an erroring (or panicking)
    /// machine flags the run as aborted so its peers bail out of
    /// backpressure, stealing and linger loops instead of waiting forever.
    pub fn run_segment(
        &mut self,
        idx: usize,
        plan: &SegmentPlan,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let seg = &run.segments[idx];
        let panic_guard = AbortOnPanic(run);
        let result = self.run_segment_inner(idx, plan, seg, run, sink);
        if result.is_err() {
            run.abort();
        }
        // Release our end-of-stream slot and nudge parked peers.
        self.release_segment(idx, run);
        // Linger: keep absorbing the inbox until every machine is done with
        // this segment, so producers blocked on our bounded inbox always
        // drain. The machine parks on the router between sweeps.
        let linger = (|| -> Result<()> {
            while !seg.is_done() && !run.is_aborted() {
                self.absorb_inbox()?;
                self.router.wait_data(PARK_TIMEOUT);
            }
            self.absorb_inbox()
        })();
        if linger.is_err() {
            run.abort();
        }
        drop(panic_guard);
        result.and(linger)
    }

    /// The fallible body of [`MachineState::run_segment`]: instantiates the
    /// segment's operators and drives them with the BFS/DFS-adaptive
    /// scheduler below, then steals until the cluster is idle.
    fn run_segment_inner(
        &mut self,
        idx: usize,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let start = Instant::now();
        self.note_segment_start(idx);
        self.maybe_inject_fault(idx);
        let mut chain = self.build_chain(plan, seg, sink)?;
        self.run_chain(&mut chain, plan, seg, run, sink)?;
        if matches!(chain.source, ChainSource::Scan(_)) && self.config.inter_machine_stealing {
            self.steal_loop(&mut chain, plan, seg, run, sink)?;
        }
        self.finish_chain(idx, &mut chain);
        self.record_segment_busy(idx, start.elapsed());
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Shared chain execution and work stealing
    // -----------------------------------------------------------------------

    /// The BFS/DFS-adaptive scheduling loop (Algorithm 5) over this
    /// segment's operator chain: source (scan or join), extends, terminal.
    fn run_chain(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        let queues = Arc::clone(&seg.queues[self.machine]);
        let num_extends = chain.extends.len();
        // Operator indices: 0 = source, 1..=num_extends = extends,
        // num_extends + 1 = terminal.
        let terminal_idx = num_extends + 1;
        let mut current = 0usize;
        loop {
            // Keep the streaming shuffle flowing: route anything that peers
            // pushed at us into its pending joiner before scheduling.
            if self.router.has_data() {
                self.absorb_inbox()?;
            }
            // Re-evaluate memory pressure every scheduling step; under Red
            // the chain's own sealed join (if any) spills its not-yet-probed
            // partitions too (`governor_tick` handles the pending builds).
            if self.governor_tick()? == PressureLevel::Red {
                if let ChainSource::Join(join) = &mut chain.source {
                    if join.buffered_bytes() >= SPILL_WATERMARK_BYTES {
                        let spilled = join.spill_to_disk()?;
                        self.governor.record_spill(self.machine, spilled);
                    }
                }
            }
            let has_input = match current {
                0 => chain.source.has_more(),
                i if i == terminal_idx => !queues.queue(num_extends).is_empty(),
                i => !queues.queue(i - 1).is_empty(),
            };
            if !has_input {
                if current == 0 {
                    // Source exhausted: finish when nothing remains anywhere.
                    if queues.all_empty() {
                        break;
                    }
                    current += 1;
                    continue;
                }
                // Backtrack only while some upstream operator still has work;
                // otherwise keep moving towards the terminal (and stop at the
                // terminal once the whole chain has drained).
                let upstream_has_work = chain.source.has_more()
                    || (0..current.saturating_sub(1)).any(|i| !queues.queue(i).is_empty());
                if upstream_has_work {
                    current -= 1;
                } else if current == terminal_idx {
                    break;
                } else {
                    current += 1;
                }
                continue;
            }
            if current == terminal_idx {
                while let Some(batch) = queues.queue(num_extends).pop() {
                    self.consume_terminal(plan, &batch, sink, run)?;
                }
                current -= 1;
                continue;
            }
            // Schedule the operator: consume input until its output queue
            // fills or the input drains (Algorithm 5 lines 6-9).
            loop {
                let produced: Option<ColBatch> = if current == 0 {
                    let ctx = self.op_context();
                    chain.source.poll(&ctx)?
                } else {
                    match queues.queue(current - 1).pop() {
                        Some(input) => {
                            let ctx = self.op_context();
                            let op = &mut chain.extends[current - 1];
                            op.push_input(input, &ctx)?;
                            match op.poll_next(&ctx)? {
                                OpPoll::Ready(batch) => Some(batch),
                                OpPoll::Pending | OpPoll::Exhausted => None,
                            }
                        }
                        None => None,
                    }
                };
                let Some(produced) = produced else { break };
                for chunk in produced.split_into_chunks(self.effective_batch_size()) {
                    queues.queue(current).push(chunk);
                }
                // Re-check pressure after every batch landed in a queue: the
                // feed loop is where memory actually grows, so the governor
                // must be able to shrink the effective capacity *mid-feed*
                // (otherwise a generous Green capacity lets one operator
                // materialise its whole input before the next control step).
                self.governor_tick()?;
                if queues.queue(current).is_full() {
                    // Under pressure the queue fills early because the
                    // governor shrank it — that deferral is the throttling
                    // the run report counts.
                    if self.governor.is_throttling(self.machine) {
                        self.governor.record_throttled(self.machine);
                    }
                    break;
                }
            }
            // Move to the successor (the terminal backtracks on its own).
            current += 1;
        }
        Ok(())
    }

    /// Consumes one fully-extended batch at the terminal.
    fn consume_terminal(
        &mut self,
        plan: &SegmentPlan,
        batch: &ColBatch,
        sink: SinkMode,
        run: &RunShared,
    ) -> Result<()> {
        match &plan.terminal {
            Terminal::Sink => {
                // Count-only sinks touch nothing but the logical length: a
                // verify-mode final batch is never compacted.
                self.matches += batch.len() as u64;
                if let SinkMode::Collect(limit) = sink {
                    let schema = &plan.segment.schema;
                    let mut row = Vec::with_capacity(batch.arity());
                    for i in 0..batch.len() {
                        if self.samples.len() >= limit {
                            break;
                        }
                        row.clear();
                        batch.read_row(i, &mut row);
                        self.samples.push(reorder_row(&row, schema));
                    }
                }
            }
            Terminal::FeedJoin {
                consumer: _,
                key_positions,
            } => {
                let k = self.router.num_machines();
                // Envelopes are tagged with the *producing* segment id so the
                // consuming join can tell its left input from its right. The
                // selection gather happens inside the partitioner, so the
                // row-major wire batches carry only surviving rows.
                for (dest, out) in partition_cols_by_key(batch, key_positions, k)
                    .into_iter()
                    .enumerate()
                {
                    self.push_with_backpressure(dest, plan.segment.id, out, run)?;
                }
            }
        }
        Ok(())
    }

    /// One inter-machine stealing attempt on a draining scan segment
    /// (§5.3): steal scan chunks or queued batches from a peer and run the
    /// chain on them, report that every machine is idle, or report that
    /// peers are still busy (so the dataflow scheduler can visit another
    /// segment instead of blocking).
    fn steal_once(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<StealOutcome> {
        let k = seg.queues.len();
        if k <= 1 {
            return Ok(StealOutcome::AllIdle);
        }
        // Drop the idle flag *before* scanning for work: the instant every
        // flag is set doubles as the segment's end-of-stream
        // ([`SegmentShared::is_done`]), so a machine must never hold (or be
        // acquiring) work while it advertises idleness.
        seg.idle[self.machine].store(false, Ordering::SeqCst);
        let mut stolen_any = false;
        for offset in 1..k {
            let victim = (self.machine + offset) % k;
            // Prefer stealing unscanned vertices (most work remaining).
            let chunks = seg.scan_pools[victim].steal_half();
            if !chunks.is_empty() {
                let bytes: u64 = chunks
                    .iter()
                    .map(|c| (c.len() * std::mem::size_of::<u32>()) as u64)
                    .sum();
                self.rpc.record_steal(self.machine, bytes);
                self.batches_stolen += chunks.len() as u64;
                seg.scan_pools[self.machine].add_chunks(chunks);
                stolen_any = true;
                break;
            }
            // Otherwise steal buffered batches from the victim's queues,
            // upstream-most first (they carry the most remaining work).
            // `steal_into` transfers the memory accounting with the
            // batches, so cluster-wide `current()` stays conserved.
            for op in 0..seg.queues[victim].len() {
                let (batches, bytes) = seg.queues[victim]
                    .queue(op)
                    .steal_into(seg.queues[self.machine].queue(op));
                if batches == 0 {
                    continue;
                }
                self.rpc.record_steal(self.machine, bytes);
                self.batches_stolen += batches;
                stolen_any = true;
                break;
            }
            if stolen_any {
                break;
            }
        }
        if stolen_any {
            self.run_chain(chain, plan, seg, run, sink)?;
            return Ok(StealOutcome::Stole);
        }
        seg.idle[self.machine].store(true, Ordering::SeqCst);
        if seg.idle.iter().all(|f| f.load(Ordering::SeqCst)) || run.is_aborted() {
            return Ok(StealOutcome::AllIdle);
        }
        Ok(StealOutcome::Pending)
    }

    /// The barriered-mode stealing loop: steal until every machine is idle,
    /// parking on the inbox (and absorbing arriving shuffle data) while
    /// there is nothing to take.
    fn steal_loop(
        &mut self,
        chain: &mut SegmentChain,
        plan: &SegmentPlan,
        seg: &SegmentShared,
        run: &RunShared,
        sink: SinkMode,
    ) -> Result<()> {
        loop {
            match self.steal_once(chain, plan, seg, run, sink)? {
                StealOutcome::Stole => continue,
                StealOutcome::AllIdle => return Ok(()),
                StealOutcome::Pending => {
                    self.absorb_inbox()?;
                    self.router.wait_data(PARK_TIMEOUT);
                }
            }
        }
    }
}

/// Reorders a row (laid out by segment schema) into query-vertex order.
pub fn reorder_row(row: &[u32], schema: &[QueryVertex]) -> Vec<u32> {
    let n = schema.len();
    let mut out = vec![0u32; n];
    for (pos, &qv) in schema.iter().enumerate() {
        out[qv as usize] = row[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_row_maps_schema_to_vertex_order() {
        // Schema [v2, v0, v1] with row [20, 0, 10] -> [0, 10, 20].
        let row = [20u32, 0, 10];
        let schema = [2u8, 0, 1];
        assert_eq!(reorder_row(&row, &schema), vec![0, 10, 20]);
    }
}
