//! The HUGE compute engine: a pushing/pulling-hybrid, bounded-memory,
//! work-stealing subgraph enumeration runtime (§4–§5 of the paper).
//!
//! # Architecture
//!
//! A [`HugeCluster`] simulates a shared-nothing cluster of `k` machines
//! inside one process. Each machine is a thread-hosted
//! [`machine::MachineState`] owning
//!
//! * a hash partition of the data graph,
//! * a worker pool with intra-machine work stealing,
//! * an [LRBU cache](huge_cache::LrbuCache) for pulled adjacency lists,
//! * a router endpoint (pushing) and an RPC handle (pulling) from
//!   `huge-comm`, and
//! * a BFS/DFS-adaptive scheduler with bounded output queues whose
//!   *effective* capacities are governed at runtime by the per-run
//!   [`governor::MemoryGovernor`] when a
//!   [`ClusterConfig::memory_budget`](config::ClusterConfig) is set.
//!
//! A query is planned by `huge-plan` (Algorithm 1), translated into a
//! dataflow of `SCAN` / `PULL-EXTEND` / `PUSH-JOIN` / `SINK` operators
//! (Algorithm 2), and executed segment by segment: `PULL-EXTEND` chains run
//! under the adaptive scheduler with bounded queues (Algorithm 5), while
//! `PUSH-JOIN` shuffles its inputs through the router and joins them with a
//! Grace-style partitioned hash join that spills to disk beyond a
//! configurable buffer (§4.3).
//!
//! # Quick start
//!
//! ```
//! use huge_core::{ClusterConfig, HugeCluster, SinkMode};
//! use huge_graph::gen;
//! use huge_query::QueryGraph;
//!
//! let graph = gen::erdos_renyi(500, 2500, 42);
//! let cluster = HugeCluster::build(graph, ClusterConfig::new(2)).unwrap();
//! let report = cluster.run(&QueryGraph::triangle(), SinkMode::Count).unwrap();
//! assert!(report.matches > 0);
//! ```

pub mod cancel;
pub mod cluster;
pub mod config;
pub mod exec;
pub mod governor;
pub mod join;
pub mod machine;
pub mod memory;
pub mod operators;
pub mod pool;
pub mod report;
pub mod scheduler;

pub use cancel::{CancelCause, CancelToken};
pub use cluster::HugeCluster;
pub use config::{ClusterConfig, Fault, FaultSpec, LoadBalance, PanicPoint, SinkMode};
pub use exec::{BatchOperator, OpContext, OpPoll};
pub use governor::{MemoryGovernor, PressureLevel};
pub use huge_trace::{TraceConfig, TraceMode, TraceSegment, TraceSummary};
pub use report::{GovernorReport, JoinReport, MachineReport, RunOutcome, RunReport};

/// Errors surfaced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Planning failed.
    Plan(huge_plan::logical::PlanError),
    /// The graph could not be partitioned.
    Graph(huge_graph::GraphError),
    /// The configuration is invalid.
    Config(String),
    /// A worker thread panicked.
    WorkerPanic(String),
    /// A peer machine failed, aborting the run.
    Aborted(String),
    /// The run was cancelled through its [`CancelToken`]. The cluster-level
    /// error carries the partial-stats [`RunReport`]
    /// (`outcome == RunOutcome::Cancelled`); errors surfaced from inside a
    /// machine thread carry `None` — the cluster owns the stats.
    Cancelled(Option<Box<RunReport>>),
    /// The run outlived [`ClusterConfig::deadline`](config::ClusterConfig).
    /// Carries the partial-stats report at the cluster level, like
    /// [`EngineError::Cancelled`].
    DeadlineExceeded(Option<Box<RunReport>>),
    /// The unreliable transport exhausted its retransmit budget for an
    /// envelope (the injected loss rate exceeded what bounded retry can
    /// recover).
    Transport(String),
    /// Spilling to disk failed.
    Io(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "planning error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Config(msg) => write!(f, "configuration error: {msg}"),
            EngineError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            EngineError::Aborted(msg) => write!(f, "run aborted: {msg}"),
            EngineError::Cancelled(_) => write!(f, "run cancelled"),
            EngineError::DeadlineExceeded(_) => write!(f, "query deadline exceeded"),
            EngineError::Transport(msg) => write!(f, "transport failure: {msg}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// The partial-stats report attached to a cancelled/deadline outcome
    /// (the teardown sweep already ran when it is present), `None` for
    /// every other error.
    pub fn partial_report(&self) -> Option<&RunReport> {
        match self {
            EngineError::Cancelled(r) | EngineError::DeadlineExceeded(r) => r.as_deref(),
            _ => None,
        }
    }
}

impl From<huge_plan::logical::PlanError> for EngineError {
    fn from(e: huge_plan::logical::PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<huge_graph::GraphError> for EngineError {
    fn from(e: huge_graph::GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
