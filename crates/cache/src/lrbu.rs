//! The least-recent-batch-used (LRBU) cache (Algorithm 3).
//!
//! LRBU tracks three structures: `M_cache` (vertex → adjacency list),
//! `Ŝ_free` (an ordered set of evictable vertices; the smallest order is the
//! eviction victim) and `S_sealed` (vertices pinned by the batch currently
//! being processed). `Seal` moves a vertex from free to sealed, `Release`
//! returns every sealed vertex to the free set with an order *larger* than
//! all existing ones — so eviction always picks a vertex from the least
//! recent batch, never one used by the current batch.
//!
//! # Concurrency & the zero-copy / lock-free claim
//!
//! The paper obtains lock-free, zero-copy reads by pairing LRBU with the
//! two-stage execution of `PULL-EXTEND`: all writes (inserts, seals) happen
//! in the fetch stage through a single writer, and the intersect stage only
//! reads. This Rust implementation keeps the structure behind a
//! `parking_lot::RwLock`, which is the idiomatic safe equivalent: during
//! the intersect stage every access is an uncontended read lock (a single
//! atomic op — no blocking, no copying, the closure borrows the cached
//! slice in place), while the fetch stage's single writer takes the write
//! lock. The Exp-6 comparison points ([`CopyLrbuCache`](crate::CopyLrbuCache),
//! [`LockLrbuCache`](crate::LockLrbuCache),
//! [`ConcurrentLruCache`](crate::ConcurrentLruCache)) add back the copies
//! and exclusive locks that LRBU avoids, so the ablation measures the same
//! effects the paper reports.

use std::collections::{BTreeMap, HashMap};

use huge_graph::VertexId;
use parking_lot::RwLock;

use crate::traits::{AtomicCacheStats, CacheStats, PullCache};

/// Per-entry bookkeeping: the adjacency list plus its position in the free
/// ordering (`None` while sealed).
struct Entry {
    neighbours: Vec<VertexId>,
    /// The order key in `free` when evictable; `None` while sealed.
    free_order: Option<u64>,
}

struct Inner {
    map: HashMap<VertexId, Entry>,
    /// Ŝ_free: order → vertex. The smallest order is evicted first.
    free: BTreeMap<u64, VertexId>,
    /// S_sealed.
    sealed: Vec<VertexId>,
    /// Monotonic order counter (larger = more recent batch).
    next_order: u64,
    /// Current payload bytes.
    bytes: u64,
}

/// The least-recent-batch-used cache.
pub struct LrbuCache {
    inner: RwLock<Inner>,
    capacity_bytes: u64,
    stats: AtomicCacheStats,
}

impl LrbuCache {
    /// Creates an LRBU cache bounded to roughly `capacity_bytes` of
    /// adjacency data.
    pub fn new(capacity_bytes: u64) -> Self {
        LrbuCache {
            inner: RwLock::new(Inner {
                map: HashMap::new(),
                free: BTreeMap::new(),
                sealed: Vec::new(),
                next_order: 0,
                bytes: 0,
            }),
            capacity_bytes: capacity_bytes.max(1),
            stats: AtomicCacheStats::default(),
        }
    }

    /// Number of sealed entries (diagnostic; used by tests).
    pub fn sealed_count(&self) -> usize {
        self.inner.read().sealed.len()
    }

    fn entry_bytes(neighbours: &[VertexId]) -> u64 {
        (std::mem::size_of_val(neighbours) + 16) as u64
    }
}

impl PullCache for LrbuCache {
    fn contains(&self, v: VertexId) -> bool {
        self.inner.read().map.contains_key(&v)
    }

    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool {
        let guard = self.inner.read();
        match guard.map.get(&v) {
            Some(entry) => {
                self.stats.hit();
                // Zero-copy: the closure borrows the cached slice directly.
                f(&entry.neighbours);
                true
            }
            None => {
                self.stats.miss();
                false
            }
        }
    }

    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>) {
        let mut inner = self.inner.write();
        if inner.map.contains_key(&v) {
            return;
        }
        let new_bytes = Self::entry_bytes(&neighbours);
        // Evict least-recent-batch entries while full and something is free.
        let mut evictions = 0u64;
        while inner.bytes + new_bytes > self.capacity_bytes && !inner.free.is_empty() {
            let (&order, &victim) = inner.free.iter().next().expect("free not empty");
            inner.free.remove(&order);
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= Self::entry_bytes(&entry.neighbours);
                evictions += 1;
            }
        }
        if evictions > 0 {
            self.stats
                .evictions
                .fetch_add(evictions, std::sync::atomic::Ordering::Relaxed);
        }
        if inner.bytes + new_bytes > self.capacity_bytes {
            // Ŝ_free is empty: the insert proceeds anyway (Algorithm 3 line
            // 6-8) and may overflow the capacity by at most one batch's worth
            // of vertices.
            self.stats
                .overflow_inserts
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let order = inner.next_order;
        inner.next_order += 1;
        inner.free.insert(order, v);
        inner.bytes += new_bytes;
        inner.map.insert(
            v,
            Entry {
                neighbours,
                free_order: Some(order),
            },
        );
        self.stats
            .inserts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn seal(&self, v: VertexId) {
        let mut inner = self.inner.write();
        if let Some(entry) = inner.map.get_mut(&v) {
            if let Some(order) = entry.free_order.take() {
                inner.free.remove(&order);
                inner.sealed.push(v);
            }
        }
    }

    fn release(&self) {
        let mut inner = self.inner.write();
        let sealed = std::mem::take(&mut inner.sealed);
        for v in sealed {
            let order = inner.next_order;
            inner.next_order += 1;
            if let Some(entry) = inner.map.get_mut(&v) {
                entry.free_order = Some(order);
                inner.free.insert(order, v);
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.read().bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.free.clear();
        inner.sealed.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nbrs(n: usize, seed: u32) -> Vec<VertexId> {
        (0..n as u32).map(|i| i + seed * 1000).collect()
    }

    #[test]
    fn insert_and_read_back() {
        let cache = LrbuCache::new(1 << 20);
        cache.insert(1, nbrs(5, 1));
        assert!(cache.contains(1));
        let mut out = Vec::new();
        assert!(cache.read(1, &mut |n| out.extend_from_slice(n)));
        assert_eq!(out.len(), 5);
        assert_eq!(cache.len(), 1);
        assert!(cache.size_bytes() > 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn eviction_removes_least_recent_batch_first() {
        // Capacity fits roughly two entries of 10 neighbours (56 bytes each).
        let cache = LrbuCache::new(120);
        cache.insert(1, nbrs(10, 1));
        cache.insert(2, nbrs(10, 2));
        // Vertex 1 is older; inserting 3 must evict 1 (not 2).
        cache.insert(3, nbrs(10, 3));
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        assert!(cache.contains(3));
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn sealed_entries_survive_eviction_pressure() {
        let cache = LrbuCache::new(120);
        cache.insert(1, nbrs(10, 1));
        cache.insert(2, nbrs(10, 2));
        cache.seal(1);
        // Vertex 1 is sealed: despite being the oldest, it must not be
        // evicted; vertex 2 goes instead.
        cache.insert(3, nbrs(10, 3));
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert_eq!(cache.sealed_count(), 1);
        // After release, vertex 1 becomes the *most* recent batch.
        cache.release();
        assert_eq!(cache.sealed_count(), 0);
        cache.insert(4, nbrs(10, 4));
        // Now the oldest free entry is 3, so 3 is evicted, not 1.
        assert!(cache.contains(1));
        assert!(!cache.contains(3));
    }

    #[test]
    fn overflow_when_everything_is_sealed() {
        let cache = LrbuCache::new(100);
        cache.insert(1, nbrs(10, 1));
        cache.insert(2, nbrs(10, 2));
        cache.seal(1);
        cache.seal(2);
        // Nothing is evictable, but the insert still happens (bounded
        // overflow per Algorithm 3).
        cache.insert(3, nbrs(10, 3));
        assert!(cache.contains(3));
        assert!(cache.stats().overflow_inserts >= 1);
        assert!(cache.size_bytes() > cache.capacity_bytes());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let cache = LrbuCache::new(1 << 20);
        cache.insert(5, nbrs(3, 1));
        cache.insert(5, nbrs(30, 2));
        let mut len = 0;
        cache.read(5, &mut |n| len = n.len());
        assert_eq!(len, 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn release_assigns_fresh_orders() {
        let cache = LrbuCache::new(1 << 20);
        for v in 0..10 {
            cache.insert(v, nbrs(2, v));
        }
        for v in 0..5 {
            cache.seal(v);
        }
        cache.release();
        // Sealing + releasing 0..5 makes 5..10 the oldest entries.
        let tiny = LrbuCache::new(1); // irrelevant, separate assertion below
        drop(tiny);
        // Force evictions by shrinking: rebuild a bounded cache mirroring the
        // state is overkill; instead check the recency ordering indirectly:
        // the free set's first victim must now be vertex 5.
        let inner = cache.inner.read();
        let (_, &victim) = inner.free.iter().next().unwrap();
        assert_eq!(victim, 5);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = LrbuCache::new(1 << 20);
        cache.insert(1, nbrs(4, 1));
        cache.seal(1);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.size_bytes(), 0);
        assert!(!cache.contains(1));
        assert!(cache.is_empty());
    }

    #[test]
    fn miss_is_counted() {
        let cache = LrbuCache::new(1024);
        assert!(!cache.read(42, &mut |_| panic!("must not be called")));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_reads_during_no_writes_are_safe() {
        let cache = std::sync::Arc::new(LrbuCache::new(1 << 20));
        for v in 0..100 {
            cache.insert(v, nbrs(8, v));
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for v in 0..100u32 {
                        let mut sum = 0u64;
                        assert!(c.read(v, &mut |n| sum = n.iter().map(|&x| x as u64).sum()));
                        assert!(sum > 0);
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }
}
