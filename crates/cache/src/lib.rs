//! Caches for pulled adjacency lists.
//!
//! The `PULL-EXTEND` operator caches remote adjacency lists so repeated
//! extensions of the same high-degree vertices do not re-fetch them over the
//! network. The paper contributes the **LRBU** (least-recent-batch-used)
//! cache (§4.4, Algorithm 3) whose `Seal`/`Release` protocol, combined with
//! the two-stage (fetch / intersect) execution of `PULL-EXTEND`, makes all
//! cache reads during the intersect stage lock-free and zero-copy.
//!
//! This crate provides LRBU plus every comparison point of Exp-6 (Table 5):
//!
//! | name                   | paper variant | behaviour                                      |
//! |------------------------|---------------|------------------------------------------------|
//! | [`LrbuCache`]          | LRBU          | single-writer inserts, zero-copy batch reads   |
//! | [`CopyLrbuCache`]      | LRBU-Copy     | LRBU with a forced copy on every read          |
//! | [`LockLrbuCache`]      | LRBU-Lock     | LRBU behind a mutex with copies                |
//! | [`InfiniteLruCache`]   | LRU-Inf       | unbounded LRU (never evicts)                   |
//! | [`ConcurrentLruCache`] | Cncr-LRU      | locking LRU updated on every access, no        |
//! |                        |               | two-stage protocol                             |
//!
//! All variants implement [`PullCache`] so the engine can swap them without
//! code changes; the experiment harness measures the difference.

pub mod concurrent_lru;
pub mod lrbu;
pub mod traits;
pub mod variants;

pub use concurrent_lru::ConcurrentLruCache;
pub use lrbu::LrbuCache;
pub use traits::{CacheStats, PullCache};
pub use variants::{CopyLrbuCache, InfiniteLruCache, LockLrbuCache};

/// Which cache design to instantiate (used by configuration and the Exp-6
/// harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The paper's least-recent-batch-used cache.
    Lrbu,
    /// LRBU with memory copies enforced on reads.
    LrbuCopy,
    /// LRBU behind a global lock (copies + lock per access).
    LrbuLock,
    /// An LRU cache with unbounded capacity.
    LruInfinite,
    /// A locking concurrent LRU without the two-stage protocol.
    ConcurrentLru,
}

impl CacheKind {
    /// Every kind, in the order Table 5 lists them.
    pub const ALL: [CacheKind; 5] = [
        CacheKind::Lrbu,
        CacheKind::LrbuCopy,
        CacheKind::LrbuLock,
        CacheKind::LruInfinite,
        CacheKind::ConcurrentLru,
    ];

    /// The label used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CacheKind::Lrbu => "LRBU",
            CacheKind::LrbuCopy => "LRBU-Copy",
            CacheKind::LrbuLock => "LRBU-Lock",
            CacheKind::LruInfinite => "LRU-Inf",
            CacheKind::ConcurrentLru => "Cncr-LRU",
        }
    }

    /// Instantiates the cache with the given capacity in bytes.
    pub fn build(&self, capacity_bytes: u64) -> Box<dyn PullCache> {
        match self {
            CacheKind::Lrbu => Box::new(LrbuCache::new(capacity_bytes)),
            CacheKind::LrbuCopy => Box::new(CopyLrbuCache::new(capacity_bytes)),
            CacheKind::LrbuLock => Box::new(LockLrbuCache::new(capacity_bytes)),
            CacheKind::LruInfinite => Box::new(InfiniteLruCache::new()),
            CacheKind::ConcurrentLru => Box::new(ConcurrentLruCache::new(capacity_bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_round_trips() {
        for kind in CacheKind::ALL {
            let cache = kind.build(1 << 20);
            cache.insert(7, vec![1, 2, 3]);
            assert!(cache.contains(7), "{}", kind.name());
            let mut seen = Vec::new();
            let found = cache.read(7, &mut |nbrs| seen.extend_from_slice(nbrs));
            assert!(found);
            assert_eq!(seen, vec![1, 2, 3]);
            assert!(!cache.contains(8));
            assert!(!cache.read(8, &mut |_| {}));
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = CacheKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
