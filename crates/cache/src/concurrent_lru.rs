//! A locking concurrent LRU cache (the paper's Cncr-LRU comparison point).
//!
//! This is the "straightforward approach" the paper argues against (§4.4):
//! a bounded LRU shared by all workers, consulted on every lookup, with the
//! recency list updated under a lock on each access and the value copied
//! out. It is sharded (as production concurrent caches are) to reduce — but
//! not eliminate — lock contention, and it has no notion of seal/release or
//! batch-level pinning.

use std::collections::HashMap;

use huge_graph::VertexId;
use parking_lot::Mutex;

use crate::traits::{AtomicCacheStats, CacheStats, PullCache};

const SHARDS: usize = 8;

struct Shard {
    map: HashMap<VertexId, (Vec<VertexId>, u64)>,
    clock: u64,
    bytes: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
        }
    }

    fn evict_one(&mut self) -> bool {
        if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp) {
            if let Some((nbrs, _)) = self.map.remove(&victim) {
                self.bytes -= entry_bytes(&nbrs);
                return true;
            }
        }
        false
    }
}

fn entry_bytes(nbrs: &[VertexId]) -> u64 {
    (std::mem::size_of_val(nbrs) + 16) as u64
}

/// A sharded, locking, copy-on-read LRU cache without batch pinning.
pub struct ConcurrentLruCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: u64,
    stats: AtomicCacheStats,
}

impl ConcurrentLruCache {
    /// Creates the cache with a total byte capacity split across shards.
    pub fn new(capacity_bytes: u64) -> Self {
        ConcurrentLruCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard: (capacity_bytes / SHARDS as u64).max(1),
            stats: AtomicCacheStats::default(),
        }
    }

    fn shard(&self, v: VertexId) -> &Mutex<Shard> {
        &self.shards[(v as usize) % SHARDS]
    }
}

impl PullCache for ConcurrentLruCache {
    fn contains(&self, v: VertexId) -> bool {
        self.shard(v).lock().map.contains_key(&v)
    }

    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool {
        let mut shard = self.shard(v).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&v) {
            Some((nbrs, stamp)) => {
                *stamp = clock;
                // Copy out while holding the lock (the value could otherwise
                // be evicted by a concurrent insert).
                let copy = nbrs.clone();
                drop(shard);
                self.stats.hit();
                f(&copy);
                true
            }
            None => {
                drop(shard);
                self.stats.miss();
                false
            }
        }
    }

    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>) {
        let bytes = entry_bytes(&neighbours);
        let mut shard = self.shard(v).lock();
        if shard.map.contains_key(&v) {
            return;
        }
        let mut evictions = 0;
        while shard.bytes + bytes > self.capacity_per_shard && shard.evict_one() {
            evictions += 1;
        }
        shard.clock += 1;
        let clock = shard.clock;
        shard.bytes += bytes;
        shard.map.insert(v, (neighbours, clock));
        drop(shard);
        self.stats
            .inserts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if evictions > 0 {
            self.stats
                .evictions
                .fetch_add(evictions, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn seal(&self, _v: VertexId) {}

    fn release(&self) {}

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    fn size_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_per_shard * SHARDS as u64
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_round_trip() {
        let cache = ConcurrentLruCache::new(1 << 20);
        cache.insert(1, vec![5, 6, 7]);
        let mut out = Vec::new();
        assert!(cache.read(1, &mut |n| out.extend_from_slice(n)));
        assert_eq!(out, vec![5, 6, 7]);
        assert!(!cache.read(2, &mut |_| {}));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn respects_capacity() {
        let cache = ConcurrentLruCache::new(SHARDS as u64 * 120);
        for v in 0..1000u32 {
            cache.insert(v, vec![0; 10]);
        }
        // Each shard holds ~2 entries of 56 bytes, so the total stays small.
        assert!(cache.len() <= 3 * SHARDS);
        assert!(cache.stats().evictions > 0);
        assert!(cache.size_bytes() <= cache.capacity_bytes() + SHARDS as u64 * 60);
    }

    #[test]
    fn lru_recency_is_respected_within_a_shard() {
        // Pick two vertices in the same shard.
        let a = 0u32;
        let b = a + SHARDS as u32;
        let c = b + SHARDS as u32;
        let cache = ConcurrentLruCache::new(SHARDS as u64 * 120);
        cache.insert(a, vec![0; 10]);
        cache.insert(b, vec![0; 10]);
        // Touch `a` so `b` becomes the LRU victim.
        cache.read(a, &mut |_| {});
        cache.insert(c, vec![0; 10]);
        assert!(cache.contains(a));
        assert!(!cache.contains(b));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ConcurrentLruCache::new(1 << 16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let v = i * 4 + t;
                        c.insert(v, vec![v; 4]);
                        c.read(v, &mut |_| {});
                    }
                });
            }
        });
        assert!(cache.stats().inserts >= 2000 - 100);
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ConcurrentLruCache::new(1 << 20);
        for v in 0..100 {
            cache.insert(v, vec![1, 2]);
        }
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.size_bytes(), 0);
    }
}
