//! The cache interface shared by every design.

use std::sync::atomic::{AtomicU64, Ordering};

use huge_graph::VertexId;

/// Counters reported by every cache implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads that found the vertex in the cache.
    pub hits: u64,
    /// Reads (or containment checks preceding a fetch) that missed.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts performed while the cache was full and nothing was
    /// replaceable (the bounded overflow the LRBU analysis allows).
    pub overflow_inserts: u64,
}

impl CacheStats {
    /// Hit rate over all recorded lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Internal atomic counters (shared by the implementations in this crate).
#[derive(Debug, Default)]
pub(crate) struct AtomicCacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub inserts: AtomicU64,
    pub evictions: AtomicU64,
    pub overflow_inserts: AtomicU64,
}

impl AtomicCacheStats {
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            overflow_inserts: self.overflow_inserts.load(Ordering::Relaxed),
        }
    }

    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// The interface the `PULL-EXTEND` operator programs against.
///
/// The method set mirrors Algorithm 3: `Get`/`Contains` are the read-side
/// (expressed here as [`PullCache::read`] with a callback so zero-copy
/// implementations can hand out borrowed slices), `Insert` adds a fetched
/// adjacency list, and `Seal`/`Release` bracket the vertices used by the
/// batch currently being processed so they cannot be evicted mid-intersect.
/// Designs that have no seal concept (plain LRUs) implement them as no-ops.
pub trait PullCache: Send + Sync {
    /// `true` if the vertex's adjacency list is cached.
    fn contains(&self, v: VertexId) -> bool;

    /// Reads the cached adjacency list of `v`, invoking `f` with the data.
    /// Returns `false` (without invoking `f`) when `v` is not cached.
    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool;

    /// Inserts the adjacency list of `v` (fetched from its owner).
    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>);

    /// Protects `v` from eviction until the next [`PullCache::release`].
    fn seal(&self, v: VertexId);

    /// Makes every sealed vertex evictable again, marking them as the most
    /// recently used batch.
    fn release(&self);

    /// Current number of cached entries.
    fn len(&self) -> usize;

    /// `true` when no entries are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of cached adjacency data.
    fn size_bytes(&self) -> u64;

    /// Capacity in bytes (`u64::MAX` for unbounded designs).
    fn capacity_bytes(&self) -> u64;

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;

    /// Removes every entry (used between experiment runs).
    fn clear(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn atomic_stats_snapshot() {
        let s = AtomicCacheStats::default();
        s.hit();
        s.hit();
        s.miss();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
    }
}
