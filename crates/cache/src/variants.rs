//! The Exp-6 comparison variants of LRBU: LRBU-Copy, LRBU-Lock and LRU-Inf.

use std::collections::HashMap;

use huge_graph::VertexId;
use parking_lot::Mutex;

use crate::lrbu::LrbuCache;
use crate::traits::{AtomicCacheStats, CacheStats, PullCache};

/// LRBU with memory copies enforced on every read (the paper's LRBU-Copy).
///
/// The replacement policy and sealing behaviour are identical to
/// [`LrbuCache`]; the only difference is that a read materialises the
/// adjacency list into a fresh `Vec` before handing it to the caller,
/// modelling the copy a traditional cache must make to avoid dangling
/// references.
pub struct CopyLrbuCache {
    inner: LrbuCache,
}

impl CopyLrbuCache {
    /// Creates the cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        CopyLrbuCache {
            inner: LrbuCache::new(capacity_bytes),
        }
    }
}

impl PullCache for CopyLrbuCache {
    fn contains(&self, v: VertexId) -> bool {
        self.inner.contains(v)
    }

    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool {
        let mut copied: Option<Vec<VertexId>> = None;
        let found = self.inner.read(v, &mut |nbrs| copied = Some(nbrs.to_vec()));
        if let Some(c) = copied {
            f(&c);
        }
        found
    }

    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>) {
        self.inner.insert(v, neighbours);
    }

    fn seal(&self, v: VertexId) {
        self.inner.seal(v);
    }

    fn release(&self) {
        self.inner.release();
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.size_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn clear(&self) {
        self.inner.clear();
    }
}

/// LRBU behind a single global mutex with copies (the paper's LRBU-Lock):
/// every access — including reads — takes an exclusive lock, so concurrent
/// readers serialise.
pub struct LockLrbuCache {
    inner: Mutex<LrbuCache>,
}

impl LockLrbuCache {
    /// Creates the cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LockLrbuCache {
            inner: Mutex::new(LrbuCache::new(capacity_bytes)),
        }
    }
}

impl PullCache for LockLrbuCache {
    fn contains(&self, v: VertexId) -> bool {
        self.inner.lock().contains(v)
    }

    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool {
        let guard = self.inner.lock();
        let mut copied: Option<Vec<VertexId>> = None;
        let found = guard.read(v, &mut |nbrs| copied = Some(nbrs.to_vec()));
        drop(guard);
        if let Some(c) = copied {
            f(&c);
        }
        found
    }

    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>) {
        self.inner.lock().insert(v, neighbours);
    }

    fn seal(&self, v: VertexId) {
        self.inner.lock().seal(v);
    }

    fn release(&self) {
        self.inner.lock().release();
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.lock().size_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.lock().capacity_bytes()
    }

    fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    fn clear(&self) {
        self.inner.lock().clear();
    }
}

/// An LRU cache with unbounded capacity (the paper's LRU-Inf): never evicts,
/// updates recency on every access (so reads take an exclusive lock), and
/// copies on read. Corresponds to wrapping a stock LRU map with its capacity
/// set to the maximum integer, as footnote 6 of the paper describes.
pub struct InfiniteLruCache {
    inner: Mutex<LruState>,
    stats: AtomicCacheStats,
}

struct LruState {
    map: HashMap<VertexId, (Vec<VertexId>, u64)>,
    clock: u64,
    bytes: u64,
}

impl InfiniteLruCache {
    /// Creates the unbounded cache.
    pub fn new() -> Self {
        InfiniteLruCache {
            inner: Mutex::new(LruState {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            stats: AtomicCacheStats::default(),
        }
    }
}

impl Default for InfiniteLruCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PullCache for InfiniteLruCache {
    fn contains(&self, v: VertexId) -> bool {
        self.inner.lock().map.contains_key(&v)
    }

    fn read(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) -> bool {
        let mut guard = self.inner.lock();
        guard.clock += 1;
        let clock = guard.clock;
        match guard.map.get_mut(&v) {
            Some((nbrs, stamp)) => {
                *stamp = clock;
                let copy = nbrs.clone();
                drop(guard);
                self.stats.hit();
                f(&copy);
                true
            }
            None => {
                drop(guard);
                self.stats.miss();
                false
            }
        }
    }

    fn insert(&self, v: VertexId, neighbours: Vec<VertexId>) {
        let mut guard = self.inner.lock();
        guard.clock += 1;
        let clock = guard.clock;
        let bytes = (neighbours.len() * std::mem::size_of::<VertexId>() + 16) as u64;
        if guard.map.insert(v, (neighbours, clock)).is_none() {
            guard.bytes += bytes;
            self.stats
                .inserts
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn seal(&self, _v: VertexId) {}

    fn release(&self) {}

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn capacity_bytes(&self) -> u64 {
        u64::MAX
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn clear(&self) {
        let mut guard = self.inner.lock();
        guard.map.clear();
        guard.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(cache: &dyn PullCache) {
        cache.insert(1, vec![10, 20, 30]);
        cache.insert(2, vec![40]);
        assert!(cache.contains(1));
        let mut out = Vec::new();
        assert!(cache.read(1, &mut |n| out.extend_from_slice(n)));
        assert_eq!(out, vec![10, 20, 30]);
        assert!(!cache.read(99, &mut |_| {}));
        cache.seal(1);
        cache.release();
        assert_eq!(cache.len(), 2);
        assert!(cache.size_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn copy_variant_behaves_like_lrbu() {
        exercise(&CopyLrbuCache::new(1 << 20));
    }

    #[test]
    fn lock_variant_behaves_like_lrbu() {
        exercise(&LockLrbuCache::new(1 << 20));
    }

    #[test]
    fn infinite_lru_never_evicts() {
        let cache = InfiniteLruCache::new();
        for v in 0..10_000u32 {
            cache.insert(v, vec![v; 4]);
        }
        assert_eq!(cache.len(), 10_000);
        assert_eq!(cache.capacity_bytes(), u64::MAX);
        assert_eq!(cache.stats().evictions, 0);
        exercise(&InfiniteLruCache::new());
    }

    #[test]
    fn copy_variant_eviction_mirrors_lrbu() {
        let cache = CopyLrbuCache::new(120);
        cache.insert(1, vec![0; 10]);
        cache.insert(2, vec![0; 10]);
        cache.insert(3, vec![0; 10]);
        assert!(!cache.contains(1));
        assert!(cache.contains(3));
    }

    #[test]
    fn lock_variant_is_threadsafe() {
        let cache = std::sync::Arc::new(LockLrbuCache::new(1 << 20));
        for v in 0..50 {
            cache.insert(v, vec![v; 8]);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for v in 0..50u32 {
                        c.read(v, &mut |_| {});
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 200);
    }
}
