//! Shared infrastructure for the baseline engines.
//!
//! The baselines materialise their intermediate results in full (that is the
//! behaviour the paper criticises), so the common substrate is a
//! *distributed table*: one flat row buffer per machine plus the schema of
//! query vertices bound by its columns. The operations on tables mirror the
//! physical operators of the respective systems — star scans, pushing hash
//! joins, pushing wco extensions and pulling star expansions — and every
//! cross-machine byte is recorded against [`huge_comm::ClusterStats`]
//! exactly as the HUGE engine does, so reports are directly comparable.
//!
//! Execution note: machines are processed sequentially inside one thread
//! (the baselines are far simpler than the HUGE engine); the measured wall
//! time is divided by the machine count to approximate an ideally parallel
//! BFS execution. This keeps the comparison conservative — the baselines are
//! charged no synchronisation or skew overhead at all.

use huge_comm::stats::ClusterStats;
use huge_graph::{GraphPartition, VertexId};
use huge_query::{PartialOrder, QueryGraph, QueryVertex};

/// A fully materialised, hash-distributed intermediate result.
#[derive(Clone, Debug)]
pub struct DistTable {
    /// Query vertices bound by each column.
    pub schema: Vec<QueryVertex>,
    /// Flat row storage, one buffer per machine.
    pub rows: Vec<Vec<VertexId>>,
}

impl DistTable {
    /// An empty table over `k` machines.
    pub fn new(schema: Vec<QueryVertex>, k: usize) -> Self {
        DistTable {
            schema,
            rows: vec![Vec::new(); k],
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Total number of rows across machines.
    pub fn total_rows(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| (r.len() / self.schema.len().max(1)) as u64)
            .sum()
    }

    /// Total bytes across machines.
    pub fn total_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| (r.len() * std::mem::size_of::<VertexId>()) as u64)
            .sum()
    }

    /// Largest per-machine byte footprint (contributes to the peak-memory
    /// metric).
    pub fn max_machine_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| (r.len() * std::mem::size_of::<VertexId>()) as u64)
            .max()
            .unwrap_or(0)
    }

    /// Iterates the rows of one machine.
    pub fn machine_rows(&self, m: usize) -> impl Iterator<Item = &[VertexId]> {
        let arity = self.schema.len().max(1);
        self.rows[m].chunks_exact(arity)
    }
}

/// Evaluation context shared by the baseline engines.
pub struct BaselineCtx<'a> {
    /// The cluster's graph partitions.
    pub partitions: &'a [GraphPartition],
    /// Traffic accounting (same counters the HUGE engine uses).
    pub stats: ClusterStats,
    /// The query's symmetry-breaking order.
    pub order: PartialOrder,
    /// Peak per-machine intermediate-result bytes observed so far.
    pub peak_memory: u64,
}

impl<'a> BaselineCtx<'a> {
    /// Creates a context.
    pub fn new(partitions: &'a [GraphPartition], query: &QueryGraph) -> Self {
        BaselineCtx {
            partitions,
            stats: ClusterStats::new(partitions.len()),
            order: query.order().clone(),
            peak_memory: 0,
        }
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.partitions.len()
    }

    /// Records the footprint of a newly materialised table.
    pub fn note_table(&mut self, table: &DistTable) {
        self.peak_memory = self.peak_memory.max(table.max_machine_bytes());
    }

    /// The owner machine of a data vertex.
    pub fn owner(&self, v: VertexId) -> usize {
        self.partitions[0].partition_map().owner(v)
    }

    /// Checks the symmetry constraints whose endpoints are both bound in
    /// `schema`.
    pub fn order_ok(&self, schema: &[QueryVertex], row: &[VertexId]) -> bool {
        self.order.constraints().iter().all(|&(a, b)| {
            match (
                schema.iter().position(|&x| x == a),
                schema.iter().position(|&x| x == b),
            ) {
                (Some(pa), Some(pb)) => row[pa] < row[pb],
                _ => true,
            }
        })
    }
}

/// Enumerates the matches of a star `(root; leaves)` as a distributed table:
/// each machine materialises the stars rooted at its local vertices
/// (ordered, injective leaf assignments).
pub fn scan_star(
    ctx: &mut BaselineCtx<'_>,
    root: QueryVertex,
    leaves: &[QueryVertex],
) -> DistTable {
    let mut schema = vec![root];
    schema.extend_from_slice(leaves);
    let mut table = DistTable::new(schema.clone(), ctx.k());
    for (m, partition) in ctx.partitions.iter().enumerate() {
        let out = &mut table.rows[m];
        for &u in partition.local_vertices() {
            let nbrs = partition.local_neighbours(u);
            let mut assignment: Vec<VertexId> = Vec::with_capacity(leaves.len());
            enumerate_leaf_tuples(u, nbrs, leaves.len(), &mut assignment, &mut |leaf_vals| {
                let mut row = Vec::with_capacity(schema.len());
                row.push(u);
                row.extend_from_slice(leaf_vals);
                if ctx_order_ok(&ctx.order, &schema, &row) {
                    out.extend_from_slice(&row);
                }
            });
        }
    }
    ctx.note_table(&table);
    table
}

fn ctx_order_ok(order: &PartialOrder, schema: &[QueryVertex], row: &[VertexId]) -> bool {
    order.constraints().iter().all(|&(a, b)| {
        match (
            schema.iter().position(|&x| x == a),
            schema.iter().position(|&x| x == b),
        ) {
            (Some(pa), Some(pb)) => row[pa] < row[pb],
            _ => true,
        }
    })
}

/// Recursively enumerates ordered, injective leaf assignments from a
/// neighbour list.
fn enumerate_leaf_tuples(
    root: VertexId,
    nbrs: &[VertexId],
    remaining: usize,
    assignment: &mut Vec<VertexId>,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if remaining == 0 {
        emit(assignment);
        return;
    }
    for &v in nbrs {
        if v == root || assignment.contains(&v) {
            continue;
        }
        assignment.push(v);
        enumerate_leaf_tuples(root, nbrs, remaining - 1, assignment, emit);
        assignment.pop();
    }
}

/// A pushing distributed hash join: both sides are shuffled by the join key
/// (bytes crossing machines are recorded), then joined per machine.
pub fn hash_join_pushing(
    ctx: &mut BaselineCtx<'_>,
    left: &DistTable,
    right: &DistTable,
) -> DistTable {
    let key: Vec<QueryVertex> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let key_left: Vec<usize> = key
        .iter()
        .map(|v| left.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let key_right: Vec<usize> = key
        .iter()
        .map(|v| right.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let payload_right: Vec<usize> = right
        .schema
        .iter()
        .enumerate()
        .filter(|(_, v)| !key.contains(v))
        .map(|(i, _)| i)
        .collect();
    let mut out_schema = left.schema.clone();
    for &i in &payload_right {
        out_schema.push(right.schema[i]);
    }

    let k = ctx.k();
    // Shuffle both sides.
    let shuffled_left = shuffle(ctx, left, &key_left);
    let shuffled_right = shuffle(ctx, right, &key_right);

    let mut output = DistTable::new(out_schema.clone(), k);
    for m in 0..k {
        // Build on the right, probe with the left.
        let mut table: std::collections::HashMap<Vec<VertexId>, Vec<usize>> =
            std::collections::HashMap::new();
        let r_arity = right.arity();
        for (idx, row) in shuffled_right[m].chunks_exact(r_arity).enumerate() {
            let kv: Vec<VertexId> = key_right.iter().map(|&p| row[p]).collect();
            table.entry(kv).or_default().push(idx);
        }
        let l_arity = left.arity();
        let out = &mut output.rows[m];
        for lrow in shuffled_left[m].chunks_exact(l_arity) {
            let kv: Vec<VertexId> = key_left.iter().map(|&p| lrow[p]).collect();
            if let Some(matches) = table.get(&kv) {
                for &ridx in matches {
                    let rrow = &shuffled_right[m][ridx * r_arity..(ridx + 1) * r_arity];
                    if payload_right.iter().any(|&p| lrow.contains(&rrow[p])) {
                        continue;
                    }
                    let mut joined = Vec::with_capacity(out_schema.len());
                    joined.extend_from_slice(lrow);
                    for &p in &payload_right {
                        joined.push(rrow[p]);
                    }
                    if ctx.order_ok(&out_schema, &joined) {
                        out.extend_from_slice(&joined);
                    }
                }
            }
        }
    }
    ctx.note_table(&output);
    output
}

/// Shuffles a table by key hash, recording the bytes that change machines.
fn shuffle(ctx: &BaselineCtx<'_>, table: &DistTable, key_positions: &[usize]) -> Vec<Vec<VertexId>> {
    let k = ctx.k();
    let arity = table.arity();
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for m in 0..k {
        for row in table.machine_rows(m) {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &p in key_positions {
                h ^= row[p] as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let dest = (h as usize) % k;
            if dest != m {
                ctx.stats
                    .machine(m)
                    .record_push((arity * std::mem::size_of::<VertexId>()) as u64);
            }
            out[dest].extend_from_slice(row);
        }
    }
    out
}

/// BiGJoin's pushing wco extension: every partial result is routed to the
/// owners of the vertices whose neighbourhoods are intersected (one hop per
/// backward neighbour), then extended by the intersection. The result is
/// placed on the machine owning the last-visited vertex.
pub fn wco_extend_pushing(
    ctx: &mut BaselineCtx<'_>,
    input: &DistTable,
    target: QueryVertex,
    backward: &[QueryVertex],
) -> DistTable {
    let positions: Vec<usize> = backward
        .iter()
        .map(|v| input.schema.iter().position(|x| x == v).expect("bound"))
        .collect();
    let mut out_schema = input.schema.clone();
    out_schema.push(target);
    let k = ctx.k();
    let mut output = DistTable::new(out_schema.clone(), k);
    let arity = input.arity();
    for m in 0..k {
        for row in input.machine_rows(m) {
            // Route the partial result through the owners of the vertices
            // being intersected (charging one push per hop that leaves the
            // current machine).
            let mut at = m;
            for &p in &positions {
                let owner = ctx.owner(row[p]);
                if owner != at {
                    ctx.stats
                        .machine(at)
                        .record_push((arity * std::mem::size_of::<VertexId>()) as u64);
                    at = owner;
                }
            }
            // Intersect the neighbourhoods (served locally at each hop).
            let mut candidates: Option<Vec<VertexId>> = None;
            for &p in &positions {
                let nbrs = ctx.partitions[0].any_neighbours(row[p]);
                candidates = Some(match candidates {
                    None => nbrs.to_vec(),
                    Some(prev) => huge_graph::graph::intersect_sorted(&prev, nbrs),
                });
            }
            for c in candidates.unwrap_or_default() {
                if row.contains(&c) {
                    continue;
                }
                let mut joined = Vec::with_capacity(out_schema.len());
                joined.extend_from_slice(row);
                joined.push(c);
                if ctx.order_ok(&out_schema, &joined) {
                    output.rows[at].extend_from_slice(&joined);
                }
            }
        }
    }
    ctx.note_table(&output);
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::{gen, Partitioner};
    use huge_query::Pattern;

    fn parts(k: usize) -> Vec<GraphPartition> {
        Partitioner::new(k).unwrap().partition(gen::complete(6))
    }

    #[test]
    fn scan_star_counts_ordered_tuples() {
        let parts = parts(2);
        let q = Pattern::Star(2).query_graph_unordered();
        let mut ctx = BaselineCtx::new(&parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]);
        // K6: each root has 5 neighbours -> 5 * 4 ordered pairs, 6 roots.
        assert_eq!(table.total_rows(), 6 * 20);
        assert!(ctx.peak_memory > 0);
    }

    #[test]
    fn hash_join_assembles_squares() {
        // Square = path(1-0-3) ⋈ path(1-2-3), joined on {1, 3}.
        let parts = parts(2);
        let q = Pattern::Square.query_graph();
        let mut ctx = BaselineCtx::new(&parts, &q);
        let left = scan_star(&mut ctx, 0, &[1, 3]);
        let right = scan_star(&mut ctx, 2, &[1, 3]);
        let joined = hash_join_pushing(&mut ctx, &left, &right);
        let expected = huge_query::naive::enumerate(&gen::complete(6), &q);
        assert_eq!(joined.total_rows(), expected);
        assert!(ctx.stats.total().bytes_pushed > 0);
    }

    #[test]
    fn wco_extension_counts_triangles() {
        let parts = parts(3);
        let q = Pattern::Triangle.query_graph();
        let mut ctx = BaselineCtx::new(&parts, &q);
        let edges = scan_star(&mut ctx, 0, &[1]);
        let triangles = wco_extend_pushing(&mut ctx, &edges, 2, &[0, 1]);
        // K6 has C(6,3) = 20 triangles.
        assert_eq!(triangles.total_rows(), 20);
    }

    #[test]
    fn order_constraints_are_applied_when_bound() {
        let parts = parts(1);
        let q = Pattern::Star(2).query_graph(); // order breaks leaf symmetry
        let mut ctx = BaselineCtx::new(&parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]);
        // With symmetry breaking only half of the ordered pairs survive.
        assert_eq!(table.total_rows(), 6 * 10);
    }
}
