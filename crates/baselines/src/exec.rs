//! Shared infrastructure for the baseline engines, built on the
//! [`huge_core::exec`] batch-operator substrate.
//!
//! The baselines materialise their intermediate *results* in full (that is
//! the behaviour the paper criticises), so the common substrate is a
//! *distributed table*: one [`RowBatch`] buffer per machine plus the schema
//! of query vertices bound by its columns. The operations on tables mirror
//! the physical operators of the respective systems — star scans, pushing
//! hash joins, pushing wco extensions and pulling star expansions — and they
//! execute through the same primitives as the HUGE engine: star scans are
//! [`BatchOperator`] sources, distributed hash joins shuffle through the
//! accounted [`huge_comm::Router`] and join with the shared
//! [`huge_core::exec::PushJoin`], and pulls go through
//! [`huge_comm::RpcFabric::get_nbrs`]. Every cross-machine byte is therefore
//! charged to [`huge_comm::ClusterStats`] by exactly the code paths the HUGE
//! engine uses, so reports are directly comparable.
//!
//! The *shuffles* themselves stream: table rows are pushed chunk-wise
//! through the bounded router, and when a destination inbox fills the
//! evaluating machine cooperatively drains *its own* inbox straight into its
//! `PUSH-JOIN` build (the same deadlock-free protocol the HUGE engine's
//! machines follow). The shuffle therefore never double-buffers a whole
//! table — transient shuffle memory is bounded by the router capacity plus
//! the joiners' spill threshold, and it is charged to the context's
//! [`MemoryTracker`] so the bound is observable.
//!
//! Execution note: the simulated machines run *concurrently*, one persistent
//! worker per machine on the context's [`WorkerPool`]
//! ([`BaselineCtx::machine_pool`]). The measured wall time therefore
//! includes the baselines' real synchronisation cost — stragglers, shuffle
//! backpressure and the end-of-shuffle barrier — instead of the historic
//! sequential evaluation that divided wall time by the machine count and
//! charged no synchronisation at all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use huge_comm::router::PushEnvelope;
use huge_comm::stats::ClusterStats;
use huge_comm::{QueueAccounting, Router, RouterEndpoint, RowBatch, RpcFabric};
use huge_core::exec::{
    partition_by_key, partition_by_owner, run_pipeline, BatchOperator, OpContext, OpPoll, PushJoin,
};
use huge_core::join::{JoinSide, MemoryTrackerHandle};
use huge_core::memory::MemoryTracker;
use huge_core::operators::passes_filters;
use huge_core::pool::WorkerPool;
use huge_core::{EngineError, LoadBalance, Result};
use huge_graph::{GraphPartition, VertexId};
use huge_plan::translate::{JoinOp, OrderFilter};
use huge_query::{PartialOrder, QueryGraph, QueryVertex};

/// Default rows per batch for baseline execution.
const DEFAULT_BATCH_SIZE: usize = 4096;

/// Default per-machine router inbox capacity (rows) for baseline shuffles.
const DEFAULT_QUEUE_ROWS: usize = 16 * DEFAULT_BATCH_SIZE;

/// Default in-memory bytes per `PUSH-JOIN` side before spilling to disk.
const DEFAULT_SPILL_BYTES: u64 = 64 * 1024 * 1024;

/// How long a baseline machine parks while cooperating on a shuffle.
const SHUFFLE_PARK: Duration = Duration::from_millis(1);

/// A fully materialised, hash-distributed intermediate result.
#[derive(Clone, Debug)]
pub struct DistTable {
    /// Query vertices bound by each column.
    pub schema: Vec<QueryVertex>,
    /// Row storage, one batch buffer per machine.
    pub rows: Vec<RowBatch>,
}

impl DistTable {
    /// An empty table over `k` machines.
    pub fn new(schema: Vec<QueryVertex>, k: usize) -> Self {
        assert!(
            !schema.is_empty(),
            "a distributed table must bind at least one query vertex"
        );
        let arity = schema.len();
        DistTable {
            schema,
            rows: (0..k).map(|_| RowBatch::new(arity)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Total number of rows across machines.
    pub fn total_rows(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    /// Total bytes across machines.
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.byte_size()).sum()
    }

    /// Largest per-machine byte footprint (contributes to the peak-memory
    /// metric).
    pub fn max_machine_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.byte_size()).max().unwrap_or(0)
    }

    /// Iterates the rows of one machine.
    pub fn machine_rows(&self, m: usize) -> impl Iterator<Item = &[VertexId]> {
        self.rows[m].rows()
    }
}

/// Evaluation context shared by the baseline engines: the cluster's
/// partitions plus the same accounted communication fabric the HUGE engine
/// uses (router for pushes, RPC fabric for pulls).
pub struct BaselineCtx {
    partitions: Arc<Vec<GraphPartition>>,
    /// Traffic accounting (same counters the HUGE engine uses).
    pub stats: ClusterStats,
    rpc: RpcFabric,
    endpoints: Vec<RouterEndpoint>,
    cache: huge_cache::LrbuCache,
    pool: WorkerPool,
    /// Machine-level pool: one persistent worker per simulated machine, so
    /// the machines execute concurrently and wall time includes their real
    /// synchronisation cost (workers spawn once and are reused by every
    /// operator of the run).
    machine_pool: WorkerPool,
    spill_dir: PathBuf,
    batch_size: usize,
    join_spill_bytes: u64,
    /// Tracks transient shuffle/join memory (router inboxes, `PUSH-JOIN`
    /// buffers and loaded partitions) — the observable streaming bound.
    pub memory: Arc<MemoryTracker>,
    /// The query's symmetry-breaking order.
    pub order: PartialOrder,
    /// Peak per-machine intermediate-result bytes observed so far.
    pub peak_memory: u64,
}

impl BaselineCtx {
    /// Creates a context over the cluster's partitions.
    pub fn new(partitions: Arc<Vec<GraphPartition>>, query: &QueryGraph) -> Self {
        Self::with_streaming_limits(partitions, query, DEFAULT_QUEUE_ROWS, DEFAULT_SPILL_BYTES)
    }

    /// Creates a context with explicit streaming bounds: the per-machine
    /// router inbox capacity and the per-side `PUSH-JOIN` spill threshold.
    pub fn with_streaming_limits(
        partitions: Arc<Vec<GraphPartition>>,
        query: &QueryGraph,
        queue_capacity_rows: usize,
        join_spill_bytes: u64,
    ) -> Self {
        let k = partitions.len();
        let stats = ClusterStats::new(k);
        let rpc = RpcFabric::new(Arc::clone(&partitions), stats.clone());
        let memory = Arc::new(MemoryTracker::new());
        let router = Router::with_capacity(k, stats.clone(), queue_capacity_rows.max(1));
        for m in 0..k {
            router.set_accounting(m, Arc::clone(&memory) as Arc<dyn QueueAccounting>);
        }
        let endpoints = (0..k).map(|m| router.endpoint(m)).collect();
        BaselineCtx {
            partitions,
            stats,
            rpc,
            endpoints,
            cache: huge_cache::LrbuCache::new(0),
            pool: WorkerPool::new(1, LoadBalance::None),
            // `None` pins one job per worker: k machine jobs land on k
            // distinct workers, so jobs that rendezvous on a shuffle barrier
            // can never serialise onto one worker and deadlock.
            machine_pool: WorkerPool::new(k, LoadBalance::None),
            spill_dir: {
                static CTX_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let seq = CTX_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::env::temp_dir().join(format!("huge-baselines-{}-{seq}", std::process::id()))
            },
            batch_size: DEFAULT_BATCH_SIZE,
            join_spill_bytes,
            memory,
            order: query.order().clone(),
            peak_memory: 0,
        }
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.partitions.len()
    }

    /// The machine-level worker pool (one persistent worker per machine).
    pub fn machine_pool(&self) -> &WorkerPool {
        &self.machine_pool
    }

    /// Peak intermediate-result bytes for the run report: the largest
    /// materialised table plus the tracked transient shuffle/join peak.
    pub fn report_peak_memory(&self) -> u64 {
        self.peak_memory.max(self.memory.peak())
    }

    /// The cluster's partitions.
    pub fn partitions(&self) -> &[GraphPartition] {
        &self.partitions
    }

    /// The pulling fabric (accounted `GetNbrs`).
    pub fn rpc(&self) -> &RpcFabric {
        &self.rpc
    }

    /// The execution context of machine `m` for [`BatchOperator`]s.
    pub fn op_context(&self, m: usize) -> OpContext<'_> {
        OpContext {
            machine: m,
            partition: &self.partitions[m],
            rpc: &self.rpc,
            cache: &self.cache,
            use_cache: false,
            pool: &self.pool,
            batch_size: self.batch_size,
        }
    }

    /// Records the footprint of a newly materialised table.
    pub fn note_table(&mut self, table: &DistTable) {
        self.peak_memory = self.peak_memory.max(table.max_machine_bytes());
    }

    /// The owner machine of a data vertex.
    pub fn owner(&self, v: VertexId) -> usize {
        self.rpc.owner(v)
    }

    /// Checks the symmetry constraints whose endpoints are both bound in
    /// `schema`.
    pub fn order_ok(&self, schema: &[QueryVertex], row: &[VertexId]) -> bool {
        passes_filters(row, &order_filters(&self.order, schema))
    }

    /// Non-blocking push of shuffle rows from machine `from` to `dest`
    /// through the accounted router (free when `dest == from`, charged
    /// otherwise — the same rule the HUGE engine's shuffles follow). On
    /// backpressure the batch is handed back; the caller must drain the
    /// destination inbox (machines share one thread here, so blocking would
    /// deadlock) and retry.
    fn try_push_shuffled(
        &self,
        from: usize,
        dest: usize,
        tag: usize,
        batch: RowBatch,
    ) -> std::result::Result<(), RowBatch> {
        self.endpoints[from].try_push(dest, tag, batch)
    }

    /// Drains machine `m`'s router inbox.
    fn drain_machine(&self, m: usize) -> Vec<PushEnvelope> {
        self.endpoints[m].drain()
    }

    /// `true` when machine `m`'s inbox is at or over capacity. Pushes to the
    /// own machine are *forced* past the bound (they must never wedge), so
    /// streaming loops poll this to know when to drain locally too.
    fn inbox_full(&self, m: usize) -> bool {
        self.endpoints[m].inbox_full(m)
    }

    /// Parks machine `m` briefly until data lands in its inbox.
    fn wait_data(&self, m: usize) {
        self.endpoints[m].wait_data(SHUFFLE_PARK);
    }

    /// Parks machine `m` briefly until `dest`'s inbox has room.
    fn wait_space(&self, m: usize, dest: usize) {
        self.endpoints[m].wait_space(dest, SHUFFLE_PARK);
    }
}

/// Translates the symmetry-breaking constraints whose endpoints are both
/// bound in `schema` into positional [`OrderFilter`]s.
pub fn order_filters(order: &PartialOrder, schema: &[QueryVertex]) -> Vec<OrderFilter> {
    order
        .constraints()
        .iter()
        .filter_map(|&(a, b)| {
            match (
                schema.iter().position(|&x| x == a),
                schema.iter().position(|&x| x == b),
            ) {
                (Some(pa), Some(pb)) => Some(OrderFilter {
                    smaller: pa,
                    larger: pb,
                }),
                _ => None,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Star scan: the baselines' source operator
// ---------------------------------------------------------------------------

/// A [`BatchOperator`] source enumerating the matches of a star
/// `(root; leaves)` over one machine's local vertices (ordered, injective
/// leaf assignments, symmetry filters applied).
pub struct StarScan {
    leaves: usize,
    filters: Vec<OrderFilter>,
    cursor: usize,
    done: bool,
}

impl StarScan {
    /// Creates the scan; `filters` are positional over `[root, leaves...]`.
    pub fn new(leaves: usize, filters: Vec<OrderFilter>) -> Self {
        StarScan {
            leaves,
            filters,
            cursor: 0,
            done: false,
        }
    }
}

impl BatchOperator for StarScan {
    fn name(&self) -> &'static str {
        "STAR-SCAN"
    }

    fn output_arity(&self) -> usize {
        self.leaves + 1
    }

    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll> {
        if self.done {
            return Ok(OpPoll::Exhausted);
        }
        let arity = self.output_arity();
        let locals = ctx.partition.local_vertices();
        let mut batch = RowBatch::new(arity);
        while self.cursor < locals.len() && batch.len() < ctx.batch_size {
            let u = locals[self.cursor];
            self.cursor += 1;
            let nbrs = ctx.partition.local_neighbours(u);
            let mut assignment: Vec<VertexId> = Vec::with_capacity(self.leaves);
            let mut row = Vec::with_capacity(arity);
            enumerate_leaf_tuples(u, nbrs, self.leaves, &mut assignment, &mut |leaf_vals| {
                row.clear();
                row.push(u);
                row.extend_from_slice(leaf_vals);
                if passes_filters(&row, &self.filters) {
                    batch.push_row(&row);
                }
            });
        }
        if self.cursor >= locals.len() {
            self.done = true;
        }
        if batch.is_empty() {
            Ok(if self.done {
                OpPoll::Exhausted
            } else {
                OpPoll::Pending
            })
        } else {
            let cols = huge_comm::ColBatch::from_rows(&batch);
            ctx.rpc
                .stats()
                .machine(ctx.machine)
                .record_col_bytes(cols.byte_size());
            Ok(OpPoll::Ready(cols))
        }
    }
}

/// Enumerates the matches of a star `(root; leaves)` as a distributed table:
/// each machine materialises the stars rooted at its local vertices through
/// a [`StarScan`] operator. The machines run concurrently on the context's
/// machine pool.
pub fn scan_star(
    ctx: &mut BaselineCtx,
    root: QueryVertex,
    leaves: &[QueryVertex],
) -> Result<DistTable> {
    let mut schema = vec![root];
    schema.extend_from_slice(leaves);
    let filters = order_filters(&ctx.order, &schema);
    let arity = schema.len();
    let k = ctx.k();
    let mut table = DistTable::new(schema, k);
    let pool = ctx.machine_pool.clone();
    let shared: &BaselineCtx = ctx;
    let scanned = pool.run(
        (0..k).collect::<Vec<_>>(),
        |m, out: &mut Vec<(usize, Result<RowBatch>)>| {
            let op_ctx = shared.op_context(m);
            let mut scan = StarScan::new(leaves.len(), filters.clone());
            let mut rows = RowBatch::new(arity);
            let mut ops: [&mut dyn BatchOperator; 1] = [&mut scan];
            let res = run_pipeline(&mut ops, &op_ctx, &mut |batch| {
                rows.append(&mut batch.into_rows());
            });
            out.push((m, res.map(|()| rows)));
        },
    );
    for (m, rows) in scanned.into_flat() {
        table.rows[m] = rows?;
    }
    ctx.note_table(&table);
    Ok(table)
}

/// Recursively enumerates ordered, injective leaf assignments from a
/// neighbour list.
fn enumerate_leaf_tuples(
    root: VertexId,
    nbrs: &[VertexId],
    remaining: usize,
    assignment: &mut Vec<VertexId>,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if remaining == 0 {
        emit(assignment);
        return;
    }
    for &v in nbrs {
        if v == root || assignment.contains(&v) {
            continue;
        }
        assignment.push(v);
        enumerate_leaf_tuples(root, nbrs, remaining - 1, assignment, emit);
        assignment.pop();
    }
}

// ---------------------------------------------------------------------------
// Pushing hash join
// ---------------------------------------------------------------------------

/// Tag of the left input in a hash-join shuffle.
const LEFT_TAG: usize = 0;
/// Tag of the right input in a hash-join shuffle.
const RIGHT_TAG: usize = 1;

/// Moves every envelope queued in machine `m`'s inbox into its joiner build.
fn absorb_into_joiner(ctx: &BaselineCtx, m: usize, join: &mut PushJoin) -> Result<()> {
    for env in ctx.drain_machine(m) {
        let side = if env.segment == LEFT_TAG {
            JoinSide::Left
        } else {
            JoinSide::Right
        };
        join.push_side(side, &env.batch)?;
    }
    Ok(())
}

/// Runs one machine job's fallible body, converting a panic into an error
/// and raising the shared failure flag either way, so peers parked in a
/// shuffle rendezvous bail out instead of waiting forever for a machine
/// that will never arrive.
fn guard_job<T>(failed: &AtomicBool, body: impl FnOnce() -> Result<T>) -> Result<T> {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).unwrap_or_else(|_| {
        Err(EngineError::WorkerPanic(
            "baseline machine job panicked".into(),
        ))
    });
    if res.is_err() {
        failed.store(true, Ordering::SeqCst);
    }
    res
}

/// The cooperative shuffle protocol of one machine `m`: push every chunk of
/// `batches` (each a `(tag, rows)` side) to the destinations `route`
/// chooses, draining the *own* inbox via `drain` under backpressure (the
/// deadlock-free discipline the HUGE machines follow), then rendezvous —
/// keep absorbing until every machine has decremented `shuffling` — so no
/// peer's final envelopes are stranded. Bails out with an error as soon as
/// `failed` is raised by any machine.
fn shuffle_rendezvous(
    shared: &BaselineCtx,
    m: usize,
    shuffling: &AtomicUsize,
    failed: &AtomicBool,
    batches: Vec<(usize, RowBatch)>,
    route: impl Fn(&RowBatch, usize) -> Vec<RowBatch>,
    mut drain: impl FnMut() -> Result<()>,
) -> Result<()> {
    let aborted = || EngineError::Aborted("baseline shuffle aborted by a failed machine".into());
    for (tag, rows) in batches {
        for chunk in rows.chunked(shared.batch_size) {
            for (dest, part) in route(&chunk, tag).into_iter().enumerate() {
                let mut pending = part;
                loop {
                    match shared.try_push_shuffled(m, dest, tag, pending) {
                        Ok(()) => break,
                        Err(back) => {
                            if failed.load(Ordering::SeqCst) {
                                return Err(aborted());
                            }
                            pending = back;
                            // Cooperate: absorb the own inbox so peers
                            // blocked on *us* progress, then park for space.
                            drain()?;
                            shared.wait_space(m, dest);
                        }
                    }
                }
            }
            // Pushes to the own machine are forced past the bound (they can
            // never block); drain them as soon as the inbox fills so the
            // local share of a table is never double-buffered either.
            if shared.inbox_full(m) {
                drain()?;
            }
        }
    }
    // Done shuffling: keep absorbing until every machine is too, so no
    // peer's final envelopes are stranded.
    shuffling.fetch_sub(1, Ordering::SeqCst);
    while shuffling.load(Ordering::SeqCst) > 0 {
        if failed.load(Ordering::SeqCst) {
            return Err(aborted());
        }
        drain()?;
        shared.wait_data(m);
    }
    drain()
}

/// A pushing distributed hash join: both sides are shuffled by the join key
/// through the accounted router, then joined per machine with the shared
/// [`PushJoin`] operator. The tables are consumed: each machine's share
/// moves into its shuffle without being copied first.
///
/// The machines run concurrently (one persistent pool worker each) and the
/// shuffle *streams*: table rows are pushed chunk-wise, and a machine that
/// sees backpressure cooperatively drains *its own* inbox into its build
/// (which itself spills past its threshold) before retrying — the same
/// deadlock-free protocol the HUGE engine's machines follow. Once a machine
/// has shuffled everything it keeps absorbing until every machine is done
/// (that rendezvous is the real synchronisation cost of a BFS-style
/// distributed join), then seals and polls its join.
pub fn hash_join_pushing(
    ctx: &mut BaselineCtx,
    left: DistTable,
    right: DistTable,
) -> Result<DistTable> {
    let key: Vec<QueryVertex> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let key_left: Vec<usize> = key
        .iter()
        .map(|v| left.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let key_right: Vec<usize> = key
        .iter()
        .map(|v| right.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let payload_right: Vec<usize> = right
        .schema
        .iter()
        .enumerate()
        .filter(|(_, v)| !key.contains(v))
        .map(|(i, _)| i)
        .collect();
    let mut out_schema = left.schema.clone();
    for &i in &payload_right {
        out_schema.push(right.schema[i]);
    }
    let filters = order_filters(&ctx.order, &out_schema);

    let k = ctx.k();
    let out_arity = out_schema.len();
    let op = JoinOp {
        left: LEFT_TAG,
        right: RIGHT_TAG,
        key_left,
        key_right,
        right_payload: payload_right,
        filters,
    };
    let joiners: Vec<PushJoin> = (0..k)
        .map(|m| {
            PushJoin::new(
                op.clone(),
                left.arity(),
                right.arity(),
                ctx.join_spill_bytes,
                ctx.spill_dir.join(format!("m{m}")),
                MemoryTrackerHandle::Tracked(Arc::clone(&ctx.memory)),
                ctx.batch_size,
            )
        })
        .collect();

    // One job per machine: shuffle the local share of both sides (bytes
    // crossing machines are charged in the router, one message per batch of
    // at most `batch_size` rows — the granularity the HUGE engine ships, so
    // reported message counts stay comparable), then rendezvous and join.
    let shuffling = AtomicUsize::new(k);
    let failed = AtomicBool::new(false);
    let items: Vec<(usize, RowBatch, RowBatch, PushJoin)> = joiners
        .into_iter()
        .zip(left.rows)
        .zip(right.rows)
        .enumerate()
        .map(|(m, ((join, l), r))| (m, l, r, join))
        .collect();
    let pool = ctx.machine_pool.clone();
    let shared: &BaselineCtx = ctx;
    let joined = pool.run(
        items,
        |(m, left_rows, right_rows, mut join), out: &mut Vec<(usize, Result<RowBatch>)>| {
            let res = guard_job(&failed, || {
                shuffle_rendezvous(
                    shared,
                    m,
                    &shuffling,
                    &failed,
                    vec![(LEFT_TAG, left_rows), (RIGHT_TAG, right_rows)],
                    |chunk, tag| {
                        let keys = if tag == LEFT_TAG {
                            &op.key_left
                        } else {
                            &op.key_right
                        };
                        partition_by_key(chunk, keys, k)
                    },
                    || absorb_into_joiner(shared, m, &mut join),
                )?;
                let op_ctx = shared.op_context(m);
                join.finish_input(&op_ctx)?;
                let mut rows = RowBatch::new(out_arity);
                while let OpPoll::Ready(batch) = join.poll_next(&op_ctx)? {
                    rows.append(&mut batch.into_rows());
                }
                Ok(rows)
            });
            out.push((m, res));
        },
    );

    let mut output = DistTable::new(out_schema, k);
    for (m, rows) in joined.into_flat() {
        output.rows[m] = rows?;
    }
    ctx.note_table(&output);
    Ok(output)
}

// ---------------------------------------------------------------------------
// Pushing wco extension
// ---------------------------------------------------------------------------

/// BiGJoin's pushing wco extension: every partial result is routed to the
/// owners of the vertices whose neighbourhoods are intersected (one hop per
/// backward neighbour, moved batch-wise through the accounted router), then
/// extended by the intersection at the last-visited machine. The machines of
/// each hop run concurrently on the context's machine pool, draining their
/// own inboxes under backpressure and rendezvousing at the end of the hop.
pub fn wco_extend_pushing(
    ctx: &mut BaselineCtx,
    input: DistTable,
    target: QueryVertex,
    backward: &[QueryVertex],
) -> Result<DistTable> {
    let positions: Vec<usize> = backward
        .iter()
        .map(|v| input.schema.iter().position(|x| x == v).expect("bound"))
        .collect();
    let mut out_schema = input.schema.clone();
    out_schema.push(target);
    let filters = order_filters(&ctx.order, &out_schema);
    let k = ctx.k();
    let arity = input.arity();
    let out_arity = out_schema.len();
    const WCO_TAG: usize = 0;
    let pool = ctx.machine_pool.clone();

    // Route the partial results hop by hop through the owners of the
    // vertices being intersected. Every row crossing machines is charged the
    // same bytes the original system's per-row walk would ship; messages are
    // counted per batch (not per row), matching the granularity the HUGE
    // engine's router reports so the two are comparable. A machine seeing a
    // full destination inbox drains its own inbox into the next hop's
    // buffer, so the bounded router never holds more than its capacity (and
    // the input table is consumed — its local shares move into the first
    // hop without being copied).
    let mut current: Vec<RowBatch> = input.rows;
    for &p in &positions {
        let shuffling = AtomicUsize::new(k);
        let failed = AtomicBool::new(false);
        let shared: &BaselineCtx = ctx;
        let routed = pool.run(
            current.into_iter().enumerate().collect::<Vec<_>>(),
            |(m, buffered), out: &mut Vec<(usize, Result<RowBatch>)>| {
                let res = guard_job(&failed, || {
                    let mut mine = RowBatch::new(arity);
                    shuffle_rendezvous(
                        shared,
                        m,
                        &shuffling,
                        &failed,
                        vec![(WCO_TAG, buffered)],
                        |chunk, _tag| partition_by_owner(chunk, p, shared.rpc(), k),
                        || {
                            for env in shared.drain_machine(m) {
                                let mut batch = env.batch;
                                mine.append(&mut batch);
                            }
                            Ok(())
                        },
                    )?;
                    Ok(mine)
                });
                out.push((m, res));
            },
        );
        let mut next: Vec<RowBatch> = (0..k).map(|_| RowBatch::new(arity)).collect();
        for (m, rows) in routed.into_flat() {
            next[m] = rows?;
        }
        current = next;
    }

    // Extend at the final machine: intersect the neighbourhoods (each list
    // was owned by one of the visited machines). Read-only, so the machines
    // simply run concurrently.
    let shared: &BaselineCtx = ctx;
    let extended = pool.run(
        current.into_iter().enumerate().collect::<Vec<_>>(),
        |(m, buffered), out: &mut Vec<(usize, RowBatch)>| {
            let mut rows = RowBatch::new(out_arity);
            let mut candidates: Vec<VertexId> = Vec::new();
            for row in buffered.rows() {
                candidates.clear();
                for (i, &p) in positions.iter().enumerate() {
                    let nbrs = shared.partitions[0].any_neighbours(row[p]);
                    if i == 0 {
                        candidates.extend_from_slice(nbrs);
                    } else {
                        huge_graph::kernels::intersect_in_place(&mut candidates, nbrs);
                    }
                    if candidates.is_empty() {
                        break;
                    }
                }
                let mut joined = Vec::with_capacity(row.len() + 1);
                for &c in &candidates {
                    if row.contains(&c) {
                        continue;
                    }
                    joined.clear();
                    joined.extend_from_slice(row);
                    joined.push(c);
                    if passes_filters(&joined, &filters) {
                        rows.push_row(&joined);
                    }
                }
            }
            out.push((m, rows));
        },
    );
    let mut output = DistTable::new(out_schema, k);
    for (m, rows) in extended.into_flat() {
        output.rows[m] = rows;
    }
    ctx.note_table(&output);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::{gen, Partitioner};
    use huge_query::Pattern;

    fn parts(k: usize) -> Arc<Vec<GraphPartition>> {
        Arc::new(Partitioner::new(k).unwrap().partition(gen::complete(6)))
    }

    #[test]
    fn scan_star_counts_ordered_tuples() {
        let parts = parts(2);
        let q = Pattern::Star(2).query_graph_unordered();
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]).unwrap();
        // K6: each root has 5 neighbours -> 5 * 4 ordered pairs, 6 roots.
        assert_eq!(table.total_rows(), 6 * 20);
        assert!(ctx.peak_memory > 0);
    }

    #[test]
    fn hash_join_assembles_squares() {
        // Square = path(1-0-3) ⋈ path(1-2-3), joined on {1, 3}.
        let parts = parts(2);
        let q = Pattern::Square.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let left = scan_star(&mut ctx, 0, &[1, 3]).unwrap();
        let right = scan_star(&mut ctx, 2, &[1, 3]).unwrap();
        let joined = hash_join_pushing(&mut ctx, left, right).unwrap();
        let expected = huge_query::naive::enumerate(&gen::complete(6), &q);
        assert_eq!(joined.total_rows(), expected);
        assert!(ctx.stats.total().bytes_pushed > 0);
    }

    #[test]
    fn wco_extension_counts_triangles() {
        let parts = parts(3);
        let q = Pattern::Triangle.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let edges = scan_star(&mut ctx, 0, &[1]).unwrap();
        let triangles = wco_extend_pushing(&mut ctx, edges, 2, &[0, 1]).unwrap();
        // K6 has C(6,3) = 20 triangles.
        assert_eq!(triangles.total_rows(), 20);
    }

    #[test]
    fn order_constraints_are_applied_when_bound() {
        let parts = parts(1);
        let q = Pattern::Star(2).query_graph(); // order breaks leaf symmetry
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]).unwrap();
        // With symmetry breaking only half of the ordered pairs survive.
        assert_eq!(table.total_rows(), 6 * 10);
    }

    #[test]
    fn empty_graph_produces_empty_tables() {
        let g = huge_graph::Graph::from_edges(Vec::<(u32, u32)>::new());
        let parts = Arc::new(Partitioner::new(2).unwrap().partition(g));
        let q = Pattern::Triangle.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1]).unwrap();
        assert_eq!(table.total_rows(), 0);
        let extended = wco_extend_pushing(&mut ctx, table.clone(), 2, &[0, 1]).unwrap();
        assert_eq!(extended.total_rows(), 0);
        let joined = hash_join_pushing(&mut ctx, table, extended).unwrap();
        assert_eq!(joined.total_rows(), 0);
        assert_eq!(ctx.stats.total().total_bytes(), 0);
    }
}
