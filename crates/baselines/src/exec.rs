//! Shared infrastructure for the baseline engines, built on the
//! [`huge_core::exec`] batch-operator substrate.
//!
//! The baselines materialise their intermediate *results* in full (that is
//! the behaviour the paper criticises), so the common substrate is a
//! *distributed table*: one [`RowBatch`] buffer per machine plus the schema
//! of query vertices bound by its columns. The operations on tables mirror
//! the physical operators of the respective systems — star scans, pushing
//! hash joins, pushing wco extensions and pulling star expansions — and they
//! execute through the same primitives as the HUGE engine: star scans are
//! [`BatchOperator`] sources, distributed hash joins shuffle through the
//! accounted [`huge_comm::Router`] and join with the shared
//! [`huge_core::exec::PushJoin`], and pulls go through
//! [`huge_comm::RpcFabric::get_nbrs`]. Every cross-machine byte is therefore
//! charged to [`huge_comm::ClusterStats`] by exactly the code paths the HUGE
//! engine uses, so reports are directly comparable.
//!
//! The *shuffles* themselves stream: table rows are pushed chunk-wise
//! through the bounded router, and when a destination inbox fills the
//! (single-threaded) evaluator cooperatively drains it straight into the
//! destination's `PUSH-JOIN` build. The shuffle therefore never
//! double-buffers a whole table — transient shuffle memory is bounded by the
//! router capacity plus the joiners' spill threshold, and it is charged to
//! the context's [`MemoryTracker`] so the bound is observable.
//!
//! Execution note: machines are processed sequentially inside one thread
//! (the baselines are far simpler than the HUGE engine); the measured wall
//! time is divided by the machine count to approximate an ideally parallel
//! BFS execution. This keeps the comparison conservative — the baselines are
//! charged no synchronisation or skew overhead at all.

use std::path::PathBuf;
use std::sync::Arc;

use huge_comm::router::PushEnvelope;
use huge_comm::stats::ClusterStats;
use huge_comm::{QueueAccounting, Router, RouterEndpoint, RowBatch, RpcFabric};
use huge_core::exec::{
    partition_by_key, partition_by_owner, run_pipeline, BatchOperator, OpContext, OpPoll, PushJoin,
};
use huge_core::join::{JoinSide, MemoryTrackerHandle};
use huge_core::memory::MemoryTracker;
use huge_core::operators::passes_filters;
use huge_core::pool::WorkerPool;
use huge_core::{LoadBalance, Result};
use huge_graph::{GraphPartition, VertexId};
use huge_plan::translate::{JoinOp, OrderFilter};
use huge_query::{PartialOrder, QueryGraph, QueryVertex};

/// Default rows per batch for baseline execution.
const DEFAULT_BATCH_SIZE: usize = 4096;

/// Default per-machine router inbox capacity (rows) for baseline shuffles.
const DEFAULT_QUEUE_ROWS: usize = 16 * DEFAULT_BATCH_SIZE;

/// Default in-memory bytes per `PUSH-JOIN` side before spilling to disk.
const DEFAULT_SPILL_BYTES: u64 = 64 * 1024 * 1024;

/// A fully materialised, hash-distributed intermediate result.
#[derive(Clone, Debug)]
pub struct DistTable {
    /// Query vertices bound by each column.
    pub schema: Vec<QueryVertex>,
    /// Row storage, one batch buffer per machine.
    pub rows: Vec<RowBatch>,
}

impl DistTable {
    /// An empty table over `k` machines.
    pub fn new(schema: Vec<QueryVertex>, k: usize) -> Self {
        assert!(
            !schema.is_empty(),
            "a distributed table must bind at least one query vertex"
        );
        let arity = schema.len();
        DistTable {
            schema,
            rows: (0..k).map(|_| RowBatch::new(arity)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Total number of rows across machines.
    pub fn total_rows(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    /// Total bytes across machines.
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.byte_size()).sum()
    }

    /// Largest per-machine byte footprint (contributes to the peak-memory
    /// metric).
    pub fn max_machine_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.byte_size()).max().unwrap_or(0)
    }

    /// Iterates the rows of one machine.
    pub fn machine_rows(&self, m: usize) -> impl Iterator<Item = &[VertexId]> {
        self.rows[m].rows()
    }
}

/// Evaluation context shared by the baseline engines: the cluster's
/// partitions plus the same accounted communication fabric the HUGE engine
/// uses (router for pushes, RPC fabric for pulls).
pub struct BaselineCtx {
    partitions: Arc<Vec<GraphPartition>>,
    /// Traffic accounting (same counters the HUGE engine uses).
    pub stats: ClusterStats,
    rpc: RpcFabric,
    endpoints: Vec<RouterEndpoint>,
    cache: huge_cache::LrbuCache,
    pool: WorkerPool,
    spill_dir: PathBuf,
    batch_size: usize,
    join_spill_bytes: u64,
    /// Tracks transient shuffle/join memory (router inboxes, `PUSH-JOIN`
    /// buffers and loaded partitions) — the observable streaming bound.
    pub memory: Arc<MemoryTracker>,
    /// The query's symmetry-breaking order.
    pub order: PartialOrder,
    /// Peak per-machine intermediate-result bytes observed so far.
    pub peak_memory: u64,
}

impl BaselineCtx {
    /// Creates a context over the cluster's partitions.
    pub fn new(partitions: Arc<Vec<GraphPartition>>, query: &QueryGraph) -> Self {
        Self::with_streaming_limits(partitions, query, DEFAULT_QUEUE_ROWS, DEFAULT_SPILL_BYTES)
    }

    /// Creates a context with explicit streaming bounds: the per-machine
    /// router inbox capacity and the per-side `PUSH-JOIN` spill threshold.
    pub fn with_streaming_limits(
        partitions: Arc<Vec<GraphPartition>>,
        query: &QueryGraph,
        queue_capacity_rows: usize,
        join_spill_bytes: u64,
    ) -> Self {
        let k = partitions.len();
        let stats = ClusterStats::new(k);
        let rpc = RpcFabric::new(Arc::clone(&partitions), stats.clone());
        let memory = Arc::new(MemoryTracker::new());
        let router = Router::with_capacity(k, stats.clone(), queue_capacity_rows.max(1));
        for m in 0..k {
            router.set_accounting(m, Arc::clone(&memory) as Arc<dyn QueueAccounting>);
        }
        let endpoints = (0..k).map(|m| router.endpoint(m)).collect();
        BaselineCtx {
            partitions,
            stats,
            rpc,
            endpoints,
            cache: huge_cache::LrbuCache::new(0),
            pool: WorkerPool::new(1, LoadBalance::None),
            spill_dir: {
                static CTX_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let seq = CTX_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::env::temp_dir().join(format!("huge-baselines-{}-{seq}", std::process::id()))
            },
            batch_size: DEFAULT_BATCH_SIZE,
            join_spill_bytes,
            memory,
            order: query.order().clone(),
            peak_memory: 0,
        }
    }

    /// Number of machines.
    pub fn k(&self) -> usize {
        self.partitions.len()
    }

    /// Peak intermediate-result bytes for the run report: the largest
    /// materialised table plus the tracked transient shuffle/join peak.
    pub fn report_peak_memory(&self) -> u64 {
        self.peak_memory.max(self.memory.peak())
    }

    /// The cluster's partitions.
    pub fn partitions(&self) -> &[GraphPartition] {
        &self.partitions
    }

    /// The pulling fabric (accounted `GetNbrs`).
    pub fn rpc(&self) -> &RpcFabric {
        &self.rpc
    }

    /// The execution context of machine `m` for [`BatchOperator`]s.
    pub fn op_context(&self, m: usize) -> OpContext<'_> {
        OpContext {
            machine: m,
            partition: &self.partitions[m],
            rpc: &self.rpc,
            cache: &self.cache,
            use_cache: false,
            pool: &self.pool,
            batch_size: self.batch_size,
        }
    }

    /// Records the footprint of a newly materialised table.
    pub fn note_table(&mut self, table: &DistTable) {
        self.peak_memory = self.peak_memory.max(table.max_machine_bytes());
    }

    /// The owner machine of a data vertex.
    pub fn owner(&self, v: VertexId) -> usize {
        self.rpc.owner(v)
    }

    /// Checks the symmetry constraints whose endpoints are both bound in
    /// `schema`.
    pub fn order_ok(&self, schema: &[QueryVertex], row: &[VertexId]) -> bool {
        passes_filters(row, &order_filters(&self.order, schema))
    }

    /// Non-blocking push of shuffle rows from machine `from` to `dest`
    /// through the accounted router (free when `dest == from`, charged
    /// otherwise — the same rule the HUGE engine's shuffles follow). On
    /// backpressure the batch is handed back; the caller must drain the
    /// destination inbox (machines share one thread here, so blocking would
    /// deadlock) and retry.
    fn try_push_shuffled(
        &self,
        from: usize,
        dest: usize,
        tag: usize,
        batch: RowBatch,
    ) -> std::result::Result<(), RowBatch> {
        self.endpoints[from].try_push(dest, tag, batch)
    }

    /// Drains machine `m`'s router inbox.
    fn drain_machine(&self, m: usize) -> Vec<PushEnvelope> {
        self.endpoints[m].drain()
    }

    /// `true` when machine `m`'s inbox is at or over capacity. Pushes to the
    /// own machine are *forced* past the bound (they must never wedge), so
    /// streaming loops poll this to know when to drain locally too.
    fn inbox_full(&self, m: usize) -> bool {
        self.endpoints[m].inbox_full(m)
    }
}

/// Translates the symmetry-breaking constraints whose endpoints are both
/// bound in `schema` into positional [`OrderFilter`]s.
pub fn order_filters(order: &PartialOrder, schema: &[QueryVertex]) -> Vec<OrderFilter> {
    order
        .constraints()
        .iter()
        .filter_map(|&(a, b)| {
            match (
                schema.iter().position(|&x| x == a),
                schema.iter().position(|&x| x == b),
            ) {
                (Some(pa), Some(pb)) => Some(OrderFilter {
                    smaller: pa,
                    larger: pb,
                }),
                _ => None,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Star scan: the baselines' source operator
// ---------------------------------------------------------------------------

/// A [`BatchOperator`] source enumerating the matches of a star
/// `(root; leaves)` over one machine's local vertices (ordered, injective
/// leaf assignments, symmetry filters applied).
pub struct StarScan {
    leaves: usize,
    filters: Vec<OrderFilter>,
    cursor: usize,
    done: bool,
}

impl StarScan {
    /// Creates the scan; `filters` are positional over `[root, leaves...]`.
    pub fn new(leaves: usize, filters: Vec<OrderFilter>) -> Self {
        StarScan {
            leaves,
            filters,
            cursor: 0,
            done: false,
        }
    }
}

impl BatchOperator for StarScan {
    fn name(&self) -> &'static str {
        "STAR-SCAN"
    }

    fn output_arity(&self) -> usize {
        self.leaves + 1
    }

    fn poll_next(&mut self, ctx: &OpContext<'_>) -> Result<OpPoll> {
        if self.done {
            return Ok(OpPoll::Exhausted);
        }
        let arity = self.output_arity();
        let locals = ctx.partition.local_vertices();
        let mut batch = RowBatch::new(arity);
        while self.cursor < locals.len() && batch.len() < ctx.batch_size {
            let u = locals[self.cursor];
            self.cursor += 1;
            let nbrs = ctx.partition.local_neighbours(u);
            let mut assignment: Vec<VertexId> = Vec::with_capacity(self.leaves);
            let mut row = Vec::with_capacity(arity);
            enumerate_leaf_tuples(u, nbrs, self.leaves, &mut assignment, &mut |leaf_vals| {
                row.clear();
                row.push(u);
                row.extend_from_slice(leaf_vals);
                if passes_filters(&row, &self.filters) {
                    batch.push_row(&row);
                }
            });
        }
        if self.cursor >= locals.len() {
            self.done = true;
        }
        if batch.is_empty() {
            Ok(if self.done {
                OpPoll::Exhausted
            } else {
                OpPoll::Pending
            })
        } else {
            Ok(OpPoll::Ready(batch))
        }
    }
}

/// Enumerates the matches of a star `(root; leaves)` as a distributed table:
/// each machine materialises the stars rooted at its local vertices through
/// a [`StarScan`] operator.
pub fn scan_star(
    ctx: &mut BaselineCtx,
    root: QueryVertex,
    leaves: &[QueryVertex],
) -> Result<DistTable> {
    let mut schema = vec![root];
    schema.extend_from_slice(leaves);
    let filters = order_filters(&ctx.order, &schema);
    let mut table = DistTable::new(schema, ctx.k());
    for m in 0..ctx.k() {
        let op_ctx = ctx.op_context(m);
        let mut scan = StarScan::new(leaves.len(), filters.clone());
        let out = &mut table.rows[m];
        let mut ops: [&mut dyn BatchOperator; 1] = [&mut scan];
        run_pipeline(&mut ops, &op_ctx, &mut |mut batch| out.append(&mut batch))?;
    }
    ctx.note_table(&table);
    Ok(table)
}

/// Recursively enumerates ordered, injective leaf assignments from a
/// neighbour list.
fn enumerate_leaf_tuples(
    root: VertexId,
    nbrs: &[VertexId],
    remaining: usize,
    assignment: &mut Vec<VertexId>,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if remaining == 0 {
        emit(assignment);
        return;
    }
    for &v in nbrs {
        if v == root || assignment.contains(&v) {
            continue;
        }
        assignment.push(v);
        enumerate_leaf_tuples(root, nbrs, remaining - 1, assignment, emit);
        assignment.pop();
    }
}

// ---------------------------------------------------------------------------
// Pushing hash join
// ---------------------------------------------------------------------------

/// Tag of the left input in a hash-join shuffle.
const LEFT_TAG: usize = 0;
/// Tag of the right input in a hash-join shuffle.
const RIGHT_TAG: usize = 1;

/// Moves every envelope queued in machine `m`'s inbox into its joiner build.
fn absorb_into_joiner(ctx: &BaselineCtx, m: usize, join: &mut PushJoin) -> Result<()> {
    for env in ctx.drain_machine(m) {
        let side = if env.segment == LEFT_TAG {
            JoinSide::Left
        } else {
            JoinSide::Right
        };
        join.push_side(side, &env.batch)?;
    }
    Ok(())
}

/// A pushing distributed hash join: both sides are shuffled by the join key
/// through the accounted router, then joined per machine with the shared
/// [`PushJoin`] operator.
///
/// The shuffle *streams*: table rows are pushed chunk-wise, and whenever a
/// destination inbox reaches capacity it is drained straight into that
/// machine's `PUSH-JOIN` build (which itself spills past its threshold).
/// Unlike the historic materialise-then-shuffle implementation, no copy of a
/// whole table ever sits in the router.
pub fn hash_join_pushing(
    ctx: &mut BaselineCtx,
    left: &DistTable,
    right: &DistTable,
) -> Result<DistTable> {
    let key: Vec<QueryVertex> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let key_left: Vec<usize> = key
        .iter()
        .map(|v| left.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let key_right: Vec<usize> = key
        .iter()
        .map(|v| right.schema.iter().position(|x| x == v).expect("key"))
        .collect();
    let payload_right: Vec<usize> = right
        .schema
        .iter()
        .enumerate()
        .filter(|(_, v)| !key.contains(v))
        .map(|(i, _)| i)
        .collect();
    let mut out_schema = left.schema.clone();
    for &i in &payload_right {
        out_schema.push(right.schema[i]);
    }
    let filters = order_filters(&ctx.order, &out_schema);

    let k = ctx.k();
    let op = JoinOp {
        left: LEFT_TAG,
        right: RIGHT_TAG,
        key_left,
        key_right,
        right_payload: payload_right,
        filters,
    };
    let mut joiners: Vec<PushJoin> = (0..k)
        .map(|m| {
            PushJoin::new(
                op.clone(),
                left.arity(),
                right.arity(),
                ctx.join_spill_bytes,
                ctx.spill_dir.join(format!("m{m}")),
                MemoryTrackerHandle::Tracked(Arc::clone(&ctx.memory)),
                ctx.batch_size,
            )
        })
        .collect();

    // Shuffle both sides by key hash through the router, chunk by chunk:
    // bytes crossing machines are charged there, one message per batch of at
    // most `batch_size` rows — the same batch granularity the HUGE engine
    // ships, which is what makes the reported message counts comparable.
    for m in 0..k {
        for (tag, table, keys) in [
            (LEFT_TAG, left, &op.key_left),
            (RIGHT_TAG, right, &op.key_right),
        ] {
            for chunk in table.rows[m].chunked(ctx.batch_size) {
                for (dest, part) in partition_by_key(&chunk, keys, k).into_iter().enumerate() {
                    let mut pending = part;
                    loop {
                        match ctx.try_push_shuffled(m, dest, tag, pending) {
                            Ok(()) => break,
                            Err(back) => {
                                // Destination inbox full: stream it into the
                                // destination's build and retry.
                                pending = back;
                                absorb_into_joiner(ctx, dest, &mut joiners[dest])?;
                            }
                        }
                    }
                }
                // Pushes to the own machine are forced past the bound (they
                // can never block); drain them into the local build as soon
                // as the inbox fills so the local share of a table is never
                // double-buffered either.
                if ctx.inbox_full(m) {
                    absorb_into_joiner(ctx, m, &mut joiners[m])?;
                }
            }
        }
    }

    // Absorb whatever is still queued, then drive the joins incrementally.
    let mut output = DistTable::new(out_schema, k);
    for (m, mut join) in joiners.into_iter().enumerate() {
        absorb_into_joiner(ctx, m, &mut join)?;
        let op_ctx = ctx.op_context(m);
        join.finish_input(&op_ctx)?;
        let out = &mut output.rows[m];
        while let OpPoll::Ready(mut batch) = join.poll_next(&op_ctx)? {
            out.append(&mut batch);
        }
    }
    ctx.note_table(&output);
    Ok(output)
}

// ---------------------------------------------------------------------------
// Pushing wco extension
// ---------------------------------------------------------------------------

/// BiGJoin's pushing wco extension: every partial result is routed to the
/// owners of the vertices whose neighbourhoods are intersected (one hop per
/// backward neighbour, moved batch-wise through the accounted router), then
/// extended by the intersection at the last-visited machine.
pub fn wco_extend_pushing(
    ctx: &mut BaselineCtx,
    input: &DistTable,
    target: QueryVertex,
    backward: &[QueryVertex],
) -> Result<DistTable> {
    let positions: Vec<usize> = backward
        .iter()
        .map(|v| input.schema.iter().position(|x| x == v).expect("bound"))
        .collect();
    let mut out_schema = input.schema.clone();
    out_schema.push(target);
    let filters = order_filters(&ctx.order, &out_schema);
    let k = ctx.k();
    const WCO_TAG: usize = 0;

    // Route the partial results hop by hop through the owners of the
    // vertices being intersected. Every row crossing machines is charged the
    // same bytes the original system's per-row walk would ship; messages are
    // counted per batch (not per row), matching the granularity the HUGE
    // engine's router reports so the two are comparable. A full destination
    // inbox is drained straight into the next hop's buffer, so the bounded
    // router never holds more than its capacity.
    let mut current: Vec<RowBatch> = input.rows.clone();
    for &p in &positions {
        let arity = input.arity();
        let mut next: Vec<RowBatch> = (0..k).map(|_| RowBatch::new(arity)).collect();
        for (m, buffered) in current.into_iter().enumerate() {
            for chunk in buffered.split_into_chunks(ctx.batch_size) {
                for (dest, part) in partition_by_owner(&chunk, p, ctx.rpc(), k)
                    .into_iter()
                    .enumerate()
                {
                    let mut pending = part;
                    loop {
                        match ctx.try_push_shuffled(m, dest, WCO_TAG, pending) {
                            Ok(()) => break,
                            Err(back) => {
                                pending = back;
                                for env in ctx.drain_machine(dest) {
                                    let mut batch = env.batch;
                                    next[dest].append(&mut batch);
                                }
                            }
                        }
                    }
                }
                // Forced local pushes bypass the bound: drain them as soon
                // as the own inbox fills.
                if ctx.inbox_full(m) {
                    for env in ctx.drain_machine(m) {
                        let mut batch = env.batch;
                        next[m].append(&mut batch);
                    }
                }
            }
        }
        for (dest, bucket) in next.iter_mut().enumerate() {
            for env in ctx.drain_machine(dest) {
                let mut batch = env.batch;
                bucket.append(&mut batch);
            }
        }
        current = next;
    }

    // Extend at the final machine: intersect the neighbourhoods (each list
    // was owned by one of the visited machines).
    let mut output = DistTable::new(out_schema, k);
    for (m, buffered) in current.iter().enumerate() {
        let out = &mut output.rows[m];
        for row in buffered.rows() {
            let mut candidates: Option<Vec<VertexId>> = None;
            for &p in &positions {
                let nbrs = ctx.partitions[0].any_neighbours(row[p]);
                candidates = Some(match candidates {
                    None => nbrs.to_vec(),
                    Some(prev) => huge_graph::graph::intersect_sorted(&prev, nbrs),
                });
            }
            let mut joined = Vec::with_capacity(row.len() + 1);
            for c in candidates.unwrap_or_default() {
                if row.contains(&c) {
                    continue;
                }
                joined.clear();
                joined.extend_from_slice(row);
                joined.push(c);
                if passes_filters(&joined, &filters) {
                    out.push_row(&joined);
                }
            }
        }
    }
    ctx.note_table(&output);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::{gen, Partitioner};
    use huge_query::Pattern;

    fn parts(k: usize) -> Arc<Vec<GraphPartition>> {
        Arc::new(Partitioner::new(k).unwrap().partition(gen::complete(6)))
    }

    #[test]
    fn scan_star_counts_ordered_tuples() {
        let parts = parts(2);
        let q = Pattern::Star(2).query_graph_unordered();
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]).unwrap();
        // K6: each root has 5 neighbours -> 5 * 4 ordered pairs, 6 roots.
        assert_eq!(table.total_rows(), 6 * 20);
        assert!(ctx.peak_memory > 0);
    }

    #[test]
    fn hash_join_assembles_squares() {
        // Square = path(1-0-3) ⋈ path(1-2-3), joined on {1, 3}.
        let parts = parts(2);
        let q = Pattern::Square.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let left = scan_star(&mut ctx, 0, &[1, 3]).unwrap();
        let right = scan_star(&mut ctx, 2, &[1, 3]).unwrap();
        let joined = hash_join_pushing(&mut ctx, &left, &right).unwrap();
        let expected = huge_query::naive::enumerate(&gen::complete(6), &q);
        assert_eq!(joined.total_rows(), expected);
        assert!(ctx.stats.total().bytes_pushed > 0);
    }

    #[test]
    fn wco_extension_counts_triangles() {
        let parts = parts(3);
        let q = Pattern::Triangle.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let edges = scan_star(&mut ctx, 0, &[1]).unwrap();
        let triangles = wco_extend_pushing(&mut ctx, &edges, 2, &[0, 1]).unwrap();
        // K6 has C(6,3) = 20 triangles.
        assert_eq!(triangles.total_rows(), 20);
    }

    #[test]
    fn order_constraints_are_applied_when_bound() {
        let parts = parts(1);
        let q = Pattern::Star(2).query_graph(); // order breaks leaf symmetry
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1, 2]).unwrap();
        // With symmetry breaking only half of the ordered pairs survive.
        assert_eq!(table.total_rows(), 6 * 10);
    }

    #[test]
    fn empty_graph_produces_empty_tables() {
        let g = huge_graph::Graph::from_edges(Vec::<(u32, u32)>::new());
        let parts = Arc::new(Partitioner::new(2).unwrap().partition(g));
        let q = Pattern::Triangle.query_graph();
        let mut ctx = BaselineCtx::new(parts, &q);
        let table = scan_star(&mut ctx, 0, &[1]).unwrap();
        assert_eq!(table.total_rows(), 0);
        let extended = wco_extend_pushing(&mut ctx, &table, 2, &[0, 1]).unwrap();
        assert_eq!(extended.total_rows(), 0);
        let joined = hash_join_pushing(&mut ctx, &table, &extended).unwrap();
        assert_eq!(joined.total_rows(), 0);
        assert_eq!(ctx.stats.total().total_bytes(), 0);
    }
}
