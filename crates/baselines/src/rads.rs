//! RADS [66]: star-expand-and-verify with pulling communication.
//!
//! RADS avoids shuffling intermediate results: in each round it expands the
//! partial matches by a star rooted at an *already matched* vertex, pulling
//! that vertex's adjacency list from its owner when it is remote, and then
//! verifies any remaining edges between matched vertices. Its weakness — the
//! paper's diagnosis — is the StarJoin-like left-deep plan this forces: the
//! expanded stars are fully materialised, which explodes on queries such as
//! q2 where large stars appear early.

use std::collections::HashMap;
use std::time::Instant;

use huge_core::report::RunReport;
use huge_core::{ClusterConfig, EngineError, Result};
use huge_graph::{Graph, Partitioner, VertexId};
use huge_plan::baselines::{native_plan, BaselineSystem};
use huge_plan::logical::JoinNode;
use huge_query::{QueryGraph, QueryVertex};

use crate::exec::{scan_star, BaselineCtx, DistTable};

/// The RADS baseline engine.
pub struct Rads {
    config: ClusterConfig,
}

impl Rads {
    /// Creates the engine.
    pub fn new(config: ClusterConfig) -> Self {
        Rads { config }
    }

    /// Enumerates `query` on `graph`.
    pub fn run(&self, graph: &Graph, query: &QueryGraph) -> Result<RunReport> {
        let plan = native_plan(BaselineSystem::Rads, query)?;
        let partitions =
            std::sync::Arc::new(Partitioner::new(self.config.machines)?.partition(graph.clone()));
        let mut ctx = BaselineCtx::new(partitions, query);
        let start = Instant::now();

        // RADS' plan is left-deep: flatten it into the initial star plus the
        // sequence of expansion/verification stars.
        let mut steps: Vec<&JoinNode> = Vec::new();
        let mut node = &plan.tree.root;
        loop {
            match node {
                JoinNode::Unit(_) => {
                    steps.push(node);
                    break;
                }
                JoinNode::Join { left, right, .. } => {
                    steps.push(right);
                    node = left;
                }
            }
        }
        steps.reverse();

        // Initial star scan.
        let first = match steps[0] {
            JoinNode::Unit(sub) => sub,
            _ => unreachable!("left-deep plans start with a unit"),
        };
        let (root, leaves) = first
            .as_star(query)
            .ok_or(EngineError::Config("RADS unit is not a star".into()))?;
        let mut table = scan_star(&mut ctx, root, &leaves)?;

        // Expansion / verification rounds.
        for step in &steps[1..] {
            let sub = step.output();
            let (mut root, mut leaves) = sub
                .as_star(query)
                .ok_or(EngineError::Config("RADS expansion is not a star".into()))?;
            // A single-edge star is rooted at its lower-id endpoint by
            // convention; RADS expands from whichever endpoint is already
            // matched, so re-orient if needed.
            if !table.schema.contains(&root)
                && leaves.len() == 1
                && table.schema.contains(&leaves[0])
            {
                std::mem::swap(&mut root, &mut leaves[0]);
            }
            table = expand_star_pulling(&mut ctx, &table, root, &leaves);
        }

        let matches = table.total_rows();
        // Machines expand concurrently on the context's machine pool, so the
        // wall clock includes their real skew instead of assuming ideal
        // parallelism.
        let compute_time = start.elapsed();
        let comm = ctx.stats.total();
        Ok(RunReport {
            query: format!("RADS:{}", query.name()),
            matches,
            compute_time,
            comm_time: self.config.network.time_for_snapshot(&comm),
            comm_bytes: comm.total_bytes(),
            comm,
            peak_memory_bytes: ctx.report_peak_memory(),
            ..Default::default()
        })
    }
}

/// Expands every partial match by a star rooted at the already-bound vertex
/// `root`, pulling the root's adjacency list when it is remote. Bound leaves
/// are verified; unbound leaves are enumerated injectively. The machines
/// expand concurrently on the context's machine pool.
fn expand_star_pulling(
    ctx: &mut BaselineCtx,
    input: &DistTable,
    root: QueryVertex,
    leaves: &[QueryVertex],
) -> DistTable {
    let root_pos = input
        .schema
        .iter()
        .position(|&v| v == root)
        .expect("RADS expands from a matched vertex");
    let bound: Vec<(usize, QueryVertex)> = leaves
        .iter()
        .filter_map(|&l| input.schema.iter().position(|&v| v == l).map(|p| (p, l)))
        .collect();
    let unbound: Vec<QueryVertex> = leaves
        .iter()
        .copied()
        .filter(|l| !input.schema.contains(l))
        .collect();
    let mut out_schema = input.schema.clone();
    out_schema.extend_from_slice(&unbound);

    let k = ctx.k();
    let out_arity = out_schema.len();
    let pool = ctx.machine_pool().clone();
    let shared: &BaselineCtx = ctx;
    let out_schema_ref = &out_schema;
    let expanded = pool.run(
        (0..k).collect::<Vec<_>>(),
        |m, out: &mut Vec<(usize, huge_comm::RowBatch)>| {
            // Per-machine cache of pulled adjacency lists (RADS caches within
            // a region group; we grant it a whole-machine cache, which is
            // generous). Fetches go through the shared RPC fabric, which
            // charges remote pulls exactly as the HUGE engine's `PULL-EXTEND`
            // is charged.
            let mut cache: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
            let mut rows = huge_comm::RowBatch::new(out_arity);
            for row in input.machine_rows(m) {
                let anchor = row[root_pos];
                let nbrs = &*cache.entry(anchor).or_insert_with(|| {
                    shared
                        .rpc()
                        .get_nbrs(m, &[anchor])
                        .into_iter()
                        .next()
                        .map(|(_, nbrs)| nbrs)
                        .unwrap_or_default()
                });
                // Verification of already-bound leaves.
                let verified = bound
                    .iter()
                    .all(|&(pos, _)| nbrs.binary_search(&row[pos]).is_ok());
                if !verified {
                    continue;
                }
                // Enumerate injective assignments for the unbound leaves.
                let mut assignment: Vec<VertexId> = Vec::with_capacity(unbound.len());
                enumerate_unbound(nbrs, row, unbound.len(), &mut assignment, &mut |vals| {
                    let mut joined = Vec::with_capacity(out_arity);
                    joined.extend_from_slice(row);
                    joined.extend_from_slice(vals);
                    if shared.order_ok(out_schema_ref, &joined) {
                        rows.push_row(&joined);
                    }
                });
            }
            out.push((m, rows));
        },
    );
    let mut output = DistTable::new(out_schema.clone(), k);
    for (m, rows) in expanded.into_flat() {
        output.rows[m] = rows;
    }
    ctx.note_table(&output);
    output
}

fn enumerate_unbound(
    nbrs: &[VertexId],
    row: &[VertexId],
    remaining: usize,
    assignment: &mut Vec<VertexId>,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if remaining == 0 {
        emit(assignment);
        return;
    }
    for &v in nbrs {
        if row.contains(&v) || assignment.contains(&v) {
            continue;
        }
        assignment.push(v);
        enumerate_unbound(nbrs, row, remaining - 1, assignment, emit);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::{naive, Pattern};

    #[test]
    fn rads_counts_match_reference() {
        let g = gen::erdos_renyi(150, 700, 13);
        for pattern in [Pattern::Triangle, Pattern::Square, Pattern::ChordalSquare] {
            let q = pattern.query_graph();
            let expected = naive::enumerate(&g, &q);
            let report = Rads::new(ClusterConfig::new(3)).run(&g, &q).unwrap();
            assert_eq!(report.matches, expected, "{pattern:?}");
        }
    }

    #[test]
    fn rads_pulls_rather_than_pushes() {
        let g = gen::barabasi_albert(250, 6, 21);
        let q = Pattern::Square.query_graph();
        let report = Rads::new(ClusterConfig::new(4)).run(&g, &q).unwrap();
        assert_eq!(report.comm.bytes_pushed, 0);
        assert!(report.comm.bytes_pulled > 0);
    }

    #[test]
    fn rads_materialises_large_intermediates() {
        // The star-expand plan materialises whole stars, so its peak memory
        // should exceed the final result size for a sparse query.
        let g = gen::barabasi_albert(300, 8, 5);
        let q = Pattern::Square.query_graph();
        let report = Rads::new(ClusterConfig::new(2)).run(&g, &q).unwrap();
        assert!(report.peak_memory_bytes > 0);
    }
}
