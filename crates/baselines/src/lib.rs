//! Reference implementations of the systems HUGE is compared against.
//!
//! The paper (Table 1, Exp-1/2/3/10) compares HUGE with four distributed
//! subgraph-enumeration systems plus StarJoin. Re-implementing each system
//! in full is out of scope; what matters for the comparison is how each one
//! *behaves* along the three axes the paper analyses — computation,
//! communication and memory:
//!
//! * [`BigJoin`] — worst-case-optimal join, BFS scheduling, **pushing**:
//!   partial results are shuffled to the owners of the vertices being
//!   intersected; all intermediate results are materialised.
//! * [`Seed`] / [`StarJoin`] — hash joins over star decompositions
//!   (bushy / left-deep), BFS scheduling, **pushing**: both join inputs are
//!   fully materialised and shuffled by join key.
//! * [`Benu`] — per-machine DFS backtracking that **pulls** adjacency lists
//!   from an external key-value store (simulated by
//!   [`huge_comm::ExternalKvStore`] with a per-request overhead), caching
//!   them in a local table.
//! * [`Rads`] — star-expand-and-verify with **pulling**, executing RADS'
//!   left-deep star plan and materialising every expanded star.
//!
//! Every engine runs one thread per simulated machine over the same hash
//! partitioning as the HUGE engine, counts exactly the same matches (they
//! are all validated against the sequential reference), and reports the
//! same [`RunReport`] metrics so the experiment harness can print the
//! paper's tables directly.

pub mod benu;
pub mod exec;
pub mod joinbased;
pub mod rads;

pub use benu::Benu;
pub use joinbased::{BigJoin, Seed, StarJoin};
pub use rads::Rads;

use huge_core::report::RunReport;
use huge_core::{ClusterConfig, Result};
use huge_graph::Graph;
use huge_query::QueryGraph;

/// The baseline systems, in the order the paper lists them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// StarJoin [80].
    StarJoin,
    /// SEED [46].
    Seed,
    /// BiGJoin [5].
    BigJoin,
    /// BENU [84].
    Benu,
    /// RADS [66].
    Rads,
}

impl Baseline {
    /// All baselines.
    pub const ALL: [Baseline; 5] = [
        Baseline::StarJoin,
        Baseline::Seed,
        Baseline::BigJoin,
        Baseline::Benu,
        Baseline::Rads,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::StarJoin => "StarJoin",
            Baseline::Seed => "SEED",
            Baseline::BigJoin => "BiGJoin",
            Baseline::Benu => "BENU",
            Baseline::Rads => "RADS",
        }
    }

    /// Runs the baseline on `graph` with `config.machines` simulated
    /// machines and returns the usual run report.
    pub fn run(
        &self,
        graph: &Graph,
        query: &QueryGraph,
        config: &ClusterConfig,
    ) -> Result<RunReport> {
        match self {
            Baseline::StarJoin => StarJoin::new(config.clone()).run(graph, query),
            Baseline::Seed => Seed::new(config.clone()).run(graph, query),
            Baseline::BigJoin => BigJoin::new(config.clone()).run(graph, query),
            Baseline::Benu => Benu::new(config.clone()).run(graph, query),
            Baseline::Rads => Rads::new(config.clone()).run(graph, query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::{naive, Pattern};

    #[test]
    fn every_baseline_counts_correctly_on_a_small_graph() {
        let graph = gen::erdos_renyi(120, 600, 3);
        let config = ClusterConfig::new(3).workers(1);
        for pattern in [Pattern::Triangle, Pattern::Square, Pattern::FourClique] {
            let query = pattern.query_graph();
            let expected = naive::enumerate(&graph, &query);
            for baseline in Baseline::ALL {
                let report = baseline.run(&graph, &query, &config).unwrap();
                assert_eq!(
                    report.matches,
                    expected,
                    "{} on {:?}",
                    baseline.name(),
                    pattern
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Baseline::ALL.iter().map(|b| b.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
