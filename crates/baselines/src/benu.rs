//! BENU [84]: DFS backtracking over an external key-value store.
//!
//! BENU stores the data graph in a distributed key-value store (Cassandra)
//! and runs an embarrassingly parallel depth-first backtracking program on
//! each machine, pulling (and locally caching) adjacency lists on demand.
//! Communication volume is low, but every lookup pays the store's overhead —
//! the effect the paper identifies as BENU's bottleneck. The store is
//! simulated by [`huge_comm::ExternalKvStore`]; its accumulated overhead is
//! added to the reported computation time exactly as it would surface in a
//! real deployment.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use huge_comm::kv::KvStoreCost;
use huge_comm::ExternalKvStore;
use huge_core::pool::WorkerPool;
use huge_core::report::RunReport;
use huge_core::{ClusterConfig, LoadBalance, Result};
use huge_graph::{Graph, Partitioner, VertexId};
use huge_query::{QueryGraph, QueryVertex};

/// The BENU baseline engine.
pub struct Benu {
    config: ClusterConfig,
    store_cost: KvStoreCost,
}

impl Benu {
    /// Creates the engine with default store costs.
    pub fn new(config: ClusterConfig) -> Self {
        Benu {
            config,
            store_cost: KvStoreCost::default(),
        }
    }

    /// Overrides the simulated key-value store cost.
    pub fn with_store_cost(mut self, cost: KvStoreCost) -> Self {
        self.store_cost = cost;
        self
    }

    /// Enumerates `query` on `graph`.
    pub fn run(&self, graph: &Graph, query: &QueryGraph) -> Result<RunReport> {
        let k = self.config.machines;
        let partitions = Partitioner::new(k)?.partition(graph.clone());
        let store = Arc::new(ExternalKvStore::new(
            Arc::new(graph.clone()),
            self.store_cost,
        ));
        let order = query.connected_order();
        let start = Instant::now();
        // Each machine runs its backtracking program on its own persistent
        // pool worker (BENU's execution is embarrassingly parallel), caching
        // every adjacency list it pulls from the store. The wall clock is
        // the real parallel time, stragglers included.
        let pool = WorkerPool::new(k.max(1), LoadBalance::None);
        let per_machine = pool.run(
            partitions.iter().collect::<Vec<_>>(),
            |partition, out: &mut Vec<(u64, u64)>| {
                let mut cache: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
                let mut assignment = vec![u32::MAX; query.num_vertices()];
                let mut local = 0u64;
                for &pivot in partition.local_vertices() {
                    assignment[order[0] as usize] = pivot;
                    local += dfs(query, &order, 1, &mut assignment, &store, &mut cache);
                    assignment[order[0] as usize] = u32::MAX;
                }
                let cache_bytes: u64 = cache
                    .values()
                    .map(|v| (v.len() * std::mem::size_of::<VertexId>() + 16) as u64)
                    .sum();
                out.push((local, cache_bytes));
            },
        );
        let mut matches = 0u64;
        let mut peak_cache_bytes = 0u64;
        for (local, cache_bytes) in per_machine.into_flat() {
            matches += local;
            peak_cache_bytes = peak_cache_bytes.max(cache_bytes);
        }
        let wall = start.elapsed();
        // The store's simulated overhead accrues on a virtual clock shared by
        // all machines; their lookups overlap, so each machine pays 1/k of it.
        let overhead = store.overhead() / k.max(1) as u32;
        let bytes = store.bytes_served();
        let comm = huge_comm::stats::CommSnapshot {
            bytes_pulled: bytes,
            rpc_requests: store.requests(),
            vertices_fetched: store.requests(),
            ..Default::default()
        };
        Ok(RunReport {
            query: format!("BENU:{}", query.name()),
            matches,
            compute_time: wall + overhead,
            comm_time: self.config.network.time_for_snapshot(&comm),
            comm_bytes: comm.total_bytes(),
            comm,
            peak_memory_bytes: peak_cache_bytes,
            ..Default::default()
        })
    }
}

/// One step of the backtracking program: match `order[depth]` against the
/// intersection of the neighbourhoods of its already-matched neighbours,
/// pulling adjacency lists through the store-backed cache.
fn dfs(
    query: &QueryGraph,
    order: &[QueryVertex],
    depth: usize,
    assignment: &mut Vec<u32>,
    store: &ExternalKvStore,
    cache: &mut HashMap<VertexId, Vec<VertexId>>,
) -> u64 {
    if depth == order.len() {
        return if query.order().check_full(assignment) {
            1
        } else {
            0
        };
    }
    let qv = order[depth];
    let bound: Vec<VertexId> = query
        .neighbours(qv)
        .filter_map(|u| {
            let m = assignment[u as usize];
            (m != u32::MAX).then_some(m)
        })
        .collect();
    // Intersect the cached neighbour lists (adaptive merge/gallop kernel).
    let mut candidates: Vec<VertexId> = Vec::new();
    for (i, &b) in bound.iter().enumerate() {
        let nbrs = &*cache.entry(b).or_insert_with(|| store.get(b));
        if i == 0 {
            candidates.extend_from_slice(nbrs);
        } else {
            huge_graph::kernels::intersect_in_place(&mut candidates, nbrs);
        }
        if candidates.is_empty() {
            break;
        }
    }
    let mut count = 0;
    for c in candidates {
        if assignment.contains(&c) {
            continue;
        }
        assignment[qv as usize] = c;
        // Prune with the partial order early where possible.
        let feasible = query.order().constraints_on(qv).all(|(a, b)| {
            let fa = assignment[a as usize];
            let fb = assignment[b as usize];
            fa == u32::MAX || fb == u32::MAX || fa < fb
        });
        if feasible {
            count += dfs(query, order, depth + 1, assignment, store, cache);
        }
        assignment[qv as usize] = u32::MAX;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::{naive, Pattern};
    use std::time::Duration;

    #[test]
    fn benu_counts_match_reference() {
        let g = gen::erdos_renyi(150, 700, 9);
        for pattern in [Pattern::Triangle, Pattern::Square] {
            let q = pattern.query_graph();
            let expected = naive::enumerate(&g, &q);
            let report = Benu::new(ClusterConfig::new(2)).run(&g, &q).unwrap();
            assert_eq!(report.matches, expected, "{pattern:?}");
        }
    }

    #[test]
    fn store_overhead_dominates_runtime() {
        let g = gen::barabasi_albert(300, 6, 2);
        let q = Pattern::Square.query_graph();
        let slow = Benu::new(ClusterConfig::new(2))
            .with_store_cost(KvStoreCost {
                per_request: Duration::from_millis(1),
                per_byte: Duration::ZERO,
            })
            .run(&g, &q)
            .unwrap();
        let fast = Benu::new(ClusterConfig::new(2))
            .with_store_cost(KvStoreCost {
                per_request: Duration::from_nanos(1),
                per_byte: Duration::ZERO,
            })
            .run(&g, &q)
            .unwrap();
        assert_eq!(slow.matches, fast.matches);
        assert!(slow.compute_time > fast.compute_time * 2);
    }

    #[test]
    fn communication_volume_is_bounded_by_graph_size_per_machine() {
        let g = gen::erdos_renyi(200, 1000, 4);
        let q = Pattern::Triangle.query_graph();
        let report = Benu::new(ClusterConfig::new(2)).run(&g, &q).unwrap();
        // Each machine pulls each vertex at most once thanks to its local
        // cache, so the pulled volume is at most k * |E| * 2 * 4 bytes.
        let bound = 2 * 2 * 2 * 4 * g.num_edges();
        assert!(
            report.comm_bytes <= bound,
            "{} > {bound}",
            report.comm_bytes
        );
    }
}
