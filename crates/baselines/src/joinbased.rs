//! The pushing, join-based baselines: StarJoin, SEED and BiGJoin.
//!
//! All three follow a BFS-style execution that materialises every
//! intermediate result and pushes data across the cluster: StarJoin and SEED
//! shuffle both operands of every hash join by the join key, BiGJoin routes
//! every partial result to the owners of the vertices whose neighbourhoods
//! it intersects. Their *logical* plans come from
//! [`huge_plan::baselines::native_plan`]; this module merely executes those
//! plans with the corresponding physical behaviour and accounts the traffic
//! and memory they generate.

use std::time::Instant;

use huge_core::report::RunReport;
use huge_core::{ClusterConfig, EngineError, Result};
use huge_graph::{Graph, Partitioner};
use huge_plan::baselines::{native_plan, BaselineSystem};
use huge_plan::logical::JoinNode;
use huge_plan::physical::JoinAlgorithm;
use huge_query::QueryGraph;

use crate::exec::{hash_join_pushing, scan_star, wco_extend_pushing, BaselineCtx, DistTable};

/// Runs a join-based baseline's native plan and produces a report.
fn run_join_based(
    system: BaselineSystem,
    name: &str,
    config: &ClusterConfig,
    graph: &Graph,
    query: &QueryGraph,
) -> Result<RunReport> {
    let plan = native_plan(system, query)?;
    let partitions =
        std::sync::Arc::new(Partitioner::new(config.machines)?.partition(graph.clone()));
    let mut ctx = BaselineCtx::new(partitions, query);
    let start = Instant::now();
    let result = eval_node(&mut ctx, query, &plan.tree.root)?;
    let matches = result.total_rows();
    // Machines execute concurrently on the context's machine pool, so the
    // measured wall clock includes the baselines' real synchronisation cost
    // (stragglers, shuffle backpressure, end-of-shuffle rendezvous).
    let compute_time = start.elapsed();
    let comm = ctx.stats.total();
    Ok(RunReport {
        query: format!("{name}:{}", query.name()),
        matches,
        compute_time,
        comm_time: config.network.time_for_snapshot(&comm),
        comm_bytes: comm.total_bytes(),
        comm,
        peak_memory_bytes: ctx.report_peak_memory(),
        ..Default::default()
    })
}

/// Recursively evaluates a join tree with the baseline's physical operators.
fn eval_node(ctx: &mut BaselineCtx, query: &QueryGraph, node: &JoinNode) -> Result<DistTable> {
    match node {
        JoinNode::Unit(sub) => {
            let (root, leaves) = sub
                .as_star(query)
                .ok_or(EngineError::Config("baseline unit is not a star".into()))?;
            scan_star(ctx, root, &leaves)
        }
        JoinNode::Join {
            left,
            right,
            physical,
            ..
        } => {
            let left_table = eval_node(ctx, query, left)?;
            match physical.algorithm {
                JoinAlgorithm::Wco => {
                    // The right operand is a star (v; backward neighbours)
                    // whose leaves are already bound on the left.
                    let (mut target, mut backward) = right
                        .output()
                        .as_star(query)
                        .ok_or(EngineError::Config("wco operand is not a star".into()))?;
                    // A single-edge star is rooted at its lower-id endpoint
                    // by convention; re-orient so the new vertex is extended
                    // from the already-bound one.
                    if backward.len() == 1
                        && !left_table.schema.contains(&backward[0])
                        && left_table.schema.contains(&target)
                    {
                        std::mem::swap(&mut target, &mut backward[0]);
                    }
                    wco_extend_pushing(ctx, left_table, target, &backward)
                }
                JoinAlgorithm::Hash => {
                    let right_table = eval_node(ctx, query, right)?;
                    hash_join_pushing(ctx, left_table, right_table)
                }
            }
        }
    }
}

macro_rules! join_based_engine {
    ($(#[$doc:meta])* $name:ident, $system:expr, $label:expr) => {
        $(#[$doc])*
        pub struct $name {
            config: ClusterConfig,
        }

        impl $name {
            /// Creates the engine with the given cluster configuration.
            pub fn new(config: ClusterConfig) -> Self {
                Self { config }
            }

            /// Enumerates `query` on `graph` and reports the usual metrics.
            pub fn run(&self, graph: &Graph, query: &QueryGraph) -> Result<RunReport> {
                run_join_based($system, $label, &self.config, graph, query)
            }
        }
    };
}

join_based_engine!(
    /// StarJoin [80]: left-deep star decomposition executed with pushing
    /// hash joins.
    StarJoin,
    BaselineSystem::StarJoin,
    "StarJoin"
);

join_based_engine!(
    /// SEED [46]: bushy star decomposition executed with pushing hash joins
    /// (without the clique/triangle index, as in the paper's index-free
    /// configuration).
    Seed,
    BaselineSystem::Seed,
    "SEED"
);

join_based_engine!(
    /// BiGJoin [5]: left-deep worst-case-optimal extensions executed with
    /// pushing communication and full materialisation between rounds.
    BigJoin,
    BaselineSystem::BigJoin,
    "BiGJoin"
);

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::{naive, Pattern};

    #[test]
    fn bigjoin_counts_match_reference() {
        let g = gen::barabasi_albert(200, 5, 1);
        let q = Pattern::ChordalSquare.query_graph();
        let expected = naive::enumerate(&g, &q);
        let report = BigJoin::new(ClusterConfig::new(2)).run(&g, &q).unwrap();
        assert_eq!(report.matches, expected);
        assert!(report.comm_bytes > 0);
    }

    #[test]
    fn seed_materialises_more_than_it_pushes_nothing_locally() {
        let g = gen::erdos_renyi(150, 700, 5);
        let q = Pattern::Square.query_graph();
        let expected = naive::enumerate(&g, &q);
        let seed = Seed::new(ClusterConfig::new(4)).run(&g, &q).unwrap();
        let starjoin = StarJoin::new(ClusterConfig::new(4)).run(&g, &q).unwrap();
        assert_eq!(seed.matches, expected);
        assert_eq!(starjoin.matches, expected);
        assert!(seed.peak_memory_bytes > 0);
    }

    #[test]
    fn bigjoin_pushes_fewer_bytes_than_hash_join_baselines_on_cliques() {
        // For a clique query the wco extensions avoid materialising the huge
        // star relations that SEED must shuffle.
        let g = gen::barabasi_albert(300, 8, 7);
        let q = Pattern::FourClique.query_graph();
        let seed = Seed::new(ClusterConfig::new(3)).run(&g, &q).unwrap();
        let bigjoin = BigJoin::new(ClusterConfig::new(3)).run(&g, &q).unwrap();
        assert_eq!(seed.matches, bigjoin.matches);
        assert!(
            bigjoin.peak_memory_bytes <= seed.peak_memory_bytes,
            "bigjoin {} vs seed {}",
            bigjoin.peak_memory_bytes,
            seed.peak_memory_bytes
        );
    }
}
