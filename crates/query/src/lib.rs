//! Query-graph support for the HUGE subgraph-enumeration system.
//!
//! A *query graph* (also called a pattern) is the small graph whose
//! isomorphic embeddings in the data graph are to be enumerated. This crate
//! provides:
//!
//! * [`QueryGraph`] — a small, dense representation of query graphs with
//!   subgraph/merge operations as needed by the join-based framework (§3.1
//!   of the paper).
//! * [`patterns`] — the paper's benchmark queries `q1`–`q8` plus common
//!   building blocks (triangle, paths, stars, cliques, cycles).
//! * [`symmetry`] — automorphism enumeration and symmetry-breaking partial
//!   orders (the Grochow–Kellis method the paper cites [28]).
//! * [`naive`] — a sequential Ullmann-style backtracking enumerator used as
//!   ground truth by every test in the workspace.

pub mod naive;
pub mod patterns;
pub mod query;
pub mod symmetry;

pub use patterns::Pattern;
pub use query::{PartialOrder, QueryGraph, QueryVertex};
pub use symmetry::{automorphisms, symmetry_breaking_order};
