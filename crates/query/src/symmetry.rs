//! Automorphisms and symmetry-breaking partial orders.
//!
//! Subgraph enumeration counts each *subgraph* once, but an isomorphic
//! mapping exists for every automorphism of the query graph. Following the
//! common practice the paper adopts (§2, citing Grochow & Kellis), we derive
//! a partial order on query vertices such that exactly one mapping per
//! subgraph satisfies all `ID(f(a)) < ID(f(b))` constraints.

use crate::query::{PartialOrder, QueryGraph, QueryVertex};

/// Enumerates all automorphisms of `q` as permutations (`perm[v]` is the
/// image of `v`). The identity is always included.
///
/// Complexity is factorial in the number of vertices, which is fine for the
/// ≤ 8-vertex queries used in subgraph enumeration benchmarks.
pub fn automorphisms(q: &QueryGraph) -> Vec<Vec<QueryVertex>> {
    let n = q.num_vertices();
    let mut result = Vec::new();
    let mut perm: Vec<QueryVertex> = vec![0; n];
    let mut used = vec![false; n];
    search(q, 0, &mut perm, &mut used, &mut result);
    result
}

fn search(
    q: &QueryGraph,
    depth: usize,
    perm: &mut Vec<QueryVertex>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<QueryVertex>>,
) {
    let n = q.num_vertices();
    if depth == n {
        out.push(perm.clone());
        return;
    }
    let v = depth as QueryVertex;
    for candidate in 0..n as QueryVertex {
        if used[candidate as usize] {
            continue;
        }
        // Degree must be preserved.
        if q.degree(candidate) != q.degree(v) {
            continue;
        }
        // Adjacency with already-mapped vertices must be preserved both ways.
        let consistent = (0..depth as QueryVertex)
            .all(|u| q.has_edge(u, v) == q.has_edge(perm[u as usize], candidate));
        if !consistent {
            continue;
        }
        perm[depth] = candidate;
        used[candidate as usize] = true;
        search(q, depth + 1, perm, used, out);
        used[candidate as usize] = false;
    }
}

/// Computes a symmetry-breaking partial order for `q` using the
/// Grochow–Kellis procedure:
///
/// 1. enumerate the automorphism group `A`;
/// 2. while `A` contains more than the identity, pick the smallest vertex
///    `v` with a non-trivial orbit, emit `v < u` for every other vertex `u`
///    in its orbit, and restrict `A` to the stabiliser of `v`.
///
/// The resulting constraints admit exactly one automorphic image of every
/// subgraph.
pub fn symmetry_breaking_order(q: &QueryGraph) -> PartialOrder {
    let mut group = automorphisms(q);
    let n = q.num_vertices();
    let mut constraints: Vec<(QueryVertex, QueryVertex)> = Vec::new();
    while group.len() > 1 {
        // Find the smallest vertex moved by some automorphism.
        let mut chosen: Option<QueryVertex> = None;
        for v in 0..n as QueryVertex {
            let orbit_size = orbit(&group, v).len();
            if orbit_size > 1 {
                chosen = Some(v);
                break;
            }
        }
        let Some(v) = chosen else { break };
        for u in orbit(&group, v) {
            if u != v {
                constraints.push((v, u));
            }
        }
        group.retain(|perm| perm[v as usize] == v);
    }
    PartialOrder::from_pairs(constraints)
}

/// The orbit of `v` under a set of permutations.
fn orbit(group: &[Vec<QueryVertex>], v: QueryVertex) -> Vec<QueryVertex> {
    let mut orbit: Vec<QueryVertex> = group.iter().map(|perm| perm[v as usize]).collect();
    orbit.sort_unstable();
    orbit.dedup();
    orbit
}

/// The size of the automorphism group of `q`.
pub fn automorphism_count(q: &QueryGraph) -> u64 {
    automorphisms(q).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;

    #[test]
    fn identity_always_present() {
        let q = Pattern::Triangle.query_graph();
        let autos = automorphisms(&q);
        assert!(autos
            .iter()
            .any(|p| p.iter().enumerate().all(|(i, &x)| x as usize == i)));
    }

    #[test]
    fn automorphism_counts_of_known_patterns() {
        assert_eq!(automorphism_count(&Pattern::Triangle.query_graph()), 6);
        assert_eq!(automorphism_count(&Pattern::Square.query_graph()), 8);
        assert_eq!(automorphism_count(&Pattern::FourClique.query_graph()), 24);
        assert_eq!(automorphism_count(&Pattern::Path(3).query_graph()), 2);
        assert_eq!(automorphism_count(&Pattern::Star(4).query_graph()), 24);
        assert_eq!(automorphism_count(&Pattern::FiveClique.query_graph()), 120);
    }

    #[test]
    fn symmetry_breaking_reduces_to_identity() {
        // After fixing the orbit constraints, only the identity must satisfy
        // the constraints on every automorphism image of a canonical match.
        for pattern in [
            Pattern::Triangle,
            Pattern::Square,
            Pattern::FourClique,
            Pattern::ChordalSquare,
            Pattern::House,
            Pattern::Path(4),
            Pattern::Star(3),
        ] {
            let q = pattern.query_graph_unordered();
            let po = symmetry_breaking_order(&q);
            let autos = automorphisms(&q);
            // Use a strictly increasing "assignment" 10, 20, 30, ... and count
            // how many automorphic permutations of it satisfy the order.
            let base: Vec<u32> = (0..q.num_vertices() as u32).map(|i| (i + 1) * 10).collect();
            let satisfying = autos
                .iter()
                .filter(|perm| {
                    // image assignment: vertex v gets base[perm^-1... ] --
                    // we permute the assignment: f'(v) = base[position of v].
                    let mut assigned = vec![0u32; q.num_vertices()];
                    for (v, &img) in perm.iter().enumerate() {
                        assigned[img as usize] = base[v];
                    }
                    po.check_full(&assigned)
                })
                .count();
            assert_eq!(satisfying, 1, "pattern {pattern:?} not fully broken");
        }
    }

    #[test]
    fn all_automorphisms_are_valid() {
        let q = Pattern::ChordalSquare.query_graph();
        for perm in automorphisms(&q) {
            assert!(q.is_automorphism(&perm));
        }
    }

    #[test]
    fn asymmetric_graph_has_identity_only() {
        // A triangle with a pendant path of length 2 on one vertex and a
        // single pendant on another has a trivial automorphism group.
        let q = crate::QueryGraph::new(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (1, 5)]);
        assert_eq!(automorphism_count(&q), 1);
        assert!(symmetry_breaking_order(&q).is_empty());
    }
}
