//! The query-graph representation.

/// Identifier of a query vertex (`v1`, `v2`, … in the paper, 0-based here).
///
/// Query graphs are tiny (the paper's largest has 6 vertices); we cap the
/// representation at 32 vertices so vertex sets fit in a `u32` bitmask and
/// edge sets in a `u64` bitmask.
pub type QueryVertex = u8;

/// Maximum number of vertices in a query graph.
pub const MAX_QUERY_VERTICES: usize = 32;

/// Maximum number of edges in a query graph.
pub const MAX_QUERY_EDGES: usize = 64;

/// A symmetry-breaking partial order over query vertices.
///
/// Each pair `(a, b)` requires `ID(f(a)) < ID(f(b))` for a match `f`,
/// eliminating duplicate enumeration caused by automorphisms (§2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialOrder {
    constraints: Vec<(QueryVertex, QueryVertex)>,
}

impl PartialOrder {
    /// An empty order (no constraints).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a partial order from explicit `(smaller, larger)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (QueryVertex, QueryVertex)>>(pairs: I) -> Self {
        PartialOrder {
            constraints: pairs.into_iter().collect(),
        }
    }

    /// The `(smaller, larger)` constraint pairs.
    pub fn constraints(&self) -> &[(QueryVertex, QueryVertex)] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Checks a complete assignment `f` (indexed by query vertex) against
    /// every constraint.
    pub fn check_full(&self, assignment: &[u32]) -> bool {
        self.constraints
            .iter()
            .all(|&(a, b)| assignment[a as usize] < assignment[b as usize])
    }

    /// Checks only the constraints whose two endpoints are both `< bound`
    /// (i.e. already assigned when vertices are matched in id order).
    pub fn check_prefix(&self, assignment: &[u32], bound: QueryVertex) -> bool {
        self.constraints
            .iter()
            .filter(|&&(a, b)| a < bound && b < bound)
            .all(|&(a, b)| assignment[a as usize] < assignment[b as usize])
    }

    /// Constraints that involve `v` and some vertex in `assigned`.
    pub fn constraints_on(
        &self,
        v: QueryVertex,
    ) -> impl Iterator<Item = (QueryVertex, QueryVertex)> + '_ {
        self.constraints
            .iter()
            .copied()
            .filter(move |&(a, b)| a == v || b == v)
    }
}

/// A small, connected, unlabelled, undirected query graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryGraph {
    num_vertices: usize,
    /// Edge list with `u < v` per edge, sorted.
    edges: Vec<(QueryVertex, QueryVertex)>,
    /// Adjacency bitmask per vertex: bit `j` of `adj[i]` set iff `(i, j)` is
    /// an edge.
    adj: Vec<u32>,
    /// Symmetry-breaking partial order (may be empty).
    order: PartialOrder,
    /// Human-readable name (for reports); empty if anonymous.
    name: String,
}

impl QueryGraph {
    /// Creates a query graph with `num_vertices` vertices and the given
    /// undirected edges. Duplicate edges and self loops are rejected.
    ///
    /// # Panics
    /// Panics if `num_vertices` exceeds [`MAX_QUERY_VERTICES`], an edge is a
    /// self loop, is duplicated, or references an out-of-range vertex.
    pub fn new<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (QueryVertex, QueryVertex)>,
    {
        assert!(
            num_vertices <= MAX_QUERY_VERTICES,
            "query graphs are limited to {MAX_QUERY_VERTICES} vertices"
        );
        let mut adj = vec![0u32; num_vertices];
        let mut list: Vec<(QueryVertex, QueryVertex)> = Vec::new();
        for (u, v) in edges {
            assert!(u != v, "self loop on query vertex {u}");
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "query edge ({u}, {v}) out of range"
            );
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            assert!(
                adj[a as usize] & (1 << b) == 0,
                "duplicate query edge ({a}, {b})"
            );
            adj[a as usize] |= 1 << b;
            adj[b as usize] |= 1 << a;
            list.push((a, b));
        }
        list.sort_unstable();
        assert!(list.len() <= MAX_QUERY_EDGES);
        QueryGraph {
            num_vertices,
            edges: list,
            adj,
            order: PartialOrder::empty(),
            name: String::new(),
        }
    }

    /// Attaches a symmetry-breaking partial order.
    pub fn with_order(mut self, order: PartialOrder) -> Self {
        self.order = order;
        self
    }

    /// Attaches a human-readable name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The query's name ("" if anonymous).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symmetry-breaking partial order.
    pub fn order(&self) -> &PartialOrder {
        &self.order
    }

    /// Number of query vertices `|V_q|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of query edges `|E_q|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The sorted edge list (each edge once, `u < v`).
    #[inline]
    pub fn edges(&self) -> &[(QueryVertex, QueryVertex)] {
        &self.edges
    }

    /// Adjacency bitmask of `v`.
    #[inline]
    pub fn adj_mask(&self, v: QueryVertex) -> u32 {
        self.adj[v as usize]
    }

    /// Neighbours of `v` in ascending order.
    pub fn neighbours(&self, v: QueryVertex) -> impl Iterator<Item = QueryVertex> + '_ {
        let mask = self.adj[v as usize];
        (0..self.num_vertices as u8).filter(move |&u| mask & (1 << u) != 0)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: QueryVertex) -> usize {
        self.adj[v as usize].count_ones() as usize
    }

    /// Returns `true` if `(u, v)` is a query edge.
    #[inline]
    pub fn has_edge(&self, u: QueryVertex, v: QueryVertex) -> bool {
        u != v && self.adj[u as usize] & (1 << v) != 0
    }

    /// Iterates all query vertices.
    pub fn vertices(&self) -> impl Iterator<Item = QueryVertex> {
        0..self.num_vertices as QueryVertex
    }

    /// Returns `true` if the query graph is connected (the empty graph is
    /// considered connected).
    pub fn is_connected(&self) -> bool {
        if self.num_vertices == 0 {
            return true;
        }
        let mut visited = 1u32;
        let mut frontier = 1u32;
        while frontier != 0 {
            let mut next = 0u32;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v] & !visited;
            }
            visited |= next;
            frontier = next;
        }
        visited.count_ones() as usize == self.num_vertices
    }

    /// If this query is a star (a tree of depth 1, §2), returns the root and
    /// the leaves. A single edge is a star rooted at its lower-id endpoint.
    pub fn as_star(&self) -> Option<(QueryVertex, Vec<QueryVertex>)> {
        if self.num_vertices < 2 || self.num_edges() != self.num_vertices - 1 {
            return None;
        }
        // A star has one vertex of degree n - 1 and all others of degree 1.
        let root = self
            .vertices()
            .find(|&v| self.degree(v) == self.num_vertices - 1)?;
        if self.vertices().all(|v| v == root || self.degree(v) == 1) {
            let leaves = self.vertices().filter(|&v| v != root).collect();
            Some((root, leaves))
        } else {
            None
        }
    }

    /// Returns `true` if this query is a clique (complete graph).
    pub fn is_clique(&self) -> bool {
        let n = self.num_vertices;
        n >= 2 && self.num_edges() == n * (n - 1) / 2
    }

    /// Returns `true` if this query is a single edge.
    pub fn is_edge(&self) -> bool {
        self.num_vertices == 2 && self.num_edges() == 1
    }

    /// Query vertices whose matches must be adjacent to a match of `v` — the
    /// *backward neighbours* smaller than `v`, used by the wco-join
    /// intersection (Equation 2).
    pub fn backward_neighbours(&self, v: QueryVertex) -> Vec<QueryVertex> {
        self.neighbours(v).filter(|&u| u < v).collect()
    }

    /// Produces a vertex order in which every vertex (after the first) has at
    /// least one earlier neighbour, i.e. a connected matching order. Prefers
    /// higher-degree vertices first (a common heuristic).
    pub fn connected_order(&self) -> Vec<QueryVertex> {
        if self.num_vertices == 0 {
            return Vec::new();
        }
        let start = self
            .vertices()
            .max_by_key(|&v| self.degree(v))
            .expect("non-empty query");
        let mut order = vec![start];
        let mut in_order = 1u32 << start;
        while order.len() < self.num_vertices {
            // Next: most constrained vertex (most already-ordered neighbours),
            // then highest degree.
            let next = self
                .vertices()
                .filter(|&v| in_order & (1 << v) == 0)
                .max_by_key(|&v| {
                    (
                        (self.adj[v as usize] & in_order).count_ones(),
                        self.degree(v),
                    )
                })
                .expect("vertex remains");
            order.push(next);
            in_order |= 1 << next;
        }
        order
    }

    /// Relabels the query graph so that vertices appear in `order`
    /// (i.e. `order[i]` becomes vertex `i`). The partial order and name are
    /// relabelled accordingly.
    pub fn relabel(&self, order: &[QueryVertex]) -> QueryGraph {
        assert_eq!(order.len(), self.num_vertices);
        let mut inverse = vec![0 as QueryVertex; self.num_vertices];
        for (new, &old) in order.iter().enumerate() {
            inverse[old as usize] = new as QueryVertex;
        }
        let edges = self
            .edges
            .iter()
            .map(|&(u, v)| (inverse[u as usize], inverse[v as usize]));
        let constraints = self
            .order
            .constraints()
            .iter()
            .map(|&(a, b)| (inverse[a as usize], inverse[b as usize]));
        QueryGraph::new(self.num_vertices, edges)
            .with_order(PartialOrder::from_pairs(constraints))
            .with_name(self.name.clone())
    }

    /// Checks whether `mapping` (a permutation of query vertices) is an
    /// automorphism of this query graph.
    pub fn is_automorphism(&self, mapping: &[QueryVertex]) -> bool {
        if mapping.len() != self.num_vertices {
            return false;
        }
        self.edges
            .iter()
            .all(|&(u, v)| self.has_edge(mapping[u as usize], mapping[v as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> QueryGraph {
        QueryGraph::new(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_accessors() {
        let q = square();
        assert_eq!(q.num_vertices(), 4);
        assert_eq!(q.num_edges(), 4);
        assert!(q.has_edge(0, 1));
        assert!(!q.has_edge(0, 2));
        assert_eq!(q.degree(0), 2);
        assert_eq!(q.neighbours(0).collect::<Vec<_>>(), vec![1, 3]);
        assert!(q.is_connected());
        assert!(!q.is_clique());
        assert!(q.as_star().is_none());
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        QueryGraph::new(3, [(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_rejected() {
        QueryGraph::new(3, [(0, 1), (1, 0)]);
    }

    #[test]
    fn star_detection() {
        let star = QueryGraph::new(4, [(0, 1), (0, 2), (0, 3)]);
        let (root, leaves) = star.as_star().unwrap();
        assert_eq!(root, 0);
        assert_eq!(leaves, vec![1, 2, 3]);
        let edge = QueryGraph::new(2, [(0, 1)]);
        assert!(edge.as_star().is_some());
        assert!(edge.is_edge());
        let path3 = QueryGraph::new(3, [(0, 1), (1, 2)]);
        let (root, _) = path3.as_star().unwrap();
        assert_eq!(root, 1);
        let path4 = QueryGraph::new(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(path4.as_star().is_none());
    }

    #[test]
    fn clique_detection() {
        let k4 = QueryGraph::new(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(k4.is_clique());
        assert!(!square().is_clique());
    }

    #[test]
    fn connectivity() {
        let disconnected = QueryGraph::new(4, [(0, 1), (2, 3)]);
        assert!(!disconnected.is_connected());
        assert!(square().is_connected());
    }

    #[test]
    fn connected_order_is_connected() {
        let q = QueryGraph::new(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let order = q.connected_order();
        assert_eq!(order.len(), 5);
        let mut seen = 1u32 << order[0];
        for &v in &order[1..] {
            assert!(
                q.adj_mask(v) & seen != 0,
                "vertex {v} not connected to prefix"
            );
            seen |= 1 << v;
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let q = square().with_order(PartialOrder::from_pairs([(0, 2)]));
        let relabelled = q.relabel(&[2, 3, 0, 1]);
        assert_eq!(relabelled.num_edges(), 4);
        assert!(relabelled.is_connected());
        assert_eq!(relabelled.order().len(), 1);
    }

    #[test]
    fn partial_order_checks() {
        let po = PartialOrder::from_pairs([(0, 1), (1, 2)]);
        assert!(po.check_full(&[1, 5, 9]));
        assert!(!po.check_full(&[5, 1, 9]));
        assert!(po.check_prefix(&[1, 5, 0], 2));
        assert!(!po.check_prefix(&[5, 1, 0], 2));
        assert_eq!(po.constraints_on(1).count(), 2);
        assert!(PartialOrder::empty().is_empty());
    }

    #[test]
    fn backward_neighbours() {
        let q = QueryGraph::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(q.backward_neighbours(3), vec![1, 2]);
        assert_eq!(q.backward_neighbours(0), Vec::<u8>::new());
    }

    #[test]
    fn automorphism_check() {
        let q = square();
        assert!(q.is_automorphism(&[1, 2, 3, 0]));
        assert!(q.is_automorphism(&[0, 3, 2, 1]));
        assert!(!q.is_automorphism(&[0, 2, 1, 3]));
    }
}
