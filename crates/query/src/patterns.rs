//! The benchmark query set.
//!
//! The paper evaluates on eight queries q1–q8 (Figure 4). The figure does
//! not survive text extraction exactly, so shapes are reconstructed from the
//! constraints listed under each query and from textual hints (q1 is the
//! square used in Table 1, q3 is a clique, q7 is best answered by joining a
//! 3-path with a 2-path, the Fig. 1d example plans a 5-path). See DESIGN.md
//! §6 for the full mapping. In addition this module provides parametric
//! building blocks (paths, cycles, stars, cliques) used by tests and by the
//! application examples (§6 of the paper).

use crate::query::{PartialOrder, QueryGraph, QueryVertex};
use crate::symmetry::symmetry_breaking_order;

/// A named query pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// 3-clique.
    Triangle,
    /// 4-cycle — the paper's q1 (the "square" of Table 1).
    Square,
    /// 4-cycle plus one chord ("diamond") — q2.
    ChordalSquare,
    /// 4-clique — q3.
    FourClique,
    /// 4-cycle with a triangle on top (5 vertices) — q4.
    House,
    /// 5-cycle — q5.
    FiveCycle,
    /// Two triangles joined by a perfect matching (triangular prism) — q6.
    Prism,
    /// Simple path on `n` vertices (`n - 1` edges). `Path(6)` is q7.
    Path(usize),
    /// Cycle on `n` vertices.
    Cycle(usize),
    /// Star with `n` leaves (a tree of depth 1).
    Star(usize),
    /// Clique on `n` vertices.
    Clique(usize),
    /// 5-clique, listed separately because it is a common benchmark query.
    FiveClique,
    /// Triangle with three extra leaves attached to one of its vertices — q8.
    TailedTriangleStar,
}

impl Pattern {
    /// The paper's queries q1–q8 in order.
    pub const PAPER_QUERIES: [Pattern; 8] = [
        Pattern::Square,
        Pattern::ChordalSquare,
        Pattern::FourClique,
        Pattern::House,
        Pattern::FiveCycle,
        Pattern::Prism,
        Pattern::Path(6),
        Pattern::TailedTriangleStar,
    ];

    /// Returns the paper query `qi` for `i` in `1..=8`.
    pub fn paper(i: usize) -> Option<Pattern> {
        Pattern::PAPER_QUERIES.get(i.checked_sub(1)?).copied()
    }

    /// A short name used in reports ("q1".."q8" for paper queries).
    pub fn name(&self) -> String {
        match self {
            Pattern::Triangle => "triangle".to_string(),
            Pattern::Square => "q1-square".to_string(),
            Pattern::ChordalSquare => "q2-chordal-square".to_string(),
            Pattern::FourClique => "q3-4clique".to_string(),
            Pattern::House => "q4-house".to_string(),
            Pattern::FiveCycle => "q5-5cycle".to_string(),
            Pattern::Prism => "q6-prism".to_string(),
            Pattern::Path(n) => {
                if *n == 6 {
                    "q7-6path".to_string()
                } else {
                    format!("path-{n}")
                }
            }
            Pattern::Cycle(n) => format!("cycle-{n}"),
            Pattern::Star(n) => format!("star-{n}"),
            Pattern::Clique(n) => format!("clique-{n}"),
            Pattern::FiveClique => "5clique".to_string(),
            Pattern::TailedTriangleStar => "q8-tailed-triangle-star".to_string(),
        }
    }

    /// Builds the query graph *without* a symmetry-breaking order.
    pub fn query_graph_unordered(&self) -> QueryGraph {
        let (n, edges): (usize, Vec<(QueryVertex, QueryVertex)>) = match self {
            Pattern::Triangle => (3, vec![(0, 1), (1, 2), (0, 2)]),
            Pattern::Square => (4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
            Pattern::ChordalSquare => (4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
            Pattern::FourClique => (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            Pattern::House => (5, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]),
            Pattern::FiveCycle => (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            Pattern::Prism => (
                6,
                vec![
                    (0, 1),
                    (1, 2),
                    (0, 2),
                    (3, 4),
                    (4, 5),
                    (3, 5),
                    (0, 3),
                    (1, 4),
                    (2, 5),
                ],
            ),
            Pattern::Path(n) => {
                assert!(*n >= 2, "a path needs at least 2 vertices");
                (
                    *n,
                    (0..*n - 1)
                        .map(|i| (i as QueryVertex, (i + 1) as QueryVertex))
                        .collect(),
                )
            }
            Pattern::Cycle(n) => {
                assert!(*n >= 3, "a cycle needs at least 3 vertices");
                (
                    *n,
                    (0..*n)
                        .map(|i| (i as QueryVertex, ((i + 1) % n) as QueryVertex))
                        .collect(),
                )
            }
            Pattern::Star(leaves) => {
                assert!(*leaves >= 1);
                (
                    leaves + 1,
                    (1..=*leaves)
                        .map(|i| (0 as QueryVertex, i as QueryVertex))
                        .collect(),
                )
            }
            Pattern::Clique(n) => {
                assert!(*n >= 2);
                let mut edges = Vec::new();
                for u in 0..*n {
                    for v in (u + 1)..*n {
                        edges.push((u as QueryVertex, v as QueryVertex));
                    }
                }
                (*n, edges)
            }
            Pattern::FiveClique => return Pattern::Clique(5).query_graph_unordered(),
            Pattern::TailedTriangleStar => {
                (6, vec![(0, 1), (1, 2), (0, 2), (1, 3), (1, 4), (1, 5)])
            }
        };
        QueryGraph::new(n, edges).with_name(self.name())
    }

    /// Builds the query graph with an automatically derived
    /// symmetry-breaking partial order attached.
    pub fn query_graph(&self) -> QueryGraph {
        let q = self.query_graph_unordered();
        let order = symmetry_breaking_order(&q);
        q.with_order(order)
    }
}

/// Convenience constructors mirroring the paper's naming.
impl QueryGraph {
    /// q1: the square (4-cycle).
    pub fn square() -> QueryGraph {
        Pattern::Square.query_graph()
    }

    /// q2: the chordal square (diamond).
    pub fn chordal_square() -> QueryGraph {
        Pattern::ChordalSquare.query_graph()
    }

    /// q3: the 4-clique.
    pub fn four_clique() -> QueryGraph {
        Pattern::FourClique.query_graph()
    }

    /// The triangle, the smallest non-trivial query.
    pub fn triangle() -> QueryGraph {
        Pattern::Triangle.query_graph()
    }

    /// A custom query with an automatically derived symmetry-breaking order.
    pub fn with_auto_order(self) -> QueryGraph {
        let order = symmetry_breaking_order(&self);
        self.with_order(order)
    }
}

/// Parses a pattern name as used on the experiment command line
/// (`q1`–`q8`, `triangle`, `path-N`, `cycle-N`, `clique-N`, `star-N`).
pub fn parse_pattern(s: &str) -> Option<Pattern> {
    let s = s.trim().to_ascii_lowercase();
    if let Some(rest) = s.strip_prefix('q') {
        if let Ok(i) = rest.parse::<usize>() {
            return Pattern::paper(i);
        }
    }
    if s == "triangle" {
        return Some(Pattern::Triangle);
    }
    if s == "5clique" {
        return Some(Pattern::FiveClique);
    }
    for (prefix, f) in [
        ("path-", Pattern::Path as fn(usize) -> Pattern),
        ("cycle-", Pattern::Cycle as fn(usize) -> Pattern),
        ("star-", Pattern::Star as fn(usize) -> Pattern),
        ("clique-", Pattern::Clique as fn(usize) -> Pattern),
    ] {
        if let Some(rest) = s.strip_prefix(prefix) {
            if let Ok(n) = rest.parse::<usize>() {
                return Some(f(n));
            }
        }
    }
    None
}

/// The symmetry-breaking partial orders the paper lists under Figure 4, for
/// the queries where our reconstruction matches the paper's vertex
/// numbering. Exposed for documentation and cross-checking; the engine uses
/// the automatically derived orders.
pub fn paper_listed_order(i: usize) -> Option<PartialOrder> {
    // Paper vertices are 1-based; ours are 0-based.
    let pairs: Vec<(QueryVertex, QueryVertex)> = match i {
        1 => vec![(0, 1), (0, 2), (0, 3), (1, 3)],
        2 => vec![(0, 2), (1, 3)],
        3 => vec![(0, 1), (1, 2), (2, 3)],
        4 => vec![(1, 4)],
        5 => vec![(0, 3)],
        6 => vec![(1, 4), (2, 3)],
        7 => vec![(0, 5)],
        8 => vec![(1, 2), (1, 4), (1, 5)],
        _ => return None,
    };
    Some(PartialOrder::from_pairs(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::automorphism_count;

    #[test]
    fn paper_queries_all_build() {
        for (i, pattern) in Pattern::PAPER_QUERIES.iter().enumerate() {
            let q = pattern.query_graph();
            assert!(q.is_connected(), "q{} disconnected", i + 1);
            assert!(!q.order().is_empty() || automorphism_count(&q) == 1);
        }
    }

    #[test]
    fn paper_lookup() {
        assert_eq!(Pattern::paper(1), Some(Pattern::Square));
        assert_eq!(Pattern::paper(3), Some(Pattern::FourClique));
        assert_eq!(Pattern::paper(7), Some(Pattern::Path(6)));
        assert_eq!(Pattern::paper(9), None);
        assert_eq!(Pattern::paper(0), None);
    }

    #[test]
    fn q3_is_a_clique() {
        assert!(Pattern::paper(3).unwrap().query_graph().is_clique());
    }

    #[test]
    fn parametric_patterns() {
        let p = Pattern::Path(5).query_graph();
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.num_edges(), 4);
        let c = Pattern::Cycle(6).query_graph();
        assert_eq!(c.num_edges(), 6);
        let s = Pattern::Star(4).query_graph();
        assert_eq!(s.as_star().unwrap().1.len(), 4);
        let k = Pattern::Clique(5).query_graph();
        assert!(k.is_clique());
    }

    #[test]
    fn parse_pattern_names() {
        assert_eq!(parse_pattern("q1"), Some(Pattern::Square));
        assert_eq!(parse_pattern("Q3"), Some(Pattern::FourClique));
        assert_eq!(parse_pattern("triangle"), Some(Pattern::Triangle));
        assert_eq!(parse_pattern("path-4"), Some(Pattern::Path(4)));
        assert_eq!(parse_pattern("clique-5"), Some(Pattern::Clique(5)));
        assert_eq!(parse_pattern("bogus"), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Pattern::Square.name(), "q1-square");
        assert_eq!(Pattern::Path(6).name(), "q7-6path");
        assert_eq!(Pattern::Path(4).name(), "path-4");
    }

    #[test]
    fn paper_orders_available_for_all_eight() {
        for i in 1..=8 {
            assert!(paper_listed_order(i).is_some());
        }
        assert!(paper_listed_order(9).is_none());
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(QueryGraph::square().num_edges(), 4);
        assert_eq!(QueryGraph::triangle().num_edges(), 3);
        assert!(QueryGraph::four_clique().is_clique());
        assert_eq!(QueryGraph::chordal_square().num_edges(), 5);
    }
}
