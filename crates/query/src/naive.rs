//! A sequential reference enumerator.
//!
//! This is the Ullmann-style backtracking algorithm the paper attributes to
//! BENU's per-machine program (§3.1, [82]): match query vertices one at a
//! time along a connected order, maintaining the candidate set of the next
//! vertex as the intersection of the neighbourhoods of its already-matched
//! neighbours. It is intentionally simple and single-threaded; every other
//! engine in the workspace is validated against it.

use huge_graph::graph::intersect_many;
use huge_graph::{Graph, VertexId};

use crate::query::{PartialOrder, QueryGraph, QueryVertex};

/// Result-consumption mode for the reference enumerator.
pub enum NaiveSink<'a> {
    /// Only count matches.
    Count,
    /// Invoke a callback for every match (the slice is ordered by query
    /// vertex id).
    Collect(&'a mut dyn FnMut(&[VertexId])),
}

/// Enumerates all matches of `query` in `graph`, respecting the query's
/// symmetry-breaking partial order, and returns the number of matches.
pub fn enumerate(graph: &Graph, query: &QueryGraph) -> u64 {
    enumerate_with(graph, query, query.order().clone(), &mut NaiveSink::Count)
}

/// Enumerates all *embeddings* (no symmetry breaking): every automorphic
/// image is counted separately.
pub fn enumerate_embeddings(graph: &Graph, query: &QueryGraph) -> u64 {
    enumerate_with(graph, query, PartialOrder::empty(), &mut NaiveSink::Count)
}

/// Enumerates matches and passes each to `sink`.
pub fn enumerate_with(
    graph: &Graph,
    query: &QueryGraph,
    order: PartialOrder,
    sink: &mut NaiveSink<'_>,
) -> u64 {
    assert!(query.is_connected(), "query must be connected");
    if query.num_vertices() == 0 || graph.is_empty() {
        return 0;
    }
    let matching_order = query.connected_order();
    let mut ctx = Context {
        graph,
        query,
        order,
        matching_order,
        assignment: vec![u32::MAX; query.num_vertices()],
        count: 0,
    };
    // Position 0: iterate all vertices of the data graph.
    let first = ctx.matching_order[0];
    for v in graph.vertices() {
        ctx.assignment[first as usize] = v;
        ctx.extend(1, sink);
    }
    ctx.count
}

struct Context<'g, 'q> {
    graph: &'g Graph,
    query: &'q QueryGraph,
    order: PartialOrder,
    matching_order: Vec<QueryVertex>,
    /// assignment[query vertex] = data vertex (u32::MAX = unassigned).
    assignment: Vec<u32>,
    count: u64,
}

impl<'g, 'q> Context<'g, 'q> {
    fn extend(&mut self, depth: usize, sink: &mut NaiveSink<'_>) {
        if depth == self.matching_order.len() {
            if self.order.check_full(&self.assignment) {
                self.count += 1;
                if let NaiveSink::Collect(f) = sink {
                    f(&self.assignment);
                }
            }
            return;
        }
        let qv = self.matching_order[depth];
        // Candidate set: intersection of neighbourhoods of already matched
        // query neighbours (Equation 2 of the paper).
        let matched_neighbours: Vec<u32> = self
            .query
            .neighbours(qv)
            .filter_map(|u| {
                let m = self.assignment[u as usize];
                (m != u32::MAX).then_some(m)
            })
            .collect();
        debug_assert!(
            !matched_neighbours.is_empty(),
            "matching order must keep the query connected"
        );
        let lists: Vec<&[VertexId]> = matched_neighbours
            .iter()
            .map(|&u| self.graph.neighbours(u))
            .collect();
        let candidates = intersect_many(lists);
        for cand in candidates {
            // Injectivity.
            if self.assignment.contains(&cand) {
                continue;
            }
            self.assignment[qv as usize] = cand;
            // Early pruning of order constraints between assigned vertices.
            if self.partial_order_feasible(qv) {
                self.extend(depth + 1, sink);
            }
            self.assignment[qv as usize] = u32::MAX;
        }
    }

    /// Checks only the constraints involving `qv` whose other endpoint is
    /// already assigned.
    fn partial_order_feasible(&self, qv: QueryVertex) -> bool {
        for (a, b) in self.order.constraints_on(qv) {
            let fa = self.assignment[a as usize];
            let fb = self.assignment[b as usize];
            if fa != u32::MAX && fb != u32::MAX && fa >= fb {
                return false;
            }
        }
        true
    }
}

/// Counts matches of a pattern by brute force over all `n`-subsets when the
/// graph is tiny. Used only by tests as an independent cross-check of
/// [`enumerate`]; complexity is `O(|V|^|V_q|)`.
pub fn brute_force_count(graph: &Graph, query: &QueryGraph) -> u64 {
    let n = graph.num_vertices();
    let k = query.num_vertices();
    if n == 0 || k == 0 {
        return 0;
    }
    let mut count = 0u64;
    let mut selection = vec![0usize; k];
    loop {
        // Check injectivity.
        let mut ok = true;
        'outer: for i in 0..k {
            for j in (i + 1)..k {
                if selection[i] == selection[j] {
                    ok = false;
                    break 'outer;
                }
            }
        }
        if ok {
            let mapping: Vec<u32> = selection.iter().map(|&x| x as u32).collect();
            let edges_ok = query
                .edges()
                .iter()
                .all(|&(a, b)| graph.has_edge(mapping[a as usize], mapping[b as usize]));
            if edges_ok && query.order().check_full(&mapping) {
                count += 1;
            }
        }
        // Next tuple in lexicographic order.
        let mut pos = k;
        loop {
            if pos == 0 {
                return count;
            }
            pos -= 1;
            selection[pos] += 1;
            if selection[pos] < n {
                break;
            }
            selection[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use huge_graph::gen;

    #[test]
    fn triangle_count_matches_graph_routine() {
        let g = gen::erdos_renyi(120, 900, 5);
        let q = Pattern::Triangle.query_graph();
        assert_eq!(enumerate(&g, &q), g.count_triangles());
    }

    #[test]
    fn embeddings_are_matches_times_automorphisms() {
        let g = gen::erdos_renyi(60, 300, 9);
        for pattern in [Pattern::Triangle, Pattern::Square, Pattern::FourClique] {
            let q = pattern.query_graph();
            let matches = enumerate(&g, &q);
            let embeddings = enumerate_embeddings(&g, &q);
            let autos = crate::symmetry::automorphism_count(&q);
            assert_eq!(embeddings, matches * autos, "{pattern:?}");
        }
    }

    #[test]
    fn complete_graph_counts() {
        // K6: number of 4-cliques = C(6,4) = 15; squares = 3 * C(6,4) = 45
        // (each 4-subset of a clique contains 3 distinct 4-cycles).
        let g = gen::complete(6);
        assert_eq!(enumerate(&g, &Pattern::FourClique.query_graph()), 15);
        assert_eq!(enumerate(&g, &Pattern::Square.query_graph()), 45);
        // Triangles: C(6,3) = 20.
        assert_eq!(enumerate(&g, &Pattern::Triangle.query_graph()), 20);
    }

    #[test]
    fn cycle_graph_counts() {
        // A 6-cycle contains exactly one 6-cycle match and no squares.
        let g = gen::cycle(6);
        assert_eq!(enumerate(&g, &Pattern::Cycle(6).query_graph()), 1);
        assert_eq!(enumerate(&g, &Pattern::Square.query_graph()), 0);
        // Paths of 4 vertices in a 6-cycle: 6 (one starting at each vertex,
        // counted once due to symmetry breaking).
        assert_eq!(enumerate(&g, &Pattern::Path(4).query_graph()), 6);
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(12, 28, seed);
            for pattern in [
                Pattern::Triangle,
                Pattern::Square,
                Pattern::ChordalSquare,
                Pattern::FourClique,
                Pattern::Star(3),
            ] {
                let q = pattern.query_graph();
                assert_eq!(
                    enumerate(&g, &q),
                    brute_force_count(&g, &q),
                    "seed {seed} pattern {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn collect_sink_receives_every_match() {
        let g = gen::complete(5);
        let q = Pattern::Triangle.query_graph();
        let mut collected = Vec::new();
        let mut cb = |m: &[VertexId]| collected.push(m.to_vec());
        let count = enumerate_with(&g, &q, q.order().clone(), &mut NaiveSink::Collect(&mut cb));
        assert_eq!(count, 10);
        assert_eq!(collected.len(), 10);
        // All collected matches are distinct vertex sets.
        let mut sets: Vec<Vec<u32>> = collected
            .iter()
            .map(|m| {
                let mut s = m.clone();
                s.sort_unstable();
                s
            })
            .collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 10);
    }

    #[test]
    fn empty_graph_has_no_matches() {
        let g = Graph::default();
        assert_eq!(enumerate(&g, &Pattern::Triangle.query_graph()), 0);
    }

    #[test]
    fn star_counts_on_star_graph() {
        // A star data graph with 5 leaves: number of 3-star matches rooted at
        // the hub = C(5,3) = 10.
        let g = Graph::from_edges([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert_eq!(enumerate(&g, &Pattern::Star(3).query_graph()), 10);
    }
}
