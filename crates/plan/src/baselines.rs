//! Logical plans of prior systems expressed in the join-based framework
//! (Table 2 of the paper).
//!
//! The paper's Remark 3.2: existing works can be plugged into HUGE via their
//! *logical* plans; HUGE then configures the physical settings (Equation 3)
//! and executes the plan on its own engine, yielding the "HUGE-X" variants
//! of Exp-1. This module builds those logical plans:
//!
//! | system    | join unit       | join order | native physical setting    |
//! |-----------|-----------------|------------|----------------------------|
//! | StarJoin  | star            | left-deep  | hash join, pushing         |
//! | SEED      | star (+clique)  | bushy      | hash join, pushing         |
//! | BiGJoin   | star (limited)  | left-deep  | wco join, pushing          |
//! | BENU      | star (limited)  | left-deep  | wco join, pulling          |
//! | RADS      | star            | left-deep  | hash join, pulling         |
//!
//! plus the computation-only hybrid plans of EmptyHeaded / GraphFlow used in
//! Exp-9.

use huge_query::{QueryGraph, QueryVertex};

use crate::cost::{CardinalityEstimator, CostModel};
use crate::logical::{ExecutionPlan, JoinNode, JoinTree, PlanError};
use crate::optimizer::{Optimizer, OptimizerOptions};
use crate::physical::PhysicalSetting;
use crate::subquery::SubQuery;

/// Which baseline system's plan to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineSystem {
    /// StarJoin: left-deep star joins, pushing hash join.
    StarJoin,
    /// SEED: bushy star joins, pushing hash join.
    Seed,
    /// BiGJoin: left-deep worst-case-optimal extensions, pushing.
    BigJoin,
    /// BENU: the same wco plan, executed by pulling from an external store.
    Benu,
    /// RADS: left-deep star-expand-and-verify, pulling hash join.
    Rads,
}

/// Builds the *native* plan of a baseline system: its logical plan with its
/// own physical settings. Use [`plug_into_huge`] to re-configure the same
/// logical plan with HUGE's Equation 3 (the "HUGE-X" variants).
pub fn native_plan(system: BaselineSystem, q: &QueryGraph) -> Result<ExecutionPlan, PlanError> {
    let tree = match system {
        BaselineSystem::BigJoin => wco_left_deep_tree(q, PhysicalSetting::WCO_PUSHING)?,
        BaselineSystem::Benu => wco_left_deep_tree(q, PhysicalSetting::WCO_PULLING)?,
        BaselineSystem::StarJoin => star_left_deep_tree(q, PhysicalSetting::HASH_PUSHING)?,
        BaselineSystem::Seed => star_bushy_tree(q, PhysicalSetting::HASH_PUSHING)?,
        BaselineSystem::Rads => rads_tree(q)?,
    };
    let plan = ExecutionPlan {
        query: q.clone(),
        tree,
        estimated_cost: f64::NAN,
    };
    plan.validate()?;
    Ok(plan)
}

/// Takes a baseline's logical plan and re-configures every join's physical
/// setting by Equation 3 — the paper's "plugging existing works into HUGE"
/// (Remark 3.2, Exp-1).
pub fn plug_into_huge(system: BaselineSystem, q: &QueryGraph) -> Result<ExecutionPlan, PlanError> {
    let mut plan = native_plan(system, q)?;
    plan.tree.configure_physical(q);
    plan.validate()?;
    Ok(plan)
}

/// A computation-only hybrid plan in the style of EmptyHeaded / GraphFlow:
/// the same DP as HUGE's optimiser, but the cost model ignores communication
/// (those systems target a single machine). Used by Exp-9.
pub fn hybrid_computation_only_plan(
    q: &QueryGraph,
    estimator: &dyn CardinalityEstimator,
    cost_model: CostModel,
) -> Result<ExecutionPlan, PlanError> {
    Optimizer::new(estimator, cost_model)
        .with_options(OptimizerOptions {
            computation_only: true,
            ..Default::default()
        })
        .optimize(q)
}

/// A pure worst-case-optimal plan (BiGJoin's logical plan) with physical
/// settings configured by Equation 3 — the paper's HUGE-WCO.
pub fn huge_wco_plan(q: &QueryGraph) -> Result<ExecutionPlan, PlanError> {
    plug_into_huge(BaselineSystem::BigJoin, q)
}

// ---------------------------------------------------------------------------
// Plan constructors
// ---------------------------------------------------------------------------

/// BiGJoin / BENU: match one vertex at a time along a connected order; the
/// i-th step is a complete star join of the induced prefix with the star
/// `(v_i; backward neighbours)` (Example 3.1).
fn wco_left_deep_tree(q: &QueryGraph, physical: PhysicalSetting) -> Result<JoinTree, PlanError> {
    let order = q.connected_order();
    if order.len() < 2 {
        return Err(PlanError::NoPlanFound);
    }
    // The first two vertices must be adjacent (connected order guarantees
    // the second has an earlier neighbour, which can only be the first).
    let mut node = JoinNode::Unit(SubQuery::star(q, order[0], &[order[1]]));
    for i in 2..order.len() {
        let v = order[i];
        let backward: Vec<QueryVertex> = order[..i]
            .iter()
            .copied()
            .filter(|&u| q.has_edge(u, v))
            .collect();
        debug_assert!(!backward.is_empty(), "connected order violated");
        let star = SubQuery::star(q, v, &backward);
        node = JoinNode::join_with(node, JoinNode::Unit(star), physical);
    }
    Ok(JoinTree::new(node))
}

/// Greedy star decomposition: repeatedly root a star at the vertex with the
/// most uncovered incident edges until every edge is covered.
fn star_decomposition(q: &QueryGraph) -> Vec<SubQuery> {
    let mut covered = vec![false; q.num_edges()];
    let mut stars = Vec::new();
    while covered.iter().any(|&c| !c) {
        // Vertex with the most uncovered incident edges.
        let root = q
            .vertices()
            .max_by_key(|&v| {
                q.edges()
                    .iter()
                    .enumerate()
                    .filter(|(i, &(a, b))| !covered[*i] && (a == v || b == v))
                    .count()
            })
            .expect("non-empty query");
        let picked: Vec<(usize, QueryVertex)> = q
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, &(a, b))| !covered[*i] && (a == root || b == root))
            .map(|(i, &(a, b))| (i, if a == root { b } else { a }))
            .collect();
        let leaves: Vec<QueryVertex> = picked
            .iter()
            .map(|&(i, leaf)| {
                covered[i] = true;
                leaf
            })
            .collect();
        debug_assert!(!leaves.is_empty());
        stars.push(SubQuery::star(q, root, &leaves));
    }
    stars
}

/// Orders the stars of a decomposition so that each one (after the first)
/// shares a vertex with the union of its predecessors, keeping every
/// intermediate join connected.
fn order_stars_connected(q: &QueryGraph, mut stars: Vec<SubQuery>) -> Vec<SubQuery> {
    let mut ordered: Vec<SubQuery> = Vec::with_capacity(stars.len());
    while !stars.is_empty() {
        let idx = if ordered.is_empty() {
            0
        } else {
            let acc = ordered
                .iter()
                .fold(SubQuery::empty(), |acc, s| acc.union(s));
            stars
                .iter()
                .position(|s| !acc.shared_vertices(s).is_empty())
                .unwrap_or(0)
        };
        ordered.push(stars.remove(idx));
    }
    let _ = q;
    ordered
}

/// StarJoin: left-deep hash joins over the greedy star decomposition.
fn star_left_deep_tree(q: &QueryGraph, physical: PhysicalSetting) -> Result<JoinTree, PlanError> {
    let stars = order_stars_connected(q, star_decomposition(q));
    let mut node = JoinNode::Unit(stars[0]);
    for star in &stars[1..] {
        node = JoinNode::join_with(node, JoinNode::Unit(*star), physical);
    }
    Ok(JoinTree::new(node))
}

/// SEED: bushy joins over the star decomposition. We build a balanced tree
/// over the connected star order, falling back to left-deep when a balanced
/// split would create a Cartesian (disconnected) join.
fn star_bushy_tree(q: &QueryGraph, physical: PhysicalSetting) -> Result<JoinTree, PlanError> {
    let stars = order_stars_connected(q, star_decomposition(q));
    Ok(JoinTree::new(build_bushy(q, &stars, physical)))
}

#[allow(clippy::only_used_in_recursion)]
fn build_bushy(q: &QueryGraph, stars: &[SubQuery], physical: PhysicalSetting) -> JoinNode {
    if stars.len() == 1 {
        return JoinNode::Unit(stars[0]);
    }
    // Try a balanced split; if the halves do not share a vertex, fall back to
    // splitting off the last star (left-deep step).
    let mid = stars.len() / 2;
    let (l, r) = stars.split_at(mid);
    let l_union = l.iter().fold(SubQuery::empty(), |acc, s| acc.union(s));
    let r_union = r.iter().fold(SubQuery::empty(), |acc, s| acc.union(s));
    let (l, r) = if !l.is_empty() && !r.is_empty() && !l_union.shared_vertices(&r_union).is_empty()
    {
        (l, r)
    } else {
        stars.split_at(stars.len() - 1)
    };
    let left = build_bushy(q, l, physical);
    let right = build_bushy(q, r, physical);
    JoinNode::join_with(left, right, physical)
}

/// RADS: star-expand-and-verify. Starting from the star rooted at the
/// highest-degree query vertex, each round joins a star rooted at an
/// *already matched* vertex (so the star can be enumerated locally after
/// pulling that vertex's adjacency list); remaining edges between matched
/// vertices are verified by joining single-edge "1-stars".
fn rads_tree(q: &QueryGraph) -> Result<JoinTree, PlanError> {
    let mut covered = vec![false; q.num_edges()];
    // Initial star: rooted at the max-degree vertex, covering all its edges.
    let root0 = q
        .vertices()
        .max_by_key(|&v| q.degree(v))
        .ok_or(PlanError::NoPlanFound)?;
    let leaves0: Vec<QueryVertex> = q
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, &(a, b))| a == root0 || b == root0)
        .map(|(i, &(a, b))| {
            covered[i] = true;
            if a == root0 {
                b
            } else {
                a
            }
        })
        .collect();
    let first = SubQuery::star(q, root0, &leaves0);
    let mut node = JoinNode::Unit(first);
    let mut matched = first;

    // Expansion rounds: cover edges from a matched vertex to unmatched
    // vertices first (growing the match), then verification rounds for edges
    // between two matched vertices.
    loop {
        // Prefer a star that grows at least one new vertex.
        let candidate = q
            .vertices()
            .filter(|&v| matched.contains_vertex(v))
            .filter_map(|v| {
                let grow: Vec<(usize, QueryVertex)> = q
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(i, &(a, b))| {
                        !covered[*i]
                            && (a == v || b == v)
                            && !matched.contains_vertex(if a == v { b } else { a })
                    })
                    .map(|(i, &(a, b))| (i, if a == v { b } else { a }))
                    .collect();
                (!grow.is_empty()).then_some((v, grow))
            })
            .max_by_key(|(_, grow)| grow.len());
        if let Some((root, grow)) = candidate {
            let leaves: Vec<QueryVertex> = grow.iter().map(|&(_, l)| l).collect();
            for &(i, _) in &grow {
                covered[i] = true;
            }
            let star = SubQuery::star(q, root, &leaves);
            node = JoinNode::join_with(node, JoinNode::Unit(star), PhysicalSetting::HASH_PULLING);
            matched = matched.union(&star);
            continue;
        }
        // Verification: any uncovered edge now has both endpoints matched.
        let next_uncovered = covered.iter().position(|&c| !c);
        match next_uncovered {
            None => break,
            Some(i) => {
                covered[i] = true;
                let (a, b) = q.edges()[i];
                let star = SubQuery::star(q, a, &[b]);
                node =
                    JoinNode::join_with(node, JoinNode::Unit(star), PhysicalSetting::HASH_PULLING);
                matched = matched.union(&star);
            }
        }
    }
    Ok(JoinTree::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{CommMode, JoinAlgorithm};
    use crate::translate::translate;
    use huge_query::Pattern;

    const ALL_SYSTEMS: [BaselineSystem; 5] = [
        BaselineSystem::StarJoin,
        BaselineSystem::Seed,
        BaselineSystem::BigJoin,
        BaselineSystem::Benu,
        BaselineSystem::Rads,
    ];

    #[test]
    fn every_baseline_plans_every_paper_query() {
        for system in ALL_SYSTEMS {
            for pattern in Pattern::PAPER_QUERIES {
                let q = pattern.query_graph();
                let plan = native_plan(system, &q)
                    .unwrap_or_else(|e| panic!("{system:?} {pattern:?}: {e}"));
                plan.validate().unwrap();
            }
        }
    }

    #[test]
    fn bigjoin_plan_is_left_deep_wco_pushing() {
        let q = Pattern::FourClique.query_graph();
        let plan = native_plan(BaselineSystem::BigJoin, &q).unwrap();
        assert!(plan.tree.is_left_deep());
        for node in [&plan.tree.root] {
            if let JoinNode::Join { physical, .. } = node {
                assert_eq!(physical.algorithm, JoinAlgorithm::Wco);
                assert_eq!(physical.comm, CommMode::Pushing);
            }
        }
    }

    #[test]
    fn benu_uses_pulling() {
        let q = Pattern::Square.query_graph();
        let plan = native_plan(BaselineSystem::Benu, &q).unwrap();
        if let JoinNode::Join { physical, .. } = &plan.tree.root {
            assert_eq!(physical.comm, CommMode::Pulling);
        } else {
            panic!("expected a join at the root");
        }
    }

    #[test]
    fn seed_plan_can_be_bushy() {
        // The 6-path decomposes into 3+ stars; SEED's tree should not be
        // forced left-deep when a connected balanced split exists.
        let q = Pattern::Path(6).query_graph();
        let plan = native_plan(BaselineSystem::Seed, &q).unwrap();
        plan.validate().unwrap();
        assert!(plan.tree.num_units() >= 2);
    }

    #[test]
    fn rads_plan_pulls_everywhere() {
        let q = Pattern::ChordalSquare.query_graph();
        let plan = native_plan(BaselineSystem::Rads, &q).unwrap();
        fn check(node: &JoinNode) {
            if let JoinNode::Join {
                physical,
                left,
                right,
                ..
            } = node
            {
                assert_eq!(physical.comm, CommMode::Pulling);
                assert_eq!(physical.algorithm, JoinAlgorithm::Hash);
                check(left);
                check(right);
            }
        }
        check(&plan.tree.root);
    }

    #[test]
    fn plugged_plans_translate_to_dataflows() {
        for system in ALL_SYSTEMS {
            for pattern in [Pattern::Square, Pattern::ChordalSquare, Pattern::FourClique] {
                let q = pattern.query_graph();
                let plan = plug_into_huge(system, &q).unwrap();
                let df = translate(&plan).unwrap();
                df.validate().unwrap();
            }
        }
    }

    #[test]
    fn plugging_into_huge_upgrades_bigjoin_to_pulling() {
        let q = Pattern::FourClique.query_graph();
        let plan = plug_into_huge(BaselineSystem::BigJoin, &q).unwrap();
        fn check(node: &JoinNode) {
            if let JoinNode::Join {
                physical,
                left,
                right,
                ..
            } = node
            {
                assert_eq!(*physical, PhysicalSetting::WCO_PULLING);
                check(left);
                check(right);
            }
        }
        check(&plan.tree.root);
    }

    #[test]
    fn star_decomposition_covers_all_edges() {
        for pattern in Pattern::PAPER_QUERIES {
            let q = pattern.query_graph();
            let stars = star_decomposition(&q);
            let union = stars.iter().fold(SubQuery::empty(), |acc, s| acc.union(s));
            assert!(union.is_full(&q), "{pattern:?}");
            // All pieces are stars and pairwise edge-disjoint.
            for (i, s) in stars.iter().enumerate() {
                assert!(s.is_join_unit(&q));
                for t in &stars[i + 1..] {
                    assert!(s.edge_disjoint(t));
                }
            }
        }
    }
}
