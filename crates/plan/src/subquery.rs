//! Sub-queries of a query graph.
//!
//! Within the join-based framework (§3.1), every intermediate result is the
//! match set `R(q')` of a *sub-query* `q' ⊆ q`. A sub-query is described by
//! the subset of query edges it contains (its vertices are the endpoints of
//! those edges). Because a query has at most 32 vertices and 64 edges, a
//! sub-query is a pair of bitmasks and all operations are O(1)-ish bit
//! twiddling.

use huge_query::{QueryGraph, QueryVertex};

/// A sub-query of a parent [`QueryGraph`]: a subset of its edges together
/// with the vertices those edges touch.
///
/// Sub-queries are always interpreted relative to a specific parent query;
/// mixing sub-queries of different parents is a logic error (not checked).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubQuery {
    /// Bitmask over the parent's vertices.
    verts: u32,
    /// Bitmask over the parent's edge list indices.
    edges: u64,
}

impl SubQuery {
    /// The empty sub-query.
    pub fn empty() -> Self {
        SubQuery { verts: 0, edges: 0 }
    }

    /// The sub-query containing every edge of `q`.
    pub fn full(q: &QueryGraph) -> Self {
        let edges = if q.num_edges() == 64 {
            u64::MAX
        } else {
            (1u64 << q.num_edges()) - 1
        };
        Self::from_edge_mask(q, edges)
    }

    /// Builds a sub-query from a bitmask over `q.edges()` indices.
    pub fn from_edge_mask(q: &QueryGraph, edges: u64) -> Self {
        let mut verts = 0u32;
        for (i, &(a, b)) in q.edges().iter().enumerate() {
            if edges & (1 << i) != 0 {
                verts |= 1 << a;
                verts |= 1 << b;
            }
        }
        SubQuery { verts, edges }
    }

    /// Builds a sub-query from a set of edge-list indices.
    pub fn from_edge_indices<I: IntoIterator<Item = usize>>(q: &QueryGraph, idx: I) -> Self {
        let mut mask = 0u64;
        for i in idx {
            assert!(i < q.num_edges());
            mask |= 1 << i;
        }
        Self::from_edge_mask(q, mask)
    }

    /// Builds the sub-query *induced* by a set of vertices: every parent edge
    /// with both endpoints in the set is included.
    pub fn induced_by_vertices<I: IntoIterator<Item = QueryVertex>>(q: &QueryGraph, vs: I) -> Self {
        let mut vmask = 0u32;
        for v in vs {
            vmask |= 1 << v;
        }
        let mut edges = 0u64;
        for (i, &(a, b)) in q.edges().iter().enumerate() {
            if vmask & (1 << a) != 0 && vmask & (1 << b) != 0 {
                edges |= 1 << i;
            }
        }
        // Note: vertices with no incident included edge are dropped, which is
        // what the join framework requires (a sub-query is determined by its
        // edges; isolated query vertices cannot be matched by joins).
        Self::from_edge_mask(q, edges)
    }

    /// Builds a star sub-query rooted at `root` with the given leaves, using
    /// the corresponding parent edges.
    ///
    /// # Panics
    /// Panics if some `(root, leaf)` pair is not an edge of `q`.
    pub fn star(q: &QueryGraph, root: QueryVertex, leaves: &[QueryVertex]) -> Self {
        let mut edges = 0u64;
        for &leaf in leaves {
            let idx = q
                .edges()
                .iter()
                .position(|&(a, b)| (a == root && b == leaf) || (a == leaf && b == root))
                .unwrap_or_else(|| panic!("({root}, {leaf}) is not an edge of the query"));
            edges |= 1 << idx;
        }
        Self::from_edge_mask(q, edges)
    }

    /// The raw vertex bitmask.
    #[inline]
    pub fn vertex_mask(&self) -> u32 {
        self.verts
    }

    /// The raw edge bitmask (indices into the parent's edge list).
    #[inline]
    pub fn edge_mask(&self) -> u64 {
        self.edges
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.verts.count_ones() as usize
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.count_ones() as usize
    }

    /// `true` if the sub-query has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges == 0
    }

    /// Iterates the vertices of this sub-query in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = QueryVertex> + '_ {
        let mask = self.verts;
        (0..32u8).filter(move |&v| mask & (1 << v) != 0)
    }

    /// Iterates the edges of this sub-query as `(a, b)` pairs of the parent.
    pub fn edges_of<'q>(
        &self,
        q: &'q QueryGraph,
    ) -> impl Iterator<Item = (QueryVertex, QueryVertex)> + 'q {
        let mask = self.edges;
        q.edges()
            .iter()
            .enumerate()
            .filter(move |(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
    }

    /// `true` if `v` is a vertex of this sub-query.
    #[inline]
    pub fn contains_vertex(&self, v: QueryVertex) -> bool {
        self.verts & (1 << v) != 0
    }

    /// `true` if every vertex of `other` is a vertex of `self`.
    #[inline]
    pub fn contains_vertices_of(&self, other: &SubQuery) -> bool {
        other.verts & !self.verts == 0
    }

    /// Union of two sub-queries (vertices and edges).
    #[inline]
    pub fn union(&self, other: &SubQuery) -> SubQuery {
        SubQuery {
            verts: self.verts | other.verts,
            edges: self.edges | other.edges,
        }
    }

    /// `true` if the two sub-queries share no edge (the paper's
    /// decomposition requirement `E_l ∩ E_r = ∅`).
    #[inline]
    pub fn edge_disjoint(&self, other: &SubQuery) -> bool {
        self.edges & other.edges == 0
    }

    /// Vertices shared with `other` — the join key of a two-way join.
    pub fn shared_vertices(&self, other: &SubQuery) -> Vec<QueryVertex> {
        let mask = self.verts & other.verts;
        (0..32u8).filter(|&v| mask & (1 << v) != 0).collect()
    }

    /// `true` if the sub-query is connected (single vertices are connected;
    /// the empty sub-query is not).
    pub fn is_connected(&self, q: &QueryGraph) -> bool {
        if self.edges == 0 {
            return self.verts.count_ones() <= 1 && self.verts != 0;
        }
        let start = self.verts.trailing_zeros() as QueryVertex;
        let mut visited = 1u32 << start;
        loop {
            let mut next = visited;
            for (a, b) in self.edges_of(q) {
                if visited & (1 << a) != 0 {
                    next |= 1 << b;
                }
                if visited & (1 << b) != 0 {
                    next |= 1 << a;
                }
            }
            if next == visited {
                break;
            }
            visited = next;
        }
        visited == self.verts
    }

    /// If this sub-query is a star (tree of depth 1), returns `(root,
    /// leaves)`. A single edge is a star rooted at its lower-id endpoint.
    pub fn as_star(&self, q: &QueryGraph) -> Option<(QueryVertex, Vec<QueryVertex>)> {
        let ec = self.edge_count();
        if ec == 0 || self.vertex_count() != ec + 1 {
            return None;
        }
        if ec == 1 {
            let (a, b) = self.edges_of(q).next().expect("one edge");
            return Some((a, vec![b]));
        }
        // Find the vertex incident to every edge.
        let mut incident = vec![0usize; 32];
        for (a, b) in self.edges_of(q) {
            incident[a as usize] += 1;
            incident[b as usize] += 1;
        }
        let root = (0..32u8).find(|&v| incident[v as usize] == ec)?;
        let leaves: Vec<QueryVertex> = self.vertices().filter(|&v| v != root).collect();
        // All other vertices must be incident to exactly one edge.
        if leaves.iter().all(|&l| incident[l as usize] == 1) {
            Some((root, leaves))
        } else {
            None
        }
    }

    /// `true` if the sub-query is a single edge.
    pub fn is_single_edge(&self) -> bool {
        self.edge_count() == 1
    }

    /// `true` if this sub-query is a *join unit* under HUGE's default
    /// setting (stars, §3.3: "we use stars as the join unit, as our system
    /// does not assume any index data").
    pub fn is_join_unit(&self, q: &QueryGraph) -> bool {
        self.as_star(q).is_some()
    }

    /// `true` if this sub-query covers all edges of `q`.
    pub fn is_full(&self, q: &QueryGraph) -> bool {
        self.edge_count() == q.num_edges()
    }

    /// `true` when this sub-query equals the subgraph of `q` induced by its
    /// own vertex set (needed by the BiGJoin ↔ framework equivalence,
    /// Example 3.1).
    pub fn is_induced(&self, q: &QueryGraph) -> bool {
        for (i, &(a, b)) in q.edges().iter().enumerate() {
            let both_in = self.contains_vertex(a) && self.contains_vertex(b);
            let included = self.edges & (1 << i) != 0;
            if both_in && !included {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_query::Pattern;

    fn square() -> QueryGraph {
        Pattern::Square.query_graph()
    }

    #[test]
    fn full_subquery_covers_everything() {
        let q = square();
        let full = SubQuery::full(&q);
        assert_eq!(full.edge_count(), 4);
        assert_eq!(full.vertex_count(), 4);
        assert!(full.is_connected(&q));
        assert!(full.is_full(&q));
        assert!(full.is_induced(&q));
        assert!(!full.is_join_unit(&q));
    }

    #[test]
    fn star_subquery_detection() {
        let q = Pattern::FourClique.query_graph();
        let star = SubQuery::star(&q, 0, &[1, 2, 3]);
        assert_eq!(star.edge_count(), 3);
        let (root, leaves) = star.as_star(&q).unwrap();
        assert_eq!(root, 0);
        assert_eq!(leaves, vec![1, 2, 3]);
        assert!(star.is_join_unit(&q));
        assert!(!star.is_induced(&q));
    }

    #[test]
    fn single_edge_is_star_and_unit() {
        let q = square();
        let e = SubQuery::from_edge_indices(&q, [0]);
        assert!(e.is_single_edge());
        assert!(e.is_join_unit(&q));
        let (_, leaves) = e.as_star(&q).unwrap();
        assert_eq!(leaves.len(), 1);
    }

    #[test]
    fn triangle_is_not_a_star() {
        let q = Pattern::FourClique.query_graph();
        // Edges (0,1), (0,2), (1,2) form a triangle.
        let idx: Vec<usize> = q
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a < 3 && b < 3)
            .map(|(i, _)| i)
            .collect();
        let tri = SubQuery::from_edge_indices(&q, idx);
        assert_eq!(tri.edge_count(), 3);
        assert!(tri.as_star(&q).is_none());
        assert!(!tri.is_join_unit(&q));
        assert!(tri.is_connected(&q));
    }

    #[test]
    fn union_and_disjointness() {
        let q = square();
        let a = SubQuery::from_edge_indices(&q, [0, 1]);
        let b = SubQuery::from_edge_indices(&q, [2, 3]);
        assert!(a.edge_disjoint(&b));
        let u = a.union(&b);
        assert!(u.is_full(&q));
        assert!(!a.edge_disjoint(&a));
    }

    #[test]
    fn shared_vertices_are_join_keys() {
        let q = square();
        // Edges of the square: (0,1), (0,3), (1,2), (2,3) after sorting.
        let a = SubQuery::from_edge_indices(&q, [0, 1]); // path 1-0-3
        let b = SubQuery::from_edge_indices(&q, [2, 3]); // path 1-2-3
        assert_eq!(a.shared_vertices(&b), vec![1, 3]);
    }

    #[test]
    fn connectivity() {
        let q = Pattern::Prism.query_graph();
        let disconnected = SubQuery::from_edge_indices(&q, [0, 5]);
        // Edge 0 touches the first triangle, edge 5 the second; whether this
        // is connected depends on edge ordering, so check against definition.
        let connected_by_def = {
            let verts: Vec<_> = disconnected.vertices().collect();
            // BFS over the two edges only.
            verts.len() <= 3
        };
        assert_eq!(disconnected.is_connected(&q), connected_by_def);
        assert!(SubQuery::empty().vertices().next().is_none());
        assert!(!SubQuery::empty().is_connected(&q));
    }

    #[test]
    fn induced_by_vertices() {
        let q = Pattern::FourClique.query_graph();
        let tri = SubQuery::induced_by_vertices(&q, [0, 1, 2]);
        assert_eq!(tri.edge_count(), 3);
        assert!(tri.is_induced(&q));
    }

    #[test]
    fn contains_vertices_of() {
        let q = square();
        let small = SubQuery::from_edge_indices(&q, [0]);
        let big = SubQuery::full(&q);
        assert!(big.contains_vertices_of(&small));
        assert!(!small.contains_vertices_of(&big));
    }
}
