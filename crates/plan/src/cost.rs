//! Cardinality estimation and the cost model of Algorithm 1.
//!
//! Algorithm 1 needs `|R(q')|` estimates for every connected sub-query. The
//! paper delegates this to existing estimators ([46, 51, 58]); we provide a
//! degree-moment based estimator that is exact for stars (the default join
//! unit) and falls back to an Erdős–Rényi style chain estimate for general
//! sub-queries, plus an optional sampling-based refinement.

use huge_graph::{Graph, GraphStats};
use huge_query::QueryGraph;

use crate::physical::PhysicalSetting;
use crate::subquery::SubQuery;

/// Estimates the number of matches `|R(q')|` of a sub-query.
pub trait CardinalityEstimator: Send + Sync {
    /// Estimated number of (labelled) matches of `sub` in the data graph.
    fn estimate(&self, q: &QueryGraph, sub: &SubQuery) -> f64;
}

/// Degree-moment estimator.
///
/// * For a star with `ℓ` leaves the number of labelled matches is exactly
///   `Σ_v d(v) (d(v)-1) … (d(v)-ℓ+1)`, the ℓ-th falling-factorial moment of
///   the degree sequence, which we precompute up to ℓ = 8.
/// * For other sub-queries, vertices are added along a connected order; a
///   vertex with `b` already-bound neighbours contributes a factor equal to
///   the expected size of a `b`-way neighbourhood intersection,
///   `d̄^b / n^{b-1}` (the Erdős–Rényi independence assumption), except for
///   the very first extension which uses the exact first/second moments.
#[derive(Clone, Debug)]
pub struct HybridEstimator {
    num_vertices: f64,
    num_edges: f64,
    avg_degree: f64,
    /// `moments[k]` = Σ_v d(v) (d(v)-1) … (d(v)-k+1), for k in 1..=8;
    /// index 0 holds `n`.
    falling_moments: [f64; 9],
}

impl HybridEstimator {
    /// Builds an estimator from exact degree moments of the graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices() as f64;
        let mut moments = [0.0f64; 9];
        moments[0] = n;
        for v in graph.vertices() {
            let d = graph.degree(v) as f64;
            let mut ff = 1.0;
            for (k, moment) in moments.iter_mut().enumerate().skip(1) {
                ff *= (d - (k as f64 - 1.0)).max(0.0);
                *moment += ff;
            }
        }
        HybridEstimator {
            num_vertices: n,
            num_edges: graph.num_edges() as f64,
            avg_degree: graph.avg_degree(),
            falling_moments: moments,
        }
    }

    /// Builds an estimator from summary statistics only (degree moments are
    /// approximated as `n · d̄^k`, which underestimates skewed graphs).
    pub fn from_stats(stats: &GraphStats) -> Self {
        let n = stats.num_vertices as f64;
        let mut moments = [0.0f64; 9];
        moments[0] = n;
        for (k, moment) in moments.iter_mut().enumerate().skip(1) {
            *moment = n * stats.avg_degree.powi(k as i32);
        }
        HybridEstimator {
            num_vertices: n,
            num_edges: stats.num_edges as f64,
            avg_degree: stats.avg_degree,
            falling_moments: moments,
        }
    }

    /// The falling-factorial degree moment of order `k` (clamped to the
    /// precomputed range).
    pub fn degree_moment(&self, k: usize) -> f64 {
        self.falling_moments[k.min(8)]
    }

    /// Number of data vertices.
    pub fn num_vertices(&self) -> f64 {
        self.num_vertices
    }

    /// Number of data edges.
    pub fn num_edges(&self) -> f64 {
        self.num_edges
    }

    fn chain_estimate(&self, q: &QueryGraph, sub: &SubQuery) -> f64 {
        // Connected order over the sub-query's vertices, most-constrained
        // first, mirroring `QueryGraph::connected_order` but restricted to
        // the sub-query's edges.
        let verts: Vec<u8> = sub.vertices().collect();
        if verts.is_empty() {
            return 0.0;
        }
        let deg_in_sub =
            |v: u8| -> usize { sub.edges_of(q).filter(|&(a, b)| a == v || b == v).count() };
        let start = *verts
            .iter()
            .max_by_key(|&&v| deg_in_sub(v))
            .expect("non-empty");
        let mut bound = vec![start];
        let mut est = self.num_vertices;
        while bound.len() < verts.len() {
            // Pick the unbound vertex with the most bound neighbours.
            let next = *verts
                .iter()
                .filter(|v| !bound.contains(v))
                .max_by_key(|&&v| {
                    sub.edges_of(q)
                        .filter(|&(a, b)| {
                            (a == v && bound.contains(&b)) || (b == v && bound.contains(&a))
                        })
                        .count()
                })
                .expect("vertex remains");
            let b = sub
                .edges_of(q)
                .filter(|&(x, y)| {
                    (x == next && bound.contains(&y)) || (y == next && bound.contains(&x))
                })
                .count();
            est *= self.extension_factor(b);
            bound.push(next);
        }
        est.max(1.0)
    }

    /// Expected number of candidates when extending by a vertex with `b`
    /// already-bound neighbours.
    fn extension_factor(&self, b: usize) -> f64 {
        match b {
            0 => self.num_vertices, // disconnected extension (should not happen)
            1 => {
                // Expected degree of the endpoint of a uniformly random
                // *edge* is the second moment over the first; this captures
                // the skew of power-law graphs better than d̄.
                let m1 = self.falling_moments[1].max(1.0);
                ((self.falling_moments[2] + m1) / m1).max(self.avg_degree)
            }
            b => {
                // Expected size of a b-way neighbourhood intersection under
                // edge independence: n · p^b with p = d̄ / n.
                let p = (self.avg_degree / self.num_vertices).min(1.0);
                (self.num_vertices * p.powi(b as i32)).max(1e-3)
            }
        }
    }
}

impl CardinalityEstimator for HybridEstimator {
    fn estimate(&self, q: &QueryGraph, sub: &SubQuery) -> f64 {
        if sub.is_empty() {
            return 0.0;
        }
        if let Some((_root, leaves)) = sub.as_star(q) {
            return self.degree_moment(leaves.len()).max(1.0);
        }
        self.chain_estimate(q, sub)
    }
}

/// A sampling-based estimator: enumerates the sub-query exactly on an
/// induced sample of the data graph and scales up. More accurate on skewed
/// graphs, at the price of running a small enumeration per estimate.
pub struct SamplingEstimator {
    sample: Graph,
    scale_per_vertex: f64,
}

impl SamplingEstimator {
    /// Samples `fraction` of the vertices (by id hashing, deterministic) and
    /// builds the induced subgraph.
    pub fn new(graph: &Graph, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.001, 1.0);
        let keep = |v: u32| -> bool {
            let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            (h as f64 / (1u64 << 24) as f64) < fraction
        };
        let edges = graph
            .edges()
            .filter(|&(u, v)| keep(u) && keep(v))
            .collect::<Vec<_>>();
        let sample = Graph::from_edges(edges);
        SamplingEstimator {
            sample,
            scale_per_vertex: 1.0 / fraction,
        }
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn estimate(&self, q: &QueryGraph, sub: &SubQuery) -> f64 {
        if sub.is_empty() {
            return 0.0;
        }
        // Build a standalone query graph for the sub-query and enumerate it
        // on the sample. Relabel sub-query vertices to 0..k.
        let verts: Vec<u8> = sub.vertices().collect();
        let index = |v: u8| verts.iter().position(|&x| x == v).unwrap() as u8;
        let edges: Vec<(u8, u8)> = sub.edges_of(q).map(|(a, b)| (index(a), index(b))).collect();
        let small = QueryGraph::new(verts.len(), edges);
        if !small.is_connected() || self.sample.is_empty() {
            return 1.0;
        }
        let count = huge_query::naive::enumerate_embeddings(&self.sample, &small) as f64;
        (count * self.scale_per_vertex.powi(verts.len() as i32)).max(1.0)
    }
}

/// The cost model of Algorithm 1 (lines 6–9).
///
/// Two refinements over the paper's literal formulation make the model
/// meaningful at laptop scale (documented in DESIGN.md):
///
/// * the pulling communication cost is `min(k |E_G|, |R(q'_l)| · |L| · d̄)` —
///   the paper's `k |E_G|` is an upper bound (every machine pulls at most
///   the whole graph thanks to the cache); without the cache at most `|L|`
///   adjacency lists of average size `d̄` are pulled per left-hand partial
///   result, whichever is smaller;
/// * a join-unit star consumed by a pulling join is never materialised (its
///   matches are enumerated implicitly by `PULL-EXTEND`), so its
///   `M_cost[q'_r] = |R(star)|` term is skipped (see
///   [`Optimizer`](crate::optimizer::Optimizer)).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Number of machines `k` in the cluster.
    pub num_machines: usize,
    /// Number of data-graph edges `|E_G|`.
    pub graph_edges: f64,
    /// Average degree `d̄` of the data graph, used by the tightened pulling
    /// bound. `f64::INFINITY` disables the tightened bound (paper-literal
    /// `k |E_G|`).
    pub avg_degree: f64,
    /// When `true`, communication cost is ignored entirely — this reproduces
    /// the *computation-only* hybrid plans of EmptyHeaded / GraphFlow that
    /// Exp-9 compares against.
    pub computation_only: bool,
}

impl CostModel {
    /// A cost model for a `k`-machine cluster over a graph with `m` edges.
    /// The tightened pulling bound is disabled until
    /// [`CostModel::with_avg_degree`] is called.
    pub fn new(num_machines: usize, graph_edges: u64) -> Self {
        CostModel {
            num_machines,
            graph_edges: graph_edges as f64,
            avg_degree: f64::INFINITY,
            computation_only: false,
        }
    }

    /// A cost model derived from graph statistics (enables the tightened
    /// pulling bound).
    pub fn from_stats(num_machines: usize, stats: &GraphStats) -> Self {
        CostModel::new(num_machines, stats.num_edges).with_avg_degree(stats.avg_degree)
    }

    /// Enables the tightened pulling bound using the graph's average degree.
    pub fn with_avg_degree(mut self, avg_degree: f64) -> Self {
        self.avg_degree = avg_degree;
        self
    }

    /// Disables the communication term (EmptyHeaded / GraphFlow style).
    pub fn computation_only(mut self) -> Self {
        self.computation_only = true;
        self
    }

    /// Communication cost of one join under `physical` (Algorithm 1 lines
    /// 7–9): pulling costs `min(k |E_G|, |R(q'_l)| · |L| · d̄)`, pushing costs
    /// `|R(q'_l)| + |R(q'_r)|`. `right_star_leaves` is the number of leaves
    /// of `q'_r` when it is a star (0 otherwise).
    pub fn communication_cost(
        &self,
        physical: PhysicalSetting,
        left_card: f64,
        right_card: f64,
        right_star_leaves: usize,
    ) -> f64 {
        if self.computation_only {
            return 0.0;
        }
        if physical.is_pulling() {
            let cap = self.num_machines as f64 * self.graph_edges;
            if self.avg_degree.is_finite() && right_star_leaves > 0 {
                cap.min(left_card * right_star_leaves as f64 * self.avg_degree)
            } else {
                cap
            }
        } else {
            left_card + right_card
        }
    }

    /// Total cost of a join given the costs of producing its operands, their
    /// cardinalities, the output cardinality and the physical setting.
    #[allow(clippy::too_many_arguments)]
    pub fn join_cost(
        &self,
        left_cost: f64,
        right_cost: f64,
        left_card: f64,
        right_card: f64,
        output_card: f64,
        physical: PhysicalSetting,
        right_star_leaves: usize,
    ) -> f64 {
        left_cost
            + right_cost
            + output_card
            + self.communication_cost(physical, left_card, right_card, right_star_leaves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_graph::gen;
    use huge_query::Pattern;

    #[test]
    fn star_estimates_are_exact_labelled_counts() {
        let g = gen::barabasi_albert(500, 4, 3);
        let est = HybridEstimator::from_graph(&g);
        let q = Pattern::Star(2).query_graph();
        let sub = SubQuery::full(&q);
        // Exact labelled 2-star count: Σ d(v)(d(v)-1).
        let exact: f64 = g
            .vertices()
            .map(|v| {
                let d = g.degree(v) as f64;
                d * (d - 1.0)
            })
            .sum();
        assert!((est.estimate(&q, &sub) - exact).abs() < 1e-6);
    }

    #[test]
    fn estimates_grow_with_subquery_size() {
        let g = gen::erdos_renyi(1000, 8000, 1);
        let est = HybridEstimator::from_graph(&g);
        let q = Pattern::Path(5).query_graph();
        let e1 = SubQuery::from_edge_indices(&q, [0]);
        let p3 = SubQuery::from_edge_indices(&q, [0, 1]);
        let p4 = SubQuery::from_edge_indices(&q, [0, 1, 2]);
        let c1 = est.estimate(&q, &e1);
        let c2 = est.estimate(&q, &p3);
        let c3 = est.estimate(&q, &p4);
        assert!(c1 > 0.0);
        assert!(c2 > c1, "{c2} vs {c1}");
        assert!(c3 > c2, "{c3} vs {c2}");
    }

    #[test]
    fn clique_estimates_below_path_estimates() {
        // Adding edges to the same vertex set can only reduce matches.
        let g = gen::erdos_renyi(500, 3000, 2);
        let est = HybridEstimator::from_graph(&g);
        let clique = Pattern::FourClique.query_graph();
        let square = Pattern::Square.query_graph();
        let c = est.estimate(&clique, &SubQuery::full(&clique));
        let s = est.estimate(&square, &SubQuery::full(&square));
        assert!(c < s, "clique {c} should be rarer than square {s}");
    }

    #[test]
    fn stats_estimator_is_consistent() {
        let g = gen::erdos_renyi(300, 1200, 7);
        let from_graph = HybridEstimator::from_graph(&g);
        let from_stats = HybridEstimator::from_stats(&GraphStats::of(&g));
        let q = Pattern::Triangle.query_graph();
        let sub = SubQuery::full(&q);
        let a = from_graph.estimate(&q, &sub);
        let b = from_stats.estimate(&q, &sub);
        // ER graphs have little skew, so both estimates should be within an
        // order of magnitude of each other.
        assert!(a / b < 10.0 && b / a < 10.0, "a={a} b={b}");
    }

    #[test]
    fn sampling_estimator_close_on_triangles() {
        let g = gen::erdos_renyi(400, 4000, 11);
        let est = SamplingEstimator::new(&g, 0.5);
        let q = Pattern::Triangle.query_graph();
        let guess = est.estimate(&q, &SubQuery::full(&q));
        let exact = (g.count_triangles() * 6) as f64; // labelled embeddings
        assert!(
            guess > exact / 20.0 && guess < exact * 20.0,
            "guess {guess} exact {exact}"
        );
    }

    #[test]
    fn cost_model_pulling_vs_pushing() {
        let model = CostModel::new(10, 1_000);
        let pull = model.communication_cost(PhysicalSetting::WCO_PULLING, 1e9, 1e9, 2);
        let push = model.communication_cost(PhysicalSetting::HASH_PUSHING, 1e9, 1e9, 2);
        assert!(pull < push);
        assert_eq!(pull, 10_000.0);
        let comp_only = CostModel::new(10, 1_000).computation_only();
        assert_eq!(
            comp_only.communication_cost(PhysicalSetting::HASH_PUSHING, 1e9, 1e9, 2),
            0.0
        );
    }

    #[test]
    fn tightened_pulling_bound_applies_when_cheaper() {
        let model = CostModel::new(10, 1_000).with_avg_degree(5.0);
        // Small left side: pulls far less than the whole graph.
        let pull = model.communication_cost(PhysicalSetting::WCO_PULLING, 100.0, 1e9, 2);
        assert_eq!(pull, 100.0 * 2.0 * 5.0);
        // Huge left side: capped at k |E|.
        let capped = model.communication_cost(PhysicalSetting::WCO_PULLING, 1e9, 1e9, 2);
        assert_eq!(capped, 10_000.0);
    }

    #[test]
    fn join_cost_is_additive() {
        let model = CostModel::new(4, 100);
        let c = model.join_cost(10.0, 20.0, 5.0, 6.0, 30.0, PhysicalSetting::HASH_PUSHING, 0);
        assert_eq!(c, 10.0 + 20.0 + 30.0 + 11.0);
    }
}
