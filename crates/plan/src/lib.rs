//! Execution planning for the HUGE subgraph-enumeration system (§3 of the
//! paper).
//!
//! The paper separates an execution plan into a *logical* part — the join
//! unit and join order of a uniform join-based framework into which all
//! prior systems fit — and a *physical* part — the join algorithm (hash vs.
//! worst-case-optimal) and the communication mode (pushing vs. pulling)
//! chosen per two-way join. This crate implements:
//!
//! * [`subquery`] — sub-queries as (vertex set, edge set) bitmask pairs over
//!   a parent query graph, with star/connectivity tests.
//! * [`logical`] — binary join trees ([`JoinTree`]) expressing a logical
//!   plan, and the flattened join order of the paper's notation.
//! * [`physical`] — join algorithm and communication mode, plus Equation 3
//!   which configures them for a given join.
//! * [`cost`] — cardinality estimation and the cost model of Algorithm 1.
//! * [`optimizer`] — the dynamic-programming optimiser (Algorithm 1).
//! * [`translate`] — translation of an execution plan into a dataflow of
//!   `SCAN` / `PULL-EXTEND` / `PUSH-JOIN` / `SINK` operators (Algorithm 2),
//!   including the §5.2 rewrites of star scans and pulling-based hash joins
//!   into chains of `PULL-EXTEND`s for bounded memory.
//! * [`baselines`] — the logical plans of StarJoin, SEED, BiGJoin, BENU and
//!   RADS expressed in the framework (Table 2), so they can be "plugged
//!   into HUGE" (Remark 3.2), plus computation-only hybrid plans in the
//!   style of EmptyHeaded / GraphFlow.

pub mod baselines;
pub mod cost;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod subquery;
pub mod translate;

pub use cost::{CardinalityEstimator, CostModel, HybridEstimator};
pub use logical::{ExecutionPlan, JoinNode, JoinTree};
pub use optimizer::{Optimizer, OptimizerOptions};
pub use physical::{CommMode, JoinAlgorithm, PhysicalSetting};
pub use subquery::SubQuery;
pub use translate::{
    translate, Dataflow, ExtendOp, JoinOp, OrderFilter, ScanOp, Segment, SegmentSource,
};
