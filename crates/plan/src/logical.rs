//! Logical join trees.
//!
//! A logical plan in the paper's framework (§3.1) is a sequence of two-way
//! joins over join units; because every intermediate result is used exactly
//! once, the sequence forms a binary tree whose leaves are join units and
//! whose internal nodes are joins. [`JoinTree`] is that tree, each join
//! annotated with its physical setting (join algorithm + communication
//! mode).

use huge_query::QueryGraph;

use crate::physical::{configure, PhysicalSetting};
use crate::subquery::SubQuery;

/// A node of a [`JoinTree`].
#[derive(Clone, Debug, PartialEq)]
pub enum JoinNode {
    /// A join unit (a star under HUGE's default setting), computed by a
    /// `SCAN` (possibly rewritten into scan + extends, §5.2).
    Unit(SubQuery),
    /// A two-way join `(output, left, right)` with its physical setting.
    Join {
        /// The sub-query produced by this join (`left ∪ right`).
        output: SubQuery,
        /// Left operand.
        left: Box<JoinNode>,
        /// Right operand (`q'_r` in the paper; Equation 3 inspects this
        /// side, so orientation matters).
        right: Box<JoinNode>,
        /// Join algorithm and communication mode.
        physical: PhysicalSetting,
    },
}

impl JoinNode {
    /// The sub-query this node produces.
    pub fn output(&self) -> SubQuery {
        match self {
            JoinNode::Unit(s) => *s,
            JoinNode::Join { output, .. } => *output,
        }
    }

    /// Creates a join node over two children, computing the output as their
    /// union and the physical setting by Equation 3.
    pub fn join_auto(q: &QueryGraph, left: JoinNode, right: JoinNode) -> JoinNode {
        let l = left.output();
        let r = right.output();
        let physical = configure(q, &l, &r);
        JoinNode::Join {
            output: l.union(&r),
            left: Box::new(left),
            right: Box::new(right),
            physical,
        }
    }

    /// Creates a join node with an explicit physical setting.
    pub fn join_with(left: JoinNode, right: JoinNode, physical: PhysicalSetting) -> JoinNode {
        let output = left.output().union(&right.output());
        JoinNode::Join {
            output,
            left: Box::new(left),
            right: Box::new(right),
            physical,
        }
    }

    /// Number of join (internal) nodes below and including this node.
    pub fn num_joins(&self) -> usize {
        match self {
            JoinNode::Unit(_) => 0,
            JoinNode::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Number of unit (leaf) nodes.
    pub fn num_units(&self) -> usize {
        match self {
            JoinNode::Unit(_) => 1,
            JoinNode::Join { left, right, .. } => left.num_units() + right.num_units(),
        }
    }

    /// `true` if the tree is left-deep: every right child is a unit.
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinNode::Unit(_) => true,
            JoinNode::Join { left, right, .. } => {
                matches!(**right, JoinNode::Unit(_)) && left.is_left_deep()
            }
        }
    }

    fn visit_joins<'a>(&'a self, out: &mut Vec<(&'a JoinNode, SubQuery, SubQuery, SubQuery)>) {
        if let JoinNode::Join {
            output,
            left,
            right,
            ..
        } = self
        {
            left.visit_joins(out);
            right.visit_joins(out);
            out.push((self, *output, left.output(), right.output()));
        }
    }

    fn validate_node(&self, q: &QueryGraph) -> Result<(), PlanError> {
        match self {
            JoinNode::Unit(s) => {
                if !s.is_join_unit(q) {
                    return Err(PlanError::UnitNotAStar(*s));
                }
                Ok(())
            }
            JoinNode::Join {
                output,
                left,
                right,
                ..
            } => {
                left.validate_node(q)?;
                right.validate_node(q)?;
                let l = left.output();
                let r = right.output();
                if !l.edge_disjoint(&r) {
                    return Err(PlanError::OverlappingEdges(l, r));
                }
                if l.union(&r) != *output {
                    return Err(PlanError::BadJoinOutput(*output));
                }
                if l.shared_vertices(&r).is_empty() {
                    return Err(PlanError::CartesianJoin(l, r));
                }
                if !output.is_connected(q) {
                    return Err(PlanError::DisconnectedSubQuery(*output));
                }
                Ok(())
            }
        }
    }

    /// Reconfigures every join's physical setting by Equation 3, swapping
    /// the operands when the swapped orientation yields a strictly better
    /// setting (wco/pulling ≻ hash/pulling ≻ hash/pushing). This is how an
    /// existing system's *logical* plan is plugged into HUGE (Remark 3.2).
    pub fn configure_physical(&mut self, q: &QueryGraph) {
        if let JoinNode::Join {
            left,
            right,
            physical,
            ..
        } = self
        {
            left.configure_physical(q);
            right.configure_physical(q);
            let l = left.output();
            let r = right.output();
            let as_is = configure(q, &l, &r);
            let swapped = configure(q, &r, &l);
            if rank(swapped) > rank(as_is) {
                std::mem::swap(left, right);
                *physical = swapped;
            } else {
                *physical = as_is;
            }
        }
    }
}

/// Preference order for physical settings when plugging logical plans in.
fn rank(p: PhysicalSetting) -> u8 {
    use crate::physical::{CommMode, JoinAlgorithm};
    match (p.algorithm, p.comm) {
        (JoinAlgorithm::Wco, CommMode::Pulling) => 3,
        (JoinAlgorithm::Hash, CommMode::Pulling) => 2,
        (JoinAlgorithm::Wco, CommMode::Pushing) => 1,
        (JoinAlgorithm::Hash, CommMode::Pushing) => 0,
    }
}

/// A complete logical plan: a join tree covering every edge of the query.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinTree {
    /// The root join node (its output must equal the full query).
    pub root: JoinNode,
}

impl JoinTree {
    /// Wraps a root node into a tree.
    pub fn new(root: JoinNode) -> Self {
        JoinTree { root }
    }

    /// The sub-query produced by the whole tree.
    pub fn output(&self) -> SubQuery {
        self.root.output()
    }

    /// Validates the structural invariants of the tree against `q`:
    /// units are stars, joins are edge-disjoint and connected, and the root
    /// covers the entire query.
    pub fn validate(&self, q: &QueryGraph) -> Result<(), PlanError> {
        self.root.validate_node(q)?;
        if !self.root.output().is_full(q) {
            return Err(PlanError::IncompletePlan(self.root.output()));
        }
        Ok(())
    }

    /// The flattened join order `O` of the paper: the joins in post-order,
    /// each as `(q', q'_l, q'_r)`.
    pub fn join_order(&self) -> Vec<(SubQuery, SubQuery, SubQuery)> {
        let mut nodes = Vec::new();
        self.root.visit_joins(&mut nodes);
        nodes.into_iter().map(|(_, o, l, r)| (o, l, r)).collect()
    }

    /// Applies Equation 3 to every join (see [`JoinNode::configure_physical`]).
    pub fn configure_physical(&mut self, q: &QueryGraph) {
        self.root.configure_physical(q);
    }

    /// Number of two-way joins in the plan.
    pub fn num_joins(&self) -> usize {
        self.root.num_joins()
    }

    /// Number of join units (leaves).
    pub fn num_units(&self) -> usize {
        self.root.num_units()
    }

    /// `true` if the plan is left-deep.
    pub fn is_left_deep(&self) -> bool {
        self.root.is_left_deep()
    }
}

/// A full execution plan: the query, the join tree with physical settings,
/// and the optimiser's cost estimate.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// The query graph being planned.
    pub query: QueryGraph,
    /// The join tree (logical plan + per-join physical settings).
    pub tree: JoinTree,
    /// The optimiser's estimated total cost (Algorithm 1's `M_cost[q]`).
    pub estimated_cost: f64,
}

impl ExecutionPlan {
    /// Validates the plan against its own query.
    pub fn validate(&self) -> Result<(), PlanError> {
        self.tree.validate(&self.query)
    }

    /// A compact human-readable rendering of the plan (one join per line),
    /// used by the `plan_explain` example and the experiment harness.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan for {} ({} vertices, {} edges): {} unit(s), {} join(s), est. cost {:.3e}\n",
            if self.query.name().is_empty() {
                "<anonymous>"
            } else {
                self.query.name()
            },
            self.query.num_vertices(),
            self.query.num_edges(),
            self.tree.num_units(),
            self.tree.num_joins(),
            self.estimated_cost
        ));
        explain_node(&self.tree.root, &self.query, 0, &mut out);
        out
    }
}

#[allow(clippy::only_used_in_recursion)]
fn explain_node(node: &JoinNode, q: &QueryGraph, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node {
        JoinNode::Unit(s) => {
            let verts: Vec<String> = s.vertices().map(|v| format!("v{v}")).collect();
            out.push_str(&format!("{indent}SCAN star {{{}}}\n", verts.join(", ")));
        }
        JoinNode::Join {
            left,
            right,
            physical,
            output,
        } => {
            let verts: Vec<String> = output.vertices().map(|v| format!("v{v}")).collect();
            out.push_str(&format!(
                "{indent}JOIN [{:?} join, {:?}] -> {{{}}}\n",
                physical.algorithm,
                physical.comm,
                verts.join(", ")
            ));
            explain_node(left, q, depth + 1, out);
            explain_node(right, q, depth + 1, out);
        }
    }
}

/// Errors detected while validating a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// A leaf of the join tree is not a star.
    UnitNotAStar(SubQuery),
    /// The two operands of a join share an edge.
    OverlappingEdges(SubQuery, SubQuery),
    /// A join's recorded output is not the union of its operands.
    BadJoinOutput(SubQuery),
    /// A join's operands share no vertex (Cartesian product).
    CartesianJoin(SubQuery, SubQuery),
    /// A join produces a disconnected sub-query.
    DisconnectedSubQuery(SubQuery),
    /// The root of the plan does not cover every query edge.
    IncompletePlan(SubQuery),
    /// The optimiser could not produce a plan (e.g. disconnected query).
    NoPlanFound,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnitNotAStar(s) => write!(f, "join unit {s:?} is not a star"),
            PlanError::OverlappingEdges(l, r) => {
                write!(f, "join operands {l:?} and {r:?} share edges")
            }
            PlanError::BadJoinOutput(o) => write!(f, "join output {o:?} is not the operand union"),
            PlanError::CartesianJoin(l, r) => {
                write!(f, "join of {l:?} and {r:?} has an empty join key")
            }
            PlanError::DisconnectedSubQuery(s) => write!(f, "sub-query {s:?} is disconnected"),
            PlanError::IncompletePlan(s) => {
                write!(f, "plan covers only {s:?}, not the whole query")
            }
            PlanError::NoPlanFound => write!(f, "no execution plan could be derived"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_query::Pattern;

    /// Builds the Example 3.1 plan: the 4-clique assembled by two complete
    /// star joins from an initial edge.
    fn clique_wco_tree(q: &QueryGraph) -> JoinTree {
        let e01 = SubQuery::star(q, 0, &[1]);
        let star2 = SubQuery::star(q, 2, &[0, 1]);
        let star3 = SubQuery::star(q, 3, &[0, 1, 2]);
        let j1 = JoinNode::join_auto(q, JoinNode::Unit(e01), JoinNode::Unit(star2));
        let j2 = JoinNode::join_auto(q, j1, JoinNode::Unit(star3));
        JoinTree::new(j2)
    }

    #[test]
    fn clique_plan_validates_and_uses_wco_pulling() {
        let q = Pattern::FourClique.query_graph();
        let tree = clique_wco_tree(&q);
        tree.validate(&q).unwrap();
        assert_eq!(tree.num_joins(), 2);
        assert_eq!(tree.num_units(), 3);
        assert!(tree.is_left_deep());
        for (_, _l, _r) in tree.join_order() {}
        // Both joins are complete star joins.
        fn all_wco(node: &JoinNode) -> bool {
            match node {
                JoinNode::Unit(_) => true,
                JoinNode::Join {
                    left,
                    right,
                    physical,
                    ..
                } => *physical == PhysicalSetting::WCO_PULLING && all_wco(left) && all_wco(right),
            }
        }
        assert!(all_wco(&tree.root));
    }

    #[test]
    fn validation_catches_incomplete_plans() {
        let q = Pattern::FourClique.query_graph();
        let e01 = SubQuery::star(&q, 0, &[1]);
        let tree = JoinTree::new(JoinNode::Unit(e01));
        assert!(matches!(
            tree.validate(&q),
            Err(PlanError::IncompletePlan(_))
        ));
    }

    #[test]
    fn validation_catches_overlapping_edges() {
        let q = Pattern::Square.query_graph();
        let a = SubQuery::star(&q, 0, &[1, 3]);
        let b = SubQuery::star(&q, 0, &[1]); // overlaps edge (0,1)
        let node = JoinNode::join_auto(&q, JoinNode::Unit(a), JoinNode::Unit(b));
        let tree = JoinTree::new(node);
        assert!(matches!(
            tree.validate(&q),
            Err(PlanError::OverlappingEdges(_, _))
        ));
    }

    #[test]
    fn validation_catches_non_star_units() {
        let q = Pattern::FourClique.query_graph();
        let tri = SubQuery::induced_by_vertices(&q, [0, 1, 2]);
        let rest = SubQuery::star(&q, 3, &[0, 1, 2]);
        let node = JoinNode::join_auto(&q, JoinNode::Unit(tri), JoinNode::Unit(rest));
        let tree = JoinTree::new(node);
        assert!(matches!(tree.validate(&q), Err(PlanError::UnitNotAStar(_))));
    }

    #[test]
    fn configure_physical_prefers_pulling_orientation() {
        let q = Pattern::FourClique.query_graph();
        // Build the join in the "wrong" orientation: the star that should be
        // q'_r placed on the left.
        let e01 = SubQuery::star(&q, 0, &[1]);
        let star2 = SubQuery::star(&q, 2, &[0, 1]);
        let mut node = JoinNode::join_with(
            JoinNode::Unit(star2),
            JoinNode::Unit(e01),
            PhysicalSetting::HASH_PUSHING,
        );
        node.configure_physical(&q);
        match &node {
            JoinNode::Join { physical, .. } => {
                assert_eq!(*physical, PhysicalSetting::WCO_PULLING)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_order_is_post_order() {
        let q = Pattern::FourClique.query_graph();
        let tree = clique_wco_tree(&q);
        let order = tree.join_order();
        assert_eq!(order.len(), 2);
        // The last element must produce the full query (as the paper
        // requires of the join order's final element).
        assert!(order.last().unwrap().0.is_full(&q));
    }

    #[test]
    fn explain_is_nonempty() {
        let q = Pattern::FourClique.query_graph();
        let plan = ExecutionPlan {
            query: q.clone(),
            tree: clique_wco_tree(&q),
            estimated_cost: 123.0,
        };
        let text = plan.explain();
        assert!(text.contains("JOIN"));
        assert!(text.contains("SCAN"));
        plan.validate().unwrap();
    }
}
