//! Physical join settings: join algorithm and communication mode.
//!
//! Given a two-way join `(q', q'_l, q'_r)` the paper configures the physical
//! setting by Equation 3:
//!
//! * `(wco join, pulling)` if the join is a *complete star join* — `q'_r` is
//!   a star `(v; L)` whose leaves are all contained in `V(q'_l)`;
//! * `(hash join, pulling)` if `q'_r` is a star whose *root* belongs to
//!   `V(q'_l)` (condition C1 of Property 3.1);
//! * `(hash join, pushing)` otherwise.

use huge_query::QueryGraph;

use crate::subquery::SubQuery;

/// The join algorithm used to process a two-way join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Conventional distributed hash join over the join key.
    Hash,
    /// Worst-case-optimal join: extend by one vertex via multiway
    /// intersection (Equation 2).
    Wco,
}

/// The communication mode used to process a two-way join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Ship intermediate results to the machine indexed by the join key.
    Pushing,
    /// Ship (and cache) adjacency lists to the machine holding the partial
    /// result.
    Pulling,
}

/// A physical setting: `(A, C)` in the paper's notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhysicalSetting {
    /// The join algorithm.
    pub algorithm: JoinAlgorithm,
    /// The communication mode.
    pub comm: CommMode,
}

impl PhysicalSetting {
    /// `(wco, pulling)` — used for complete star joins.
    pub const WCO_PULLING: PhysicalSetting = PhysicalSetting {
        algorithm: JoinAlgorithm::Wco,
        comm: CommMode::Pulling,
    };
    /// `(wco, pushing)` — BiGJoin's native setting.
    pub const WCO_PUSHING: PhysicalSetting = PhysicalSetting {
        algorithm: JoinAlgorithm::Wco,
        comm: CommMode::Pushing,
    };
    /// `(hash, pulling)` — RADS-style star pulling.
    pub const HASH_PULLING: PhysicalSetting = PhysicalSetting {
        algorithm: JoinAlgorithm::Hash,
        comm: CommMode::Pulling,
    };
    /// `(hash, pushing)` — the classical shuffle join.
    pub const HASH_PUSHING: PhysicalSetting = PhysicalSetting {
        algorithm: JoinAlgorithm::Hash,
        comm: CommMode::Pushing,
    };

    /// `true` when the setting uses pulling communication.
    pub fn is_pulling(&self) -> bool {
        self.comm == CommMode::Pulling
    }
}

/// Definition 3.1: a two-way join is a *complete star join* iff the right
/// operand is a star `(v; L)` with `L ⊆ V(q'_l)` (the join is commutative;
/// callers should try both orientations).
pub fn is_complete_star_join(q: &QueryGraph, left: &SubQuery, right: &SubQuery) -> bool {
    match right.as_star(q) {
        Some((_root, leaves)) => leaves.iter().all(|&l| left.contains_vertex(l)),
        None => false,
    }
}

/// Property 3.1, condition C1: the right operand is a star whose root is a
/// vertex of the left operand, so the star's matches can be enumerated
/// locally after pulling the root's adjacency list.
pub fn is_rooted_star_join(q: &QueryGraph, left: &SubQuery, right: &SubQuery) -> bool {
    match right.as_star(q) {
        Some((root, _leaves)) => left.contains_vertex(root),
        None => false,
    }
}

/// Equation 3: configures the physical setting for the join
/// `(left ∪ right, left, right)`.
///
/// The orientation matters: this function treats `right` as `q'_r`. The
/// optimiser tries both orientations and keeps the cheaper one.
pub fn configure(q: &QueryGraph, left: &SubQuery, right: &SubQuery) -> PhysicalSetting {
    if is_complete_star_join(q, left, right) {
        PhysicalSetting::WCO_PULLING
    } else if is_rooted_star_join(q, left, right) {
        PhysicalSetting::HASH_PULLING
    } else {
        PhysicalSetting::HASH_PUSHING
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use huge_query::Pattern;

    #[test]
    fn clique_extension_is_complete_star_join() {
        let q = Pattern::FourClique.query_graph();
        // Left: triangle on {0,1,2}; right: star rooted at 3 with leaves
        // {0,1,2} (all edges incident to 3).
        let left = SubQuery::induced_by_vertices(&q, [0, 1, 2]);
        let right = SubQuery::star(&q, 3, &[0, 1, 2]);
        assert!(is_complete_star_join(&q, &left, &right));
        assert_eq!(configure(&q, &left, &right), PhysicalSetting::WCO_PULLING);
    }

    #[test]
    fn rooted_star_join_uses_hash_pulling() {
        let q = Pattern::TailedTriangleStar.query_graph();
        // Left: the triangle {0,1,2}; right: the star rooted at 1 with the
        // three tail leaves {3,4,5}. The root 1 is in the left, but the
        // leaves are not, so this is C1 (hash join, pulling).
        let left = SubQuery::induced_by_vertices(&q, [0, 1, 2]);
        let right = SubQuery::star(&q, 1, &[3, 4, 5]);
        assert!(!is_complete_star_join(&q, &left, &right));
        assert!(is_rooted_star_join(&q, &left, &right));
        assert_eq!(configure(&q, &left, &right), PhysicalSetting::HASH_PULLING);
    }

    #[test]
    fn unrelated_join_uses_hash_pushing() {
        let q = Pattern::Path(6).query_graph();
        // Left: path 0-1-2-3 (edges 0,1,2); right: path 3-4-5 (edges 3,4).
        let left = SubQuery::from_edge_indices(&q, [0, 1, 2]);
        let right = SubQuery::from_edge_indices(&q, [3, 4]);
        // The right is a path of 3 vertices which *is* a star rooted at 4,
        // but 4 is not in the left, and its leaves {3,5} are not all in the
        // left either -> pushing hash join.
        assert_eq!(configure(&q, &left, &right), PhysicalSetting::HASH_PUSHING);
    }

    #[test]
    fn square_assembled_from_two_paths_is_complete_star_join() {
        let q = Pattern::Square.query_graph();
        // Left: path 1-0-3 (the two edges incident to 0); right: star rooted
        // at 2 with leaves {1,3}. Leaves ⊆ V(left) -> complete star join.
        let left = SubQuery::star(&q, 0, &[1, 3]);
        let right = SubQuery::star(&q, 2, &[1, 3]);
        assert!(is_complete_star_join(&q, &left, &right));
    }

    #[test]
    fn physical_setting_helpers() {
        assert!(PhysicalSetting::WCO_PULLING.is_pulling());
        assert!(!PhysicalSetting::HASH_PUSHING.is_pulling());
    }
}
